//! Dataplane fast-path witnesses: the exact-match flow cache is an
//! *invisible* optimisation. A full-stack run with the cache on must be
//! observably identical — event trace, per-packet flight-recorder
//! journeys, SLA verdicts, delivery counts — to the same-seed run with
//! the cache off (every lookup walking the priority table, the seed
//! behaviour). Only the `openflow.cache_*` telemetry series may differ.
//!
//! Also covered: same-seed determinism of the cached fast path itself
//! (two cache-on runs render byte-identical metrics documents) and a
//! chaos scenario where a link flap forces a mid-stream resteer, so the
//! cache gets invalidated and repopulated while traffic is in flight.

use escape::env::Escape;
use escape_netem::{FaultKind, FaultPlan};
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::{ResourceTopology, ServiceGraph};

/// Everything observable about one run, for cross-run comparison.
struct Outcome {
    /// Virtual-timestamped fault/recovery event log.
    events: Vec<String>,
    /// Rendered per-packet journey timelines from the flight recorder.
    timelines: String,
    /// SLA verdicts, Debug-rendered.
    sla: String,
    /// Frames the destination SAP received.
    rx: u64,
    /// Flow-cache telemetry at the end of the run.
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
    /// Full metrics document (Prometheus text) for determinism checks.
    metrics_text: String,
}

/// The one metric family that may legitimately differ between a cache-on
/// and a cache-off run is `openflow.cache_*`; the ones that differ
/// between otherwise identical runs live under the reserved `wallclock.`
/// namespace. Strip both for byte comparisons.
fn scrub(doc: &str) -> String {
    doc.lines()
        .filter(|l| !l.contains("openflow_cache_") && !l.contains("wallclock_"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn monitor_chain() -> ServiceGraph {
    ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("mon", "monitor", 0.5, 64)
        .chain("c1", &["sap0", "mon", "sap1"], 50.0, None)
}

/// Deploys a one-VNF chain on a linear substrate, runs a 40-frame UDP
/// stream through it and collects every observable artifact.
fn plain_run(seed: u64, cache_on: bool) -> Outcome {
    let topo = builders::linear(2, 4.0);
    let mut esc = Escape::build(
        topo,
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        seed,
    )
    .unwrap();
    esc.set_flow_cache(cache_on);
    esc.enable_flight_recorder(65_536);
    esc.deploy(&monitor_chain()).unwrap();
    esc.start_udp("sap0", "sap1", 128, 200, 40).unwrap();
    esc.run_for_ms(100);
    collect(esc)
}

fn collect(esc: Escape) -> Outcome {
    let m = esc.metrics();
    Outcome {
        events: esc.event_trace().to_vec(),
        timelines: esc.flight_record().timelines(),
        sla: format!("{:?}", esc.sla_verdicts()),
        rx: esc.sap_stats("sap1").unwrap().udp_rx,
        cache_hits: m.counter_total("openflow.cache_hits"),
        cache_misses: m.counter_total("openflow.cache_misses"),
        cache_invalidations: m.counter_total("openflow.cache_invalidations"),
        metrics_text: m.prometheus(),
    }
}

#[test]
fn cache_on_and_off_are_observably_identical() {
    let on = plain_run(11, true);
    let off = plain_run(11, false);

    assert_eq!(on.rx, 40, "all frames delivered with the cache on");
    assert_eq!(off.rx, 40, "all frames delivered with the cache off");
    assert_eq!(on.events, off.events, "event traces diverged");
    assert_eq!(on.timelines, off.timelines, "packet journeys diverged");
    assert_eq!(on.sla, off.sla, "SLA verdicts diverged");
    assert_eq!(
        scrub(&on.metrics_text),
        scrub(&off.metrics_text),
        "non-cache metrics diverged"
    );

    // The cache actually worked on the fast-path run and stayed cold on
    // the reference run — visible through the environment registry
    // without any bench harness (`escape metrics` exposure).
    // (Invalidations stay 0 here: the proactive flow-mods all land
    // before traffic, so every flush finds an empty cache. The resteer
    // witness below covers warm-cache invalidation.)
    assert!(on.cache_hits > 0, "repeat flows must hit the cache");
    assert_eq!(off.cache_hits, 0, "disabled cache must not serve hits");
    assert_eq!(off.cache_misses, 0, "disabled cache must not count misses");
}

#[test]
fn same_seed_cached_runs_are_byte_identical() {
    let a = plain_run(23, true);
    let b = plain_run(23, true);
    assert_eq!(a.events, b.events);
    assert_eq!(a.timelines, b.timelines);
    assert_eq!(a.sla, b.sla);
    // Full document this time, cache series included: the fast path is
    // itself deterministic.
    let strip_wall = |doc: &str| {
        doc.lines()
            .filter(|l| !l.contains("wallclock_"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_wall(&a.metrics_text), strip_wall(&b.metrics_text));
}

/// A redundant triangle (same shape as the chaos harness): the direct
/// s0-s1 link has a two-hop backup via s2.
fn triangle() -> ResourceTopology {
    let mut t = ResourceTopology::new();
    t.add_sap("sap0").add_sap("sap1");
    t.add_switch("s0").add_switch("s1").add_switch("s2");
    t.add_container("c0", 4.0, 2048);
    t.add_link("sap0", "s0", 1000.0, 10);
    t.add_link("s0", "c0", 1000.0, 20);
    t.add_link("s0", "s1", 1000.0, 50);
    t.add_link("s0", "s2", 1000.0, 100);
    t.add_link("s2", "s1", 1000.0, 100);
    t.add_link("sap1", "s1", 1000.0, 10);
    t
}

/// Chaos witness: the primary link dies *mid-stream*, recovery resteers
/// the chain onto the backup path (deleting and reinstalling flows under
/// live traffic, invalidating the cache), and the link comes back. The
/// cached run must still be observably identical to the walked run.
fn flap_run(seed: u64, cache_on: bool) -> Outcome {
    let mut esc = Escape::build(
        triangle(),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        seed,
    )
    .unwrap();
    esc.set_flow_cache(cache_on);
    esc.enable_flight_recorder(262_144);
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 256)
        .chain("c1", &["sap0", "fw", "sap1"], 20.0, None);
    esc.deploy(&sg).unwrap();
    let plan = FaultPlan::new("mid-stream-flap")
        .at_ms(
            10,
            FaultKind::LinkDown {
                a: "s0".into(),
                b: "s1".into(),
            },
        )
        .at_ms(
            60,
            FaultKind::LinkUp {
                a: "s0".into(),
                b: "s1".into(),
            },
        );
    esc.load_fault_plan(&plan).unwrap();
    // Traffic spans the fault window: the resteer happens under load.
    esc.start_udp("sap0", "sap1", 128, 400, 120).unwrap();
    esc.run_with_recovery(120);
    collect(esc)
}

#[test]
fn resteer_under_load_is_cache_transparent() {
    let on = flap_run(31, true);
    let off = flap_run(31, false);

    assert!(
        on.events.iter().any(|l| l.contains("recovered chain c1")),
        "the flap must force a mid-stream resteer: {:?}",
        on.events
    );
    assert_eq!(on.events, off.events, "fault/recovery traces diverged");
    assert_eq!(on.timelines, off.timelines, "packet journeys diverged");
    assert_eq!(on.rx, off.rx, "delivery counts diverged");
    assert!(on.rx > 0, "traffic survives the flap");
    assert!(
        on.cache_hits > 0 && on.cache_invalidations > 0,
        "resteer must invalidate a warm cache (hits={} invalidations={})",
        on.cache_hits,
        on.cache_invalidations
    );
}
