//! The GUI-substitute file formats: DSL and JSON round trips, plus the
//! shipped example data files.

use escape_sg::{parse_service_graph, parse_topology, ResourceTopology, ServiceGraph};

#[test]
fn shipped_demo_files_parse_and_deploy() {
    let topo_src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/data/demo.topo"
    ))
    .expect("demo.topo present");
    let sg_src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/data/demo.sg"
    ))
    .expect("demo.sg present");
    let topo = parse_topology(&topo_src).unwrap();
    let sg = parse_service_graph(&sg_src).unwrap();
    assert_eq!(topo.containers().count(), 2);
    assert_eq!(sg.chains.len(), 2);

    // And they actually deploy.
    let mut esc = escape::env::Escape::build(
        topo,
        Box::new(escape_orch::NearestNeighbor),
        escape_pox::SteeringMode::Proactive,
        33,
    )
    .unwrap();
    let report = esc.deploy(&sg).unwrap();
    assert_eq!(report.chains.len(), 2);
}

#[test]
fn dsl_to_json_round_trip() {
    // A topology written in the DSL survives a JSON round trip intact.
    let topo = parse_topology(
        "switch a b\ncontainer c0 cpu=2 mem=512\nsap s0 s1\n\
         link s0 a\nlink s1 b\nlink a b bw=500 delay=2ms\nlink c0 a\n",
    )
    .unwrap();
    let back = ResourceTopology::from_json(&topo.to_json()).unwrap();
    assert_eq!(topo, back);

    let sg = parse_service_graph(
        "sap s0 s1\nvnf v type=dpi cpu=0.5 pattern=evil\nchain c = s0 -> v -> s1 bw=5 delay=1ms\n",
    )
    .unwrap();
    let back = ServiceGraph::from_json(&sg.to_json()).unwrap();
    assert_eq!(sg, back);
    // DSL params made it into the JSON.
    assert_eq!(
        back.vnfs[0].params,
        vec![("pattern".to_string(), "evil".to_string())]
    );
}

#[test]
fn json_is_stable_for_hand_editing() {
    // The JSON format is the machine interchange; field names are part
    // of the contract a GUI would rely on.
    let topo = parse_topology("switch s0\nsap a b\nlink a s0\nlink b s0\n").unwrap();
    let json = topo.to_json();
    for field in [
        "\"nodes\"",
        "\"links\"",
        "\"kind\"",
        "\"switch\"",
        "\"sap\"",
        "\"bandwidth_mbps\"",
        "\"delay_us\"",
    ] {
        assert!(json.contains(field), "missing {field} in:\n{json}");
    }
    // Hand-written JSON loads.
    let hand = r#"{
      "nodes": [
        {"name": "s0", "kind": "switch"},
        {"name": "c0", "kind": "container", "cpu": 2.0, "mem_mb": 256},
        {"name": "a", "kind": "sap"}
      ],
      "links": [
        {"a": "a", "b": "s0", "bandwidth_mbps": 100.0, "delay_us": 10},
        {"a": "c0", "b": "s0", "bandwidth_mbps": 100.0, "delay_us": 10}
      ]
    }"#;
    let t = ResourceTopology::from_json(hand).unwrap();
    t.validate().unwrap();
    assert_eq!(t.containers().count(), 1);
}

#[test]
fn sg_json_accepts_missing_optional_fields() {
    // `params` and `max_delay_us` are optional in hand-written files.
    let hand = r#"{
      "saps": ["a", "b"],
      "vnfs": [{"name": "v", "vnf_type": "monitor", "cpu": 1.0, "mem_mb": 64}],
      "chains": [{"name": "c", "hops": ["a", "v", "b"], "bandwidth_mbps": 5.0, "max_delay_us": null}]
    }"#;
    let sg = ServiceGraph::from_json(hand).unwrap();
    sg.validate().unwrap();
    assert!(sg.vnfs[0].params.is_empty());
    assert_eq!(sg.chains[0].max_delay_us, None);
}

#[test]
fn fault_plan_json_round_trips_identically() {
    use escape_netem::{FaultKind, FaultPlan};
    let plan = FaultPlan::new("demo-chaos")
        .at_ms(
            5,
            FaultKind::LinkDown {
                a: "s0".into(),
                b: "s1".into(),
            },
        )
        .at_ms(
            8,
            FaultKind::LossSpike {
                a: "s0".into(),
                b: "s2".into(),
                loss: 0.4,
            },
        )
        .at_ms(12, FaultKind::VnfCrash { node: "c0".into() })
        .at_ms(
            20,
            FaultKind::VnfStall {
                node: "c1".into(),
                for_us: 3_000,
            },
        );
    // parse(serialize(plan)) is the identity, and serialization is a
    // fixpoint: serialize(parse(json)) == json.
    let json = plan.to_json();
    let back = FaultPlan::from_json(&json).unwrap();
    assert_eq!(back, plan);
    assert_eq!(back.to_json(), json);
    // The JSON really is escape-json parseable (satellite: use crates/json).
    let doc = escape_json::Value::parse(&json).unwrap();
    assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("demo-chaos"));
}

#[test]
fn malformed_fault_plans_name_the_bad_field() {
    use escape_netem::FaultPlan;
    let missing_at = r#"{"name": "p", "events": [{"kind": "link_down", "a": "x", "b": "y"}]}"#;
    let err = FaultPlan::from_json(missing_at).unwrap_err();
    assert!(err.contains("at_us"), "{err}");
    assert!(err.contains("events[0]"), "{err}");

    let bad_kind = r#"{"name": "p", "events": [{"at_us": 1, "kind": "meteor_strike"}]}"#;
    let err = FaultPlan::from_json(bad_kind).unwrap_err();
    assert!(err.contains("meteor_strike"), "{err}");
    assert!(err.contains("kind"), "{err}");

    let bad_loss = r#"{"name": "p", "events": [{"at_us": 1, "kind": "loss_spike", "a": "x", "b": "y", "loss": 1.5}]}"#;
    let err = FaultPlan::from_json(bad_loss).unwrap_err();
    assert!(err.contains("loss"), "{err}");
}
