//! Chaos scenario harness: deterministic fault injection with
//! self-healing recovery, end to end.
//!
//! Each scenario deploys a chain, arms a [`FaultPlan`], and drives the
//! environment with [`Escape::run_with_recovery`] so injected faults are
//! healed as they land. Every scenario asserts three things:
//!
//! 1. **Convergence** — the chain carries a full post-fault traffic burst
//!    within a virtual-time bound;
//! 2. **Telemetry** — the expected fault and recovery counters moved
//!    (`faults.injected{kind=…}`, `escape.recoveries`, `orch.remaps` /
//!    `orch.reroutes`, `pox.steering.resteers`);
//! 3. **Determinism** — the same seed yields a byte-identical
//!    fault/recovery event trace across two independent runs.

use escape::env::Escape;
use escape_netem::{FaultKind, FaultPlan};
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::{ResourceTopology, ServiceGraph};
use escape_telemetry::Snapshot;

/// What one scenario run produced, for assertions and the determinism
/// comparison.
struct Outcome {
    /// The virtual-timestamped fault/recovery event log.
    trace: Vec<String>,
    /// Frames the destination SAP received from the post-fault burst.
    rx: u64,
    /// Metric snapshot at the end of the run.
    metrics: Snapshot,
}

/// Virtual timestamp (ns) of the first "recovered chain" event.
fn recovered_at_ns(trace: &[String]) -> Option<u64> {
    trace
        .iter()
        .find(|l| l.contains("recovered chain"))?
        .strip_prefix('[')?
        .split("ns]")
        .next()?
        .parse()
        .ok()
}

fn fault_count(m: &Snapshot, kind: &str) -> Option<u64> {
    m.counter("faults.injected", &[("kind", kind)])
}

/// A redundant triangle: the direct s0-s1 link has a two-hop backup via
/// s2, so link faults leave the chain a path to converge onto.
fn triangle() -> ResourceTopology {
    let mut t = ResourceTopology::new();
    t.add_sap("sap0").add_sap("sap1");
    t.add_switch("s0").add_switch("s1").add_switch("s2");
    t.add_container("c0", 4.0, 2048);
    t.add_link("sap0", "s0", 1000.0, 10);
    t.add_link("s0", "c0", 1000.0, 20);
    t.add_link("s0", "s1", 1000.0, 50);
    t.add_link("s0", "s2", 1000.0, 100);
    t.add_link("s2", "s1", 1000.0, 100);
    t.add_link("sap1", "s1", 1000.0, 10);
    t
}

fn fw_chain() -> ServiceGraph {
    ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 256)
        .chain("c1", &["sap0", "fw", "sap1"], 20.0, None)
}

const BURST: u64 = 50;

/// Sends the post-recovery burst and returns how much of it arrived.
fn burst(esc: &mut Escape) -> u64 {
    let before = esc.sap_stats("sap1").unwrap().udp_rx;
    esc.start_udp("sap0", "sap1", 128, 200, BURST).unwrap();
    esc.run_with_recovery(100);
    esc.sap_stats("sap1").unwrap().udp_rx - before
}

// ---------------- scenarios --------------------------------------------

/// Primary link flaps down and back up; recovery re-routes the chain
/// over the backup path while the placement stays put.
fn link_flap(seed: u64) -> Outcome {
    let mut esc = Escape::build(
        triangle(),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        seed,
    )
    .unwrap();
    esc.deploy(&fw_chain()).unwrap();
    let plan = FaultPlan::new("link-flap")
        .at_ms(
            10,
            FaultKind::LinkDown {
                a: "s0".into(),
                b: "s1".into(),
            },
        )
        .at_ms(
            60,
            FaultKind::LinkUp {
                a: "s0".into(),
                b: "s1".into(),
            },
        );
    esc.load_fault_plan(&plan).unwrap();
    esc.run_with_recovery(80);
    let rx = burst(&mut esc);
    Outcome {
        trace: esc.event_trace().to_vec(),
        rx,
        metrics: esc.metrics(),
    }
}

/// The container hosting the chain's VNF dies; recovery re-maps the
/// chain onto the surviving container and redeploys over NETCONF.
fn vnf_crash(seed: u64) -> Outcome {
    let mut esc = Escape::build(
        builders::star(2, 4.0),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        seed,
    )
    .unwrap();
    esc.deploy(&fw_chain()).unwrap();
    assert_eq!(esc.deployed("c1").unwrap().vnfs[0].container, "c0");
    let plan = FaultPlan::new("vnf-crash").at_ms(10, FaultKind::VnfCrash { node: "c0".into() });
    esc.load_fault_plan(&plan).unwrap();
    esc.run_with_recovery(40);
    let rx = burst(&mut esc);
    Outcome {
        trace: esc.event_trace().to_vec(),
        rx,
        metrics: esc.metrics(),
    }
}

/// The agent stalls across the deployment RPCs; the first attempt times
/// out and the deterministic backoff bridges the stall — deployment
/// still converges, no fault-level recovery needed.
fn netconf_timeout(seed: u64) -> Outcome {
    let mut esc = Escape::build(
        builders::linear(2, 4.0),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        seed,
    )
    .unwrap();
    // Stall c0 just as deployment starts talking to it, for 30 virtual ms.
    let plan = FaultPlan::new("agent-stall").at_us(
        100,
        FaultKind::VnfStall {
            node: "c0".into(),
            for_us: 30_000,
        },
    );
    esc.load_fault_plan(&plan).unwrap();
    esc.deploy(&fw_chain()).unwrap();
    esc.run_with_recovery(10);
    let rx = burst(&mut esc);
    Outcome {
        trace: esc.event_trace().to_vec(),
        rx,
        metrics: esc.metrics(),
    }
}

/// Heavy loss on the primary link — above the degradation threshold, so
/// recovery treats it as a failure and re-routes onto the clean backup.
fn loss_spike(seed: u64) -> Outcome {
    let mut esc = Escape::build(
        triangle(),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        seed,
    )
    .unwrap();
    esc.deploy(&fw_chain()).unwrap();
    let plan = FaultPlan::new("loss-spike")
        .at_ms(
            10,
            FaultKind::LossSpike {
                a: "s0".into(),
                b: "s1".into(),
                loss: 0.5,
            },
        )
        .at_ms(
            60,
            FaultKind::LossClear {
                a: "s0".into(),
                b: "s1".into(),
            },
        );
    esc.load_fault_plan(&plan).unwrap();
    esc.run_with_recovery(80);
    let rx = burst(&mut esc);
    Outcome {
        trace: esc.event_trace().to_vec(),
        rx,
        metrics: esc.metrics(),
    }
}

// ---------------- assertions -------------------------------------------

#[test]
fn scenario_link_flap_reroutes_and_converges() {
    let o = link_flap(101);
    assert_eq!(o.rx, BURST, "post-recovery burst fully received");
    assert_eq!(fault_count(&o.metrics, "link_down"), Some(1));
    assert_eq!(fault_count(&o.metrics, "link_up"), Some(1));
    assert_eq!(o.metrics.counter("escape.recoveries", &[]), Some(1));
    assert_eq!(o.metrics.counter("escape.recovery_failures", &[]), Some(0));
    assert_eq!(o.metrics.counter("orch.reroutes", &[]), Some(1));
    assert_eq!(o.metrics.counter("pox.steering.resteers", &[]), Some(1));
    // Convergence bound: re-route + re-steer within 10 virtual ms of the
    // fault landing at t=+10 ms (plus the 5 ms build settle).
    let at = recovered_at_ns(&o.trace).expect("recovery event logged");
    assert!(at <= 25_000_000, "converged at {at} ns");
    let lat = o.metrics.histogram("recovery.latency_ns", &[]).unwrap();
    assert_eq!(lat.count, 1);
    assert!(lat.sum < 10_000_000, "recovery latency {} ns", lat.sum);
    // Determinism: the same seed replays a byte-identical event trace.
    assert_eq!(o.trace, link_flap(101).trace);
    assert!(!o.trace.is_empty());
}

#[test]
fn scenario_vnf_crash_remaps_and_converges() {
    let o = vnf_crash(202);
    assert_eq!(o.rx, BURST, "post-recovery burst fully received");
    assert_eq!(fault_count(&o.metrics, "vnf_crash"), Some(1));
    assert_eq!(o.metrics.counter("escape.recoveries", &[]), Some(1));
    assert_eq!(o.metrics.counter("escape.recovery_failures", &[]), Some(0));
    assert_eq!(o.metrics.counter("orch.remaps", &[]), Some(1));
    assert_eq!(o.metrics.counter("pox.steering.resteers", &[]), Some(1));
    // Re-map includes a fresh NETCONF deployment leg; allow 15 virtual ms
    // after the crash at t=+10 ms (plus the 5 ms build settle).
    let at = recovered_at_ns(&o.trace).expect("recovery event logged");
    assert!(at <= 30_000_000, "converged at {at} ns");
    assert_eq!(o.trace, vnf_crash(202).trace);
}

#[test]
fn scenario_netconf_timeout_is_bridged_by_retries() {
    let o = netconf_timeout(303);
    assert_eq!(o.rx, BURST, "deployment converged despite the stall");
    assert_eq!(fault_count(&o.metrics, "vnf_stall"), Some(1));
    assert_eq!(fault_count(&o.metrics, "vnf_resume"), Some(1));
    let retries = o.metrics.counter("netconf.rpc_retries", &[]).unwrap();
    assert!(retries >= 1, "the stalled RPC was retried ({retries})");
    // The stall is below the crash threshold: no chain-level recovery.
    assert_eq!(o.metrics.counter("escape.recoveries", &[]), Some(0));
    assert_eq!(o.metrics.counter("escape.recovery_failures", &[]), Some(0));
    assert_eq!(o.trace, netconf_timeout(303).trace);
}

#[test]
fn scenario_loss_spike_reroutes_off_the_degraded_link() {
    let o = loss_spike(404);
    assert_eq!(o.rx, BURST, "clean backup path carries everything");
    assert_eq!(fault_count(&o.metrics, "loss_spike"), Some(1));
    assert_eq!(fault_count(&o.metrics, "loss_clear"), Some(1));
    assert_eq!(o.metrics.counter("escape.recoveries", &[]), Some(1));
    assert_eq!(o.metrics.counter("orch.reroutes", &[]), Some(1));
    let at = recovered_at_ns(&o.trace).expect("recovery event logged");
    assert!(at <= 25_000_000, "converged at {at} ns");
    assert_eq!(o.trace, loss_spike(404).trace);
}

#[test]
fn different_seeds_still_converge() {
    // Seeds change jitter and emulation randomness, never the outcome.
    for seed in [7, 8] {
        assert_eq!(link_flap(seed).rx, BURST, "seed {seed}");
    }
    // But traces of different seeds may differ (timing), while each seed
    // remains self-consistent — spot-check one.
    assert_eq!(vnf_crash(9).trace, vnf_crash(9).trace);
}

#[test]
fn fault_plan_with_unknown_target_is_rejected_at_load_time() {
    // Validation happens at load, not mid-run: the typed error names
    // the plan, the offending event index and the ghost entity, and the
    // injector is never installed.
    let mut esc = Escape::build(
        triangle(),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        61,
    )
    .unwrap();
    let plan = FaultPlan::new("ghost-hunt")
        .at_ms(
            1,
            FaultKind::LinkDown {
                a: "s0".into(),
                b: "s1".into(),
            },
        )
        .at_ms(2, FaultKind::VnfCrash { node: "c9".into() });
    let err = esc.load_fault_plan(&plan).err().unwrap();
    let escape::EscapeError::FaultPlan(escape_netem::FaultPlanError::UnknownNode {
        plan: name,
        index,
        node,
    }) = err
    else {
        panic!("expected FaultPlan(UnknownNode), got {err}");
    };
    assert_eq!(name, "ghost-hunt");
    assert_eq!(index, 1);
    assert_eq!(node, "c9");
    // Nothing was armed: time passes without any fault landing.
    esc.run_with_recovery(10);
    assert!(esc.event_trace().iter().all(|l| !l.contains("fault ")));
}
