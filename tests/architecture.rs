//! Experiment F1: Figure 1 — "The main components of ESCAPE with the
//! corresponding UNIFY architecture layers."
//!
//! This test brings up every component of the figure in one environment
//! and asserts the layer inventory is live:
//!
//! * Service layer — service graph (SG editor stand-in), SLA
//!   requirements, VNF catalog;
//! * Orchestration layer — resource view, mapping algorithm, NETCONF
//!   client, traffic steering;
//! * Infrastructure layer — Mininet-role emulator: OpenFlow switches,
//!   VNF containers (Click + NETCONF agent), SAPs, dedicated control
//!   network.

use escape::container::VnfContainer;
use escape::env::Escape;
use escape_catalog::Catalog;
use escape_netconf::vnf_starter;
use escape_orch::NearestNeighbor;
use escape_pox::{Controller, SteeringMode, TrafficSteering};
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

#[test]
fn figure1_all_layers_present_and_live() {
    // ---------- Infrastructure layer ----------
    let topo = builders::linear(3, 4.0);
    let n_switches = topo.switches().count();
    let n_containers = topo.containers().count();
    let n_saps = topo.saps().count();
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 99).unwrap();

    // Switches handshaked with the controller over the control network.
    let ctl = esc.sim.node_as::<Controller>(esc.infra.controller).unwrap();
    assert_eq!(
        ctl.connected_dpids().len(),
        n_switches,
        "OpenFlow switches up"
    );
    // Steering component registered (POX role).
    assert!(
        ctl.component_as::<TrafficSteering>().is_some(),
        "traffic steering app"
    );
    // Containers expose NETCONF agents speaking vnf_starter (OpenYuma role).
    assert_eq!(esc.infra.netconf_conn.len(), n_containers, "NETCONF agents");
    let module = vnf_starter::module();
    for rpc in [
        "initiateVNF",
        "startVNF",
        "stopVNF",
        "connectVNF",
        "disconnectVNF",
        "getVNFInfo",
    ] {
        assert!(module.rpc(rpc).is_some(), "vnf_starter rpc {rpc}");
    }
    assert!(
        module.to_yang().contains("module vnf_starter"),
        "YANG data model"
    );
    assert_eq!(esc.infra.sap_addr.len(), n_saps, "SAPs addressable");

    // ---------- Service layer ----------
    // VNF catalog ("a built-in set of useful VNFs implemented in Click").
    let catalog = Catalog::standard();
    assert!(catalog.names().len() >= 10, "VNF catalog stocked");
    // A service graph with an SLA-ish requirement (delay budget).
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 128)
        .with_params(&[("rules", "allow all")])
        .chain("svc", &["sap0", "fw", "sap1"], 25.0, Some(50_000));
    sg.validate().unwrap();

    // ---------- Orchestration layer ----------
    assert_eq!(esc.orchestrator().algorithm_name(), "nearest_neighbor");
    assert!(
        esc.orchestrator().state().total_free_cpu() > 0.0,
        "global resource view"
    );
    let report = esc.deploy(&sg).unwrap();
    assert_eq!(report.chains.len(), 1);
    assert!(
        report.chains[0].mapping.total_delay_us <= 50_000,
        "SLA delay budget honoured by the mapping"
    );

    // The deployed VNF is a real Click router inside a container.
    let dc = esc.deployed("svc").unwrap().clone();
    let vnf = &dc.vnfs[0];
    let cnode = esc.infra.node(&vnf.container).unwrap();
    let container = esc.sim.node_as::<VnfContainer>(cnode).unwrap();
    let idx = container.host().vnf_index(&vnf.vnf_id).unwrap();
    let slot = &container.host().vnfs[idx];
    assert_eq!(slot.vnf_type, "firewall");
    assert!(
        slot.router.element_names().iter().any(|n| n == "fw"),
        "Click element graph instantiated: {:?}",
        slot.router.element_names()
    );

    // And the whole stack moves packets.
    esc.start_udp("sap0", "sap1", 100, 500, 5).unwrap();
    esc.run_for_ms(50);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 5);

    // Print the layer inventory (the figure, in text).
    println!(
        "┌─ Service layer ──────── SG editor (DSL/JSON), catalog ({} VNFs), SLAs",
        catalog.names().len()
    );
    println!(
        "├─ Orchestration layer ── {} mapping, NETCONF client, steering",
        esc.orchestrator().algorithm_name()
    );
    println!(
        "└─ Infrastructure layer ─ {} switches (OF 1.0), {} containers (Click+NETCONF), {} SAPs",
        n_switches, n_containers, n_saps
    );
}
