//! End-to-end exercises of the control plane: an in-process `escaped`
//! daemon on a temp socket driven through the typed client, plus a real
//! subprocess run of the `escaped` and `escape` binaries.
//!
//! Covers the scripted lifecycle (deploy → traffic → run-for → fault →
//! heal → sla → teardown) from two concurrent clients, every typed error
//! path (unknown chain, malformed frame with byte offset, hard-watermark
//! admission rejection), and the determinism contract: two same-seed
//! daemons render byte-identical status and metrics documents.

use escape::session::demo_topology;
use escape::{AdmissionConfig, Session, SessionConfig};
use escape_ctl::proto::{CtlError, CtlRequest, CtlResponse, MetricsFormat, SgFormat};
use escape_ctl::server::{Daemon, DaemonConfig};
use escape_ctl::CtlClient;
use std::path::{Path, PathBuf};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

const DEMO_SG: &str = "sap sap0 sap1\n\
                       vnf fw type=firewall cpu=1\n\
                       chain demo = sap0 -> fw -> sap1 bw=50\n";

/// A mild loss spike on the s0–s1 trunk of the demo topology, later
/// cleared. Loss stays under the re-route threshold: the linear demo
/// substrate has no alternate path, so a harder fault would abandon the
/// chain instead of riding it out.
const FAULT_PLAN: &str = r#"{
  "name": "trunk-flap",
  "events": [
    { "at_us": 1000, "kind": "loss_spike", "a": "s0", "b": "s1", "loss": 0.1 },
    { "at_us": 9000, "kind": "loss_clear", "a": "s0", "b": "s1" }
  ]
}"#;

fn temp_socket(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("escape-ctl-{name}-{}.sock", std::process::id()))
}

fn default_session(seed: u64) -> Session {
    Session::new(
        demo_topology(),
        SessionConfig {
            seed,
            flight_recorder: Some(65_536),
            ..SessionConfig::default()
        },
    )
    .unwrap()
}

fn spawn_daemon(session: Session, socket: &Path) -> JoinHandle<()> {
    let cfg = DaemonConfig::new(socket.to_path_buf());
    thread::spawn(move || Daemon::run(session, cfg).unwrap())
}

/// Connects with retries — the daemon thread binds asynchronously.
fn connect(socket: &Path) -> CtlClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match CtlClient::connect(socket) {
            Ok(c) => return c,
            Err(e) if Instant::now() > deadline => {
                panic!("daemon never came up on {}: {e}", socket.display())
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn call(client: &mut CtlClient, req: CtlRequest) -> CtlResponse {
    client.call(&req).unwrap()
}

#[test]
fn full_lifecycle_over_the_socket() {
    let socket = temp_socket("lifecycle");
    let daemon = spawn_daemon(default_session(1), &socket);
    let mut c = connect(&socket);

    // Deploy from DSL text.
    let resp = call(
        &mut c,
        CtlRequest::Deploy {
            sg: DEMO_SG.into(),
            format: SgFormat::Dsl,
        },
    );
    let CtlResponse::Deployed(d) = resp else {
        panic!("deploy: {resp:?}")
    };
    assert_eq!(d.chains.len(), 1);
    assert_eq!(d.chains[0].name, "demo");
    assert!(d.total_ns > 0);

    // Push traffic and advance virtual time.
    assert_eq!(
        call(
            &mut c,
            CtlRequest::Traffic {
                from: "sap0".into(),
                to: "sap1".into(),
                frames: 20,
                len: 128,
                interval_us: 200,
            },
        ),
        CtlResponse::TrafficStarted
    );
    let CtlResponse::Advanced { now_ns } = call(&mut c, CtlRequest::RunFor { ms: 50 }) else {
        panic!("run-for")
    };
    assert!(now_ns >= 50_000_000);

    // Fault → heal → sla.
    let CtlResponse::FaultArmed { events } = call(
        &mut c,
        CtlRequest::Fault {
            plan: FAULT_PLAN.into(),
        },
    ) else {
        panic!("fault")
    };
    assert_eq!(events, 2);
    assert!(matches!(
        call(&mut c, CtlRequest::RunFor { ms: 20 }),
        CtlResponse::Advanced { .. }
    ));
    assert!(matches!(
        call(&mut c, CtlRequest::Heal),
        CtlResponse::Healed { .. }
    ));
    let CtlResponse::Sla(verdicts) = call(&mut c, CtlRequest::Sla) else {
        panic!("sla")
    };
    assert_eq!(verdicts.len(), 1);
    assert_eq!(verdicts[0].chain, "demo");
    assert!(verdicts[0].delivered > 0);

    // A second, concurrent client sees the same state.
    let mut c2 = connect(&socket);
    let CtlResponse::Status(status) = call(&mut c2, CtlRequest::Status) else {
        panic!("status")
    };
    assert_eq!(status.chains.len(), 1);
    assert_eq!(status.chains[0].name, "demo");
    assert_eq!(status.deploys, 1);
    assert!(status.utilization > 0.0);

    // Both metrics formats come back through the one exposition path.
    let CtlResponse::Metrics { body, .. } = call(
        &mut c2,
        CtlRequest::Metrics {
            format: MetricsFormat::Prometheus,
        },
    ) else {
        panic!("metrics")
    };
    assert!(body.contains("escape_deploys"), "{body}");
    let CtlResponse::Metrics { body, .. } = call(
        &mut c2,
        CtlRequest::Metrics {
            format: MetricsFormat::Json,
        },
    ) else {
        panic!("metrics json")
    };
    assert!(body.starts_with('{'), "{body}");

    // Teardown through one client, observed by the other.
    assert_eq!(
        call(
            &mut c,
            CtlRequest::Teardown {
                chain: "demo".into()
            }
        ),
        CtlResponse::ToreDown {
            chain: "demo".into()
        }
    );
    let CtlResponse::Status(status) = call(&mut c2, CtlRequest::Status) else {
        panic!("status")
    };
    assert!(status.chains.is_empty());

    assert_eq!(
        call(&mut c, CtlRequest::Shutdown),
        CtlResponse::ShuttingDown
    );
    daemon.join().unwrap();
    assert!(!socket.exists(), "socket file leaked");
}

#[test]
fn concurrent_clients_interleave_without_loss() {
    let socket = temp_socket("concurrent");
    let daemon = spawn_daemon(default_session(3), &socket);
    let mut c0 = connect(&socket);
    let CtlResponse::Status(base) = call(&mut c0, CtlRequest::Status) else {
        panic!("status")
    };

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            thread::spawn(move || {
                let mut c = connect(&socket);
                for _ in 0..10 {
                    assert!(matches!(
                        c.call(&CtlRequest::Status).unwrap(),
                        CtlResponse::Status(_)
                    ));
                    assert!(matches!(
                        c.call(&CtlRequest::RunFor { ms: 1 }).unwrap(),
                        CtlResponse::Advanced { .. }
                    ));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // All 4 × 10 run-for commands executed, strictly serialized: virtual
    // time advanced by exactly their sum.
    let CtlResponse::Status(status) = call(&mut c0, CtlRequest::Status) else {
        panic!("status")
    };
    assert_eq!(status.now_ns, base.now_ns + 40_000_000);

    call(&mut c0, CtlRequest::Shutdown);
    daemon.join().unwrap();
}

#[test]
fn typed_errors_keep_the_connection_open() {
    let socket = temp_socket("errors");
    let daemon = spawn_daemon(default_session(5), &socket);
    let mut c = connect(&socket);

    // Malformed JSON: framed error with the byte offset, not a hangup.
    let resp = c.send_raw("{\"verb\": nope}").unwrap();
    assert_eq!(
        resp,
        CtlResponse::Error(CtlError::Malformed {
            offset: 9,
            reason: "bad literal".into()
        })
    );

    // Valid JSON, unknown verb.
    let resp = c.send_raw("{\"verb\": \"dance\"}").unwrap();
    assert_eq!(
        resp,
        CtlResponse::Error(CtlError::UnknownVerb {
            verb: "dance".into()
        })
    );

    // Valid verb, missing fields.
    let resp = c.send_raw("{\"verb\": \"teardown\"}").unwrap();
    assert!(matches!(resp, CtlResponse::Error(CtlError::Invalid { .. })));

    // Unknown chain: typed not-found.
    let resp = call(
        &mut c,
        CtlRequest::Teardown {
            chain: "ghost".into(),
        },
    );
    assert_eq!(
        resp,
        CtlResponse::Error(CtlError::NotFound {
            what: "chain ghost".into()
        })
    );

    // The same connection still works after every error above.
    assert!(matches!(
        call(&mut c, CtlRequest::Status),
        CtlResponse::Status(_)
    ));

    call(&mut c, CtlRequest::Shutdown);
    daemon.join().unwrap();
}

#[test]
fn hard_watermark_rejection_surfaces_as_typed_error() {
    let socket = temp_socket("admission");
    let session = Session::new(
        demo_topology(),
        SessionConfig {
            seed: 7,
            admission: Some(AdmissionConfig {
                soft_watermark: 0.0,
                hard_watermark: 0.0,
                max_queue: 2,
                max_retries: 2,
            }),
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let daemon = spawn_daemon(session, &socket);
    let mut c = connect(&socket);

    // Utilization 0.0 already meets the 0.0 hard watermark: the deploy
    // must come back as a framed RejectedHard, not a dropped connection.
    let resp = call(
        &mut c,
        CtlRequest::Deploy {
            sg: DEMO_SG.into(),
            format: SgFormat::Dsl,
        },
    );
    let CtlResponse::Error(CtlError::RejectedHard {
        utilization,
        hard_watermark,
    }) = resp
    else {
        panic!("expected RejectedHard, got {resp:?}")
    };
    assert_eq!(utilization, 0.0);
    assert_eq!(hard_watermark, 0.0);

    // The rejection is visible in the counters on the same connection.
    let CtlResponse::Status(status) = call(&mut c, CtlRequest::Status) else {
        panic!("status")
    };
    assert_eq!(status.admission_rejected, 1);
    assert!(status.chains.is_empty());

    call(&mut c, CtlRequest::Shutdown);
    daemon.join().unwrap();
}

/// Runs one scripted session and returns the rendered (status, metrics)
/// documents exactly as they crossed the wire.
fn scripted_run(name: &str, seed: u64, frames: u64, run_ms: u64) -> (String, String) {
    let socket = temp_socket(name);
    let daemon = spawn_daemon(default_session(seed), &socket);
    let mut c = connect(&socket);
    call(
        &mut c,
        CtlRequest::Deploy {
            sg: DEMO_SG.into(),
            format: SgFormat::Dsl,
        },
    );
    call(
        &mut c,
        CtlRequest::Traffic {
            from: "sap0".into(),
            to: "sap1".into(),
            frames,
            len: 256,
            interval_us: 150,
        },
    );
    call(&mut c, CtlRequest::RunFor { ms: run_ms });
    let status = call(&mut c, CtlRequest::Status).encode();
    let CtlResponse::Metrics { body, .. } = call(
        &mut c,
        CtlRequest::Metrics {
            format: MetricsFormat::Json,
        },
    ) else {
        panic!("metrics")
    };
    call(&mut c, CtlRequest::Shutdown);
    daemon.join().unwrap();
    (status, body)
}

/// Drops the reserved `wallclock.*` metrics from a rendered metrics
/// document — the only family allowed to differ between same-seed runs.
/// The namespace makes this a typed prefix filter on the parsed
/// document, not a guess at line layout.
fn without_wallclock(doc: &str) -> String {
    let mut root = escape_json::Value::parse(doc).expect("metrics document parses");
    if let escape_json::Value::Obj(fields) = &mut root {
        if let Some((_, escape_json::Value::Obj(m))) =
            fields.iter_mut().find(|(k, _)| k == "metrics")
        {
            if let Some((_, escape_json::Value::Arr(entries))) =
                m.iter_mut().find(|(k, _)| k == "metrics")
            {
                entries.retain(|e| {
                    !matches!(
                        e.get("name").and_then(escape_json::Value::as_str),
                        Some(name) if name.starts_with("wallclock.")
                    )
                });
            }
        }
    }
    root.to_string_pretty()
}

#[test]
fn same_seed_daemons_render_byte_identical_documents() {
    let (status_a, metrics_a) = scripted_run("det-a", 42, 30, 40);
    let (status_b, metrics_b) = scripted_run("det-b", 42, 30, 40);
    assert_eq!(status_a, status_b);
    let scrubbed_a = without_wallclock(&metrics_a);
    assert!(
        metrics_a.contains("wallclock.orch_placement_ns")
            && !scrubbed_a.contains("wallclock.orch_placement_ns"),
        "filter must drop the wall-clock histogram, not no-op"
    );
    assert_eq!(scrubbed_a, without_wallclock(&metrics_b));

    // The equality above is not a constant-output artifact: a different
    // script (more traffic, longer run) renders different documents.
    let (status_c, metrics_c) = scripted_run("det-c", 42, 60, 80);
    assert_ne!(status_a, status_c);
    assert_ne!(scrubbed_a, without_wallclock(&metrics_c));
}

#[test]
fn escaped_binary_shuts_down_gracefully_on_sigterm() {
    let socket = temp_socket("subprocess");
    let artifacts =
        std::env::temp_dir().join(format!("escape-ctl-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&artifacts);

    let mut daemon = std::process::Command::new(env!("CARGO_BIN_EXE_escaped"))
        .args(["--socket"])
        .arg(&socket)
        .args(["--seed", "11", "--artifacts"])
        .arg(&artifacts)
        .spawn()
        .unwrap();

    // Drive it once through the real `escape ctl` client binary.
    connect(&socket);
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_escape"))
        .args(["ctl", "--socket"])
        .arg(&socket)
        .arg("status")
        .output()
        .unwrap();
    assert!(
        status.status.success(),
        "escape ctl status failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    assert!(String::from_utf8_lossy(&status.stdout).contains("0 chain(s)"));

    // SIGTERM → graceful shutdown: clean exit, telemetry flushed, no
    // socket file left behind.
    let kill = std::process::Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let deadline = Instant::now() + Duration::from_secs(10);
    let exit = loop {
        if let Some(st) = daemon.try_wait().unwrap() {
            break st;
        }
        if Instant::now() > deadline {
            daemon.kill().unwrap();
            panic!("escaped did not exit within 10s of SIGTERM");
        }
        thread::sleep(Duration::from_millis(20));
    };
    assert!(exit.success(), "escaped exited with {exit:?}");
    assert!(!socket.exists(), "socket file leaked");
    assert!(artifacts.join("metrics.prom").exists());
    assert!(artifacts.join("metrics.json").exists());
    let _ = std::fs::remove_dir_all(&artifacts);
}
