//! Flight-recorder integration: deploy a chain, push traffic, and check
//! that journeys reconstruct the real path, drops are attributed to the
//! exact hop, SLA verdicts follow the budget, and the Chrome export is
//! deterministic.

use escape::env::Escape;
use escape::flight::{NodeKind, Outcome};
use escape_netem::{DropReason, LinkState};
use escape_orch::NearestNeighbor;
use escape_pox::SteeringMode;
use escape_sg::{topo::builders, ServiceGraph, Sla};

fn demo_sg(sla: Option<Sla>) -> ServiceGraph {
    let mut g = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 256)
        .vnf("mon", "monitor", 0.5, 64)
        .chain("demo", &["sap0", "fw", "mon", "sap1"], 100.0, Some(50_000));
    if let Some(s) = sla {
        g = g.with_sla(s);
    }
    g
}

fn build_and_run(sla: Option<Sla>) -> Escape {
    let topo = builders::linear(3, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 7).unwrap();
    esc.deploy(&demo_sg(sla)).unwrap();
    esc.enable_flight_recorder(65_536);
    esc.start_udp("sap0", "sap1", 128, 200, 10).unwrap();
    esc.run_for_ms(50);
    esc
}

#[test]
fn journeys_follow_the_chain_with_monotonic_timestamps() {
    let esc = build_and_run(None);
    let fr = esc.flight_record_aggregated();
    assert_eq!(fr.journeys.len(), 10, "one journey per sent frame");
    for j in &fr.journeys {
        assert_eq!(j.chain.as_deref(), Some("demo"), "cookie attribution");
        assert!(matches!(j.outcome, Outcome::Delivered { .. }), "{j:?}");
        // host → switch → … → container → … → switch → host.
        let kinds: Vec<NodeKind> = j.hops.iter().map(|h| h.kind).collect();
        assert_eq!(kinds.first(), Some(&NodeKind::Host));
        assert_eq!(kinds.last(), Some(&NodeKind::Host));
        assert!(kinds.contains(&NodeKind::Switch));
        assert!(kinds.contains(&NodeKind::Container));
        assert!(
            j.hops.windows(2).all(|w| w[0].arrived <= w[1].arrived),
            "virtual timestamps must be monotonic"
        );
        // Switch visits explain which rule matched; the VNF visit lists
        // the Click elements traversed (the firewall element among them).
        let details: Vec<String> = j
            .hops
            .iter()
            .flat_map(|h| h.details.iter().map(|d| d.to_string()))
            .collect();
        assert!(details.iter().any(|d| d.starts_with("flow-match")));
        assert!(details
            .iter()
            .any(|d| d.starts_with("vnf ") && d.contains("fw")));
        assert!(j.e2e_latency_ns().unwrap() > 0);
    }
    // Aggregates landed in the shared registry.
    let snap = esc.metrics();
    assert_eq!(
        snap.counter("chain.delivered", &[("chain", "demo")]),
        Some(10)
    );
    let h = snap
        .histogram("chain.e2e_latency_ns", &[("chain", "demo")])
        .expect("latency histogram exists");
    assert_eq!(h.count, 10);
}

#[test]
fn link_down_is_pinned_to_the_exact_hop() {
    let topo = builders::linear(3, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 7).unwrap();
    esc.deploy(&demo_sg(None)).unwrap();
    esc.enable_flight_recorder(65_536);
    // Cut the inter-switch trunk *after* the first switch, so packets are
    // steered (and attributed) before they die.
    let trunk = esc.sim.find_links("s1", "s2");
    assert!(!trunk.is_empty(), "linear topo has an s1-s2 trunk");
    for l in trunk {
        esc.sim.set_link_state(l, LinkState::Down);
    }
    esc.start_udp("sap0", "sap1", 128, 200, 5).unwrap();
    esc.run_for_ms(50);
    let fr = esc.flight_record();
    assert_eq!(fr.journeys.len(), 5);
    for j in &fr.journeys {
        assert_eq!(j.chain.as_deref(), Some("demo"));
        assert_eq!(
            j.outcome,
            Outcome::Dropped {
                node: "s1".into(),
                reason: DropReason::LinkDown
            },
            "journey must end at the dead trunk: {}",
            fr.timeline(j)
        );
        let last = j.hops.last().unwrap();
        assert_eq!(last.node, "s1");
        assert_eq!(last.drop, Some(DropReason::LinkDown));
    }
    // The typed drop reason is also counted in telemetry.
    assert_eq!(
        esc.metrics()
            .counter("netem.drops", &[("reason", "link_down")]),
        Some(5)
    );
}

#[test]
fn sla_verdicts_follow_the_budget() {
    // Impossible budget: every delivered packet violates 10 µs.
    let esc = build_and_run(Some(Sla {
        max_latency_us: Some(10),
        max_loss: Some(0.0),
    }));
    let verdicts = esc.sla_verdicts();
    assert_eq!(verdicts.len(), 1);
    let v = &verdicts[0];
    assert_eq!(v.chain, "demo");
    assert_eq!(v.delivered, 10);
    assert!(!v.pass, "tight sla must fail: {v}");
    assert!(v.to_string().contains("FAIL"));

    // Generous budget: same traffic passes.
    let esc = build_and_run(Some(Sla {
        max_latency_us: Some(50_000),
        max_loss: Some(0.0),
    }));
    let v = &esc.sla_verdicts()[0];
    assert!(v.pass, "loose sla must pass: {v}");
    assert_eq!(v.loss, 0.0);
}

#[test]
fn chrome_export_is_deterministic_and_parseable() {
    let doc_a = build_and_run(None).flight_record().chrome_json();
    let doc_b = build_and_run(None).flight_record().chrome_json();
    assert_eq!(doc_a, doc_b, "same seed ⇒ byte-identical export");
    let v = escape_json::Value::parse(&doc_a).expect("valid JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    // Every event carries the fields trace viewers require.
    for e in events {
        for field in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(e.get(field).is_some(), "event missing {field}");
        }
    }
}
