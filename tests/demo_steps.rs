//! Experiment D5: the five-step SIGCOMM'14 demo, scripted.
//!
//! Paper §2: "The audience can (1) define VNF containers and the rest of
//! the topology, (2) use the SG editor to create an abstract service
//! graph where VNFs can be selected from a predefined list, (3) initiate
//! the SG mapping to network resources and the deployment, (4) use
//! standard tools to send and inspect live traffic, and (5) monitor the
//! VNFs with Clicky."
//!
//! Our GUI stand-ins are the topology/SG DSLs; "standard tools" is the
//! SAP traffic generator + payload inbox; "Clicky" is the NETCONF
//! handler monitor.

use escape::env::Escape;
use escape::monitor::{format_handler_table, headline};
use escape_catalog::Catalog;
use escape_orch::NearestNeighbor;
use escape_pox::SteeringMode;
use escape_sg::{parse_service_graph, parse_topology};

/// The demo topology: two SAPs, two switches, two VNF containers.
const TOPOLOGY: &str = "\
# Step 1: define VNF containers and the rest of the topology
switch s1 s2
container c1 cpu=4 mem=2048
container c2 cpu=4 mem=2048
sap sap0 sap1
link sap0 s1 bw=1000 delay=10us
link sap1 s2 bw=1000 delay=10us
link s1 s2   bw=1000 delay=100us
link c1 s1   bw=1000 delay=20us
link c2 s2   bw=1000 delay=20us
";

/// The demo service graph: sap0 -> firewall -> rate limiter -> sap1.
const SERVICE_GRAPH: &str = "\
# Step 2: create an abstract service graph in the SG editor
sap sap0 sap1
vnf fw  type=firewall     cpu=1 rules=allow_udp
vnf lim type=rate_limiter cpu=1 rate_bps=5000000
chain demo = sap0 -> fw -> lim -> sap1 bw=50 delay=10ms
";

/// The DSL carries `rules=allow_udp` (no spaces in DSL values); expand it
/// to the real rule text before deployment.
fn demo_sg() -> escape_sg::ServiceGraph {
    let mut sg = parse_service_graph(SERVICE_GRAPH).expect("step 2: SG parses");
    for v in &mut sg.vnfs {
        for (k, val) in &mut v.params {
            if k == "rules" && val == "allow_udp" {
                *val = "allow udp".to_string();
            }
        }
    }
    sg
}

#[test]
fn five_step_demo() {
    // Step 1 — topology definition (GUI stand-in: the DSL).
    let topo = parse_topology(TOPOLOGY).expect("step 1: topology parses");
    assert_eq!(topo.containers().count(), 2);

    // Step 2 — service graph, with VNFs "selected from a predefined
    // list" (they must exist in the catalog).
    let sg = demo_sg();
    let catalog = Catalog::standard();
    for v in &sg.vnfs {
        assert!(
            catalog.get(&v.vnf_type).is_some(),
            "step 2: {} not in catalog",
            v.vnf_type
        );
    }

    // Step 3 — mapping + deployment.
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 14).unwrap();
    let report = esc.deploy(&sg).expect("step 3: deployment succeeds");
    assert_eq!(report.chains.len(), 1);
    let chain = &report.chains[0];
    assert_eq!(chain.vnfs.len(), 2);
    assert!(
        report.netconf_phase().as_us() > 0,
        "NETCONF RPCs take virtual time"
    );
    println!(
        "step 3: chain deployed in {} (netconf {}, steering {})",
        report.total(),
        report.netconf_phase(),
        report.steering_phase()
    );

    // Step 4 — send and inspect live traffic.
    esc.start_udp("sap0", "sap1", 300, 1_000, 20).unwrap();
    esc.run_for_ms(200);
    let stats = esc.sap_stats("sap1").unwrap();
    assert_eq!(stats.udp_rx, 20, "step 4: traffic flows through the chain");
    let inbox = esc.sap_inbox("sap1").unwrap();
    assert!(!inbox.is_empty(), "step 4: payloads inspectable at the SAP");

    // Step 5 — monitor the VNFs "with Clicky".
    let fw_handlers = esc.monitor_vnf("demo", "fw").unwrap();
    let fw_table = format_handler_table("fw @ demo", &fw_handlers);
    println!("{fw_table}");
    assert!(
        fw_handlers
            .iter()
            .any(|(k, v)| k == "fw.passed" && v == "20"),
        "step 5: firewall counters visible: {fw_handlers:?}"
    );
    let lim_handlers = esc.monitor_vnf("demo", "lim").unwrap();
    assert!(
        lim_handlers
            .iter()
            .any(|(k, v)| k == "shaper.count" && v == "20"),
        "step 5: shaper counters visible: {lim_handlers:?}"
    );
    let hl = headline(&fw_handlers);
    assert!(hl.iter().any(|(k, _)| *k == "status"));
}

#[test]
fn demo_chain_respects_the_rate_limit() {
    // The demo's rate limiter (5 Mbit/s) must pace a burst: offered load
    // 300 B / 100 µs = 24 Mbit/s. 50 frames need 50*300*8/5e6 = 24 ms to
    // drain, so the tail packet queues for many milliseconds.
    let topo = parse_topology(TOPOLOGY).unwrap();
    let sg = demo_sg();
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 15).unwrap();
    esc.deploy(&sg).unwrap();
    esc.start_udp("sap0", "sap1", 300, 100, 50).unwrap();
    esc.run_for_ms(500);
    let stats = esc.sap_stats("sap1").unwrap();
    assert_eq!(stats.udp_rx, 50, "shaper buffers, not drops, at this depth");
    assert!(
        stats.latency_max_ns > 10_000_000,
        "tail packet queued >10 ms behind the shaper, got {} ns",
        stats.latency_max_ns
    );
}
