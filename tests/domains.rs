//! Multi-domain orchestration, end to end: hierarchical mapping,
//! parallel per-domain simulation with deterministic gateway handoff,
//! cross-domain SLA-relevant latency, per-domain telemetry, and global
//! re-stitching around gateway failures.
//!
//! The headline assertion is the determinism witness: a cross-domain
//! chain over three domains yields identical embeddings and a
//! byte-identical merged flight-recorder trace across repeated runs
//! *and* across worker-thread counts.

use escape::env::Escape;
use escape_domain::DomainSpec;
use escape_orch::{GreedyFirstFit, MappingAlgorithm};
use escape_pox::SteeringMode;
use escape_sg::{ResourceTopology, ServiceGraph};

fn greedy() -> Box<dyn MappingAlgorithm> {
    Box::new(GreedyFirstFit)
}

/// Three domains in a line:
/// `sap0 - s0(c0) -[300us]- s1(c1) -[400us]- s2(c2) - sap2`.
fn linear3() -> (ResourceTopology, DomainSpec) {
    let mut t = ResourceTopology::new();
    t.add_sap("sap0")
        .add_switch("s0")
        .add_container("c0", 4.0, 2048)
        .add_switch("s1")
        .add_container("c1", 4.0, 2048)
        .add_switch("s2")
        .add_container("c2", 4.0, 2048)
        .add_sap("sap2")
        .add_link("sap0", "s0", 1000.0, 10)
        .add_link("c0", "s0", 1000.0, 20)
        .add_link("s0", "s1", 1000.0, 300)
        .add_link("c1", "s1", 1000.0, 20)
        .add_link("s1", "s2", 1000.0, 400)
        .add_link("c2", "s2", 1000.0, 20)
        .add_link("sap2", "s2", 1000.0, 10);
    let spec = DomainSpec::new()
        .domain("d0", &["sap0", "s0", "c0"])
        .domain("d1", &["s1", "c1"])
        .domain("d2", &["s2", "c2", "sap2"]);
    (t, spec)
}

/// A chain whose three VNFs spill over two domains (4 CPU per domain,
/// 1.5 CPU per VNF: f1+f2 land in d0, f3 in d1, d2 is transit+exit).
fn spill_sg() -> ServiceGraph {
    ServiceGraph::new()
        .sap("sap0")
        .sap("sap2")
        .vnf("f1", "firewall", 1.5, 256)
        .vnf("f2", "monitor", 1.5, 256)
        .vnf("f3", "firewall", 1.5, 256)
        .chain("c1", &["sap0", "f1", "f2", "f3", "sap2"], 50.0, None)
}

const BURST: u64 = 20;

/// One full run at the given worker count; returns the witnesses.
fn run_linear3(workers: usize) -> (String, String, Vec<String>, u64) {
    let (topo, spec) = linear3();
    let mut md =
        Escape::with_domains(&topo, &spec, &greedy, SteeringMode::Proactive, 42, workers).unwrap();
    md.enable_flight_recorder(4096);
    md.deploy(&spill_sg()).unwrap();
    md.start_chain_udp("c1", 128, 200, BURST).unwrap();
    md.run_for_ms(60);
    let rx = md.sap_stats("sap2").unwrap().udp_rx;
    (
        md.embedding_trace(),
        md.merged_flight_trace(),
        md.event_trace(),
        rx,
    )
}

#[test]
fn three_domain_chain_delivers_end_to_end() {
    let (topo, spec) = linear3();
    let mut md =
        Escape::with_domains(&topo, &spec, &greedy, SteeringMode::Proactive, 42, 1).unwrap();
    md.deploy(&spill_sg()).unwrap();

    // The hierarchical split: VNFs greedily fill d0, spill into d1.
    let plan = md.plan("c1").unwrap();
    assert_eq!(plan.domain_path, vec!["d0", "d1", "d2"]);
    assert_eq!(plan.legs[0].vnfs, vec!["f1", "f2"]);
    assert_eq!(plan.legs[1].vnfs, vec!["f3"]);
    assert!(plan.legs[2].vnfs.is_empty());
    assert_eq!(plan.inter_domain_us, 700);

    md.start_chain_udp("c1", 128, 200, BURST).unwrap();
    md.run_for_ms(60);
    assert_eq!(md.sap_stats("sap2").unwrap().udp_rx, BURST);
    // Gateway SAPs buffered and forwarded rather than consuming.
    let m = md.metrics();
    assert_eq!(
        m.counter("domains.handoffs", &[("domain", "global"), ("from", "d0")]),
        Some(BURST)
    );
    assert_eq!(
        m.counter("domains.handoffs", &[("domain", "global"), ("from", "d1")]),
        Some(BURST)
    );
}

#[test]
fn determinism_across_runs_and_worker_counts() {
    let (embed1, flight1, events1, rx1) = run_linear3(1);
    assert_eq!(rx1, BURST);
    assert!(!flight1.is_empty(), "flight recorder captured journeys");
    for workers in [1, 2, 4] {
        let (embed, flight, events, rx) = run_linear3(workers);
        assert_eq!(rx, BURST, "workers={workers}");
        assert_eq!(embed, embed1, "embedding differs at workers={workers}");
        assert_eq!(flight, flight1, "flight trace differs at workers={workers}");
        assert_eq!(events, events1, "event trace differs at workers={workers}");
    }
}

#[test]
fn per_domain_telemetry_labels() {
    let (topo, spec) = linear3();
    let mut md =
        Escape::with_domains(&topo, &spec, &greedy, SteeringMode::Proactive, 7, 2).unwrap();
    md.enable_flight_recorder(4096);
    md.deploy(&spill_sg()).unwrap();
    md.start_chain_udp("c1", 128, 200, BURST).unwrap();
    md.run_for_ms(60);

    let m = md.metrics();
    // Every domain deployed exactly one leg, each visible under its own
    // `domain` label in the merged snapshot.
    for d in ["d0", "d1", "d2"] {
        assert_eq!(
            m.counter("escape.chains_deployed", &[("domain", d)]),
            Some(1),
            "missing per-domain deploy counter for {d}"
        );
    }
    // Flight journeys aggregate per domain too (each leg is a journey).
    for d in ["d0", "d1", "d2"] {
        let esc = md.domain_escape(d).unwrap();
        let fr = esc.flight_record();
        assert!(
            fr.journeys.iter().any(|j| j.chain.as_deref() == Some("c1")),
            "domain {d} recorded no journeys for the stitched chain"
        );
    }
}

/// A diamond of domains: d0 reaches d3 either through d1 (cheap) or
/// through d2 (expensive). Failing the d0-d1 gateway forces a global
/// re-stitch onto the d2 route.
fn diamond() -> (ResourceTopology, DomainSpec) {
    let mut t = ResourceTopology::new();
    t.add_sap("sap0")
        .add_switch("s0")
        .add_container("c0", 4.0, 2048)
        .add_switch("s1")
        .add_container("c1", 4.0, 2048)
        .add_switch("s2")
        .add_container("c2", 4.0, 2048)
        .add_switch("s3")
        .add_container("c3", 4.0, 2048)
        .add_sap("sap3")
        .add_link("sap0", "s0", 1000.0, 10)
        .add_link("c0", "s0", 1000.0, 20)
        .add_link("s0", "s1", 1000.0, 300)
        .add_link("s1", "s3", 1000.0, 300)
        .add_link("s0", "s2", 1000.0, 500)
        .add_link("s2", "s3", 1000.0, 500)
        .add_link("c1", "s1", 1000.0, 20)
        .add_link("c2", "s2", 1000.0, 20)
        .add_link("c3", "s3", 1000.0, 20)
        .add_link("sap3", "s3", 1000.0, 10);
    let spec = DomainSpec::new()
        .domain("d0", &["sap0", "s0", "c0"])
        .domain("d1", &["s1", "c1"])
        .domain("d2", &["s2", "c2"])
        .domain("d3", &["s3", "c3", "sap3"]);
    (t, spec)
}

#[test]
fn gateway_failure_triggers_global_restitch() {
    let (topo, spec) = diamond();
    let mut md =
        Escape::with_domains(&topo, &spec, &greedy, SteeringMode::Proactive, 11, 2).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap3")
        .vnf("fw", "firewall", 1.0, 256)
        .chain("c1", &["sap0", "fw", "sap3"], 20.0, None);
    md.deploy(&sg).unwrap();
    assert_eq!(
        md.plan("c1").unwrap().domain_path,
        vec!["d0", "d1", "d3"],
        "initial stitch takes the cheap route"
    );

    // Kill the d0-d1 gateway: both half-links drop, the global layer
    // re-plans around it and redeploys the legs.
    md.fail_gateway(0).unwrap();
    assert_eq!(md.plan("c1").unwrap().domain_path, vec!["d0", "d2", "d3"]);
    assert!(
        md.event_trace()
            .iter()
            .any(|l| l.contains("re-stitched across")),
        "re-stitch not visible in the merged event trace"
    );

    // The re-stitched chain still carries traffic end to end.
    md.start_chain_udp("c1", 128, 200, BURST).unwrap();
    md.run_for_ms(60);
    assert_eq!(md.sap_stats("sap3").unwrap().udp_rx, BURST);

    // The metrics see the re-stitch under the global domain label.
    assert_eq!(
        md.metrics()
            .counter("domains.restitches", &[("domain", "global")]),
        Some(1)
    );
}

#[test]
fn intra_domain_crash_heals_locally_without_restitch() {
    // Two containers in d1 so the local orchestrator can remap the
    // crashed VNF onto the survivor without escalating.
    let mut t = ResourceTopology::new();
    t.add_sap("sap0")
        .add_switch("s0")
        .add_container("c0", 4.0, 2048)
        .add_switch("s1")
        .add_container("c1a", 4.0, 2048)
        .add_container("c1b", 4.0, 2048)
        .add_sap("sap1")
        .add_link("sap0", "s0", 1000.0, 10)
        .add_link("c0", "s0", 1000.0, 20)
        .add_link("s0", "s1", 1000.0, 300)
        .add_link("c1a", "s1", 1000.0, 20)
        .add_link("c1b", "s1", 1000.0, 20)
        .add_link("sap1", "s1", 1000.0, 10);
    let spec = DomainSpec::new()
        .domain("d0", &["sap0", "s0", "c0"])
        .domain("d1", &["s1", "c1a", "c1b", "sap1"]);
    let mut md = Escape::with_domains(&t, &spec, &greedy, SteeringMode::Proactive, 5, 2).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("f0", "firewall", 3.0, 256)
        .vnf("f1", "monitor", 3.0, 256)
        .chain("c1", &["sap0", "f0", "f1", "sap1"], 20.0, None);
    md.deploy(&sg).unwrap();
    // f0 fills d0 (3 of 4 cpu), f1 spills to d1 and lands on c1a.
    let plan = md.plan("c1").unwrap();
    assert_eq!(plan.legs[1].vnfs, vec!["f1"]);

    // Crash the container hosting f1 via the d1-local fault plan.
    use escape_netem::{FaultEvent, FaultKind, FaultPlan};
    let container = {
        let dc = md.domain_escape("d1").unwrap().deployed("c1").unwrap();
        dc.vnfs[0].container.clone()
    };
    assert_eq!(container, "c1a");
    // The fault is local to d1, so local recovery must handle it.
    md.domain_escape_mut("d1")
        .unwrap()
        .load_fault_plan(&FaultPlan {
            name: "crash".into(),
            events: vec![FaultEvent {
                at_us: 2_000,
                kind: FaultKind::VnfCrash { node: "c1a".into() },
            }],
        })
        .unwrap();
    md.run_for_ms(30);

    // Local remap moved f1 to the surviving container; the global plan
    // (domain path) is unchanged — no escalation.
    let d1 = md.domain_escape("d1").unwrap();
    let dc = d1.deployed("c1").expect("chain survived locally");
    assert_eq!(dc.vnfs[0].container, "c1b");
    assert_eq!(md.plan("c1").unwrap().domain_path, vec!["d0", "d1"]);
    assert_eq!(
        md.metrics()
            .counter("domains.restitches", &[("domain", "global")]),
        None,
        "no global re-stitch should have happened"
    );
    assert_eq!(
        md.metrics()
            .counter("escape.recoveries", &[("domain", "d1")]),
        Some(1)
    );

    // Traffic still flows over the healed chain.
    md.start_chain_udp("c1", 128, 200, BURST).unwrap();
    md.run_for_ms(60);
    assert_eq!(md.sap_stats("sap1").unwrap().udp_rx, BURST);
}

#[test]
fn coordinator_admission_rejects_at_hard_watermark() {
    // Fill the three domains past a low hard watermark, then verify the
    // coordinator rejects with the typed verdict instead of planning a
    // doomed cross-domain chain.
    let (topo, spec) = linear3();
    let mut md =
        Escape::with_domains(&topo, &spec, &greedy, SteeringMode::Proactive, 77, 1).unwrap();
    md.set_admission(escape::AdmissionConfig {
        soft_watermark: 0.2,
        hard_watermark: 0.3,
        max_queue: 4,
        max_retries: 3,
    });
    assert_eq!(md.cpu_utilization(), 0.0);
    md.deploy(&spill_sg()).unwrap();
    // 4.5 of 12 CPU reserved -> mean utilization 0.375 >= 0.3.
    assert!(md.cpu_utilization() >= 0.3, "{}", md.cpu_utilization());

    let more = ServiceGraph::new()
        .sap("sap0")
        .sap("sap2")
        .vnf("g1", "monitor", 0.5, 64)
        .chain("c2", &["sap0", "g1", "sap2"], 10.0, None);
    let err = md.deploy(&more).err().unwrap();
    let escape::EscapeError::Admission(escape::AdmissionVerdict::RejectedHard {
        utilization,
        hard_watermark,
    }) = err
    else {
        panic!("expected RejectedHard, got {err}");
    };
    assert!(utilization >= hard_watermark);
    assert!(
        md.event_trace()
            .iter()
            .any(|l| l.contains("admission: rejected")),
        "trace: {:#?}",
        md.event_trace()
    );

    // Freeing the chain reopens admission.
    md.teardown("c1").unwrap();
    md.deploy(&more).unwrap();
}
