//! Leak-hunting soak runs and admission-control behavior.
//!
//! The soak harness ([`escape::soak::run_soak`]) drives one environment
//! through hundreds of seeded random deploy / teardown / fault / heal
//! steps with admission control on, asserting the conservation
//! invariants after every single step:
//!
//! * reserved CPU and bandwidth equal the sum over live chains
//!   (orchestrator audit);
//! * no flow rule carries a cookie without a live chain;
//! * no VNF runs outside the current embedding;
//! * no ready NETCONF session dangles.
//!
//! The admission tests pin down the watermark semantics directly:
//! hard → typed rejection, soft → queue + deterministic retry.

use escape::env::Escape;
use escape::soak::{run_soak, SoakConfig};
use escape::{AdmissionConfig, AdmissionVerdict, EscapeError};
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

#[test]
fn soak_500_steps_keeps_every_invariant() {
    let report = run_soak(SoakConfig {
        steps: 500,
        seed: 7,
    });
    assert!(report.clean(), "violations: {:#?}", report.violations);
    assert_eq!(report.steps, 500, "no early abort");
    // The run must actually exercise the machinery, not idle through it.
    assert!(report.deploys >= 50, "{}", report.summary());
    assert!(report.teardowns >= 20, "{}", report.summary());
    assert!(report.faults >= 30, "{}", report.summary());
}

#[test]
fn soak_exercises_rollback_and_retry_paths() {
    // Across a few seeds the op mix must hit the interesting paths:
    // deploys that roll back mid-transaction (long agent stalls) and
    // teardowns that bounce off a stalled agent and retry.
    let mut rollbacks = 0;
    let mut teardown_retries = 0;
    for seed in [5, 7, 42] {
        let report = run_soak(SoakConfig { steps: 200, seed });
        assert!(report.clean(), "seed {seed}: {:#?}", report.violations);
        rollbacks += report.rollbacks;
        teardown_retries += report.teardown_retries;
    }
    assert!(rollbacks > 0, "no soak seed ever forced a rollback");
    assert!(
        teardown_retries > 0,
        "no soak seed ever retried a teardown off a stalled agent"
    );
}

#[test]
fn soak_is_deterministic_across_runs() {
    let cfg = SoakConfig {
        steps: 250,
        seed: 1234,
    };
    let a = run_soak(cfg);
    let b = run_soak(cfg);
    assert!(a.clean(), "violations: {:#?}", a.violations);
    assert_eq!(a, b, "same (steps, seed) must reproduce the same report");
    assert!(!a.fingerprint.is_empty());

    let c = run_soak(SoakConfig {
        steps: 250,
        seed: 1235,
    });
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "different seeds should end in different states"
    );
}

/// A 1-VNF graph demanding `cpu` cores.
fn graph(name: &str, cpu: f64) -> ServiceGraph {
    ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf(&format!("{name}v"), "monitor", cpu, 64)
        .chain(name, &["sap0", &format!("{name}v"), "sap1"], 10.0, None)
}

#[test]
fn hard_watermark_rejects_outright() {
    // Two 1-CPU containers (2 CPU total). Soft 0.25, hard 0.75: the
    // first chain (1 CPU = 50% utilization) admits; at 50% ≥ 25% the
    // second queues; filling to ≥ 75% makes further requests
    // hard-reject.
    let topo = builders::star(2, 1.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 91).unwrap();
    esc.set_admission(AdmissionConfig {
        soft_watermark: 0.25,
        hard_watermark: 0.75,
        max_queue: 4,
        max_retries: 3,
    });

    esc.deploy(&graph("a", 1.0)).unwrap();
    assert_eq!(esc.orchestrator().cpu_utilization(), 0.5);

    let err = esc.deploy(&graph("b", 0.6)).err().unwrap();
    let EscapeError::Admission(AdmissionVerdict::Queued { position: 0, .. }) = err else {
        panic!("expected Queued, got {err}");
    };

    // Push utilization past the hard watermark directly.
    let (mapped, rejected) = esc.orchestrator_mut().embed_graph(&graph("c", 0.6));
    assert_eq!((mapped.len(), rejected.len()), (1, 0), "capacity for c");
    assert!(esc.orchestrator().cpu_utilization() >= 0.75);

    let err = esc.deploy(&graph("d", 0.1)).err().unwrap();
    let EscapeError::Admission(AdmissionVerdict::RejectedHard {
        utilization,
        hard_watermark,
    }) = err
    else {
        panic!("expected RejectedHard, got {err}");
    };
    assert!(utilization >= hard_watermark);
    assert_eq!(hard_watermark, 0.75);

    // The queued request burns its retries while the pressure lasts and
    // is dropped — typed counters tell the story.
    esc.run_for_ms(200);
    assert_eq!(esc.pending_admissions(), 0, "queue drained by give-up");
    let m = esc.metrics();
    assert_eq!(m.counter("escape.admission_queued", &[]), Some(1));
    assert!(m.counter("escape.admission_retries", &[]).unwrap_or(0) >= 1);
    // One hard reject + one retries-exhausted drop.
    assert_eq!(m.counter("escape.admission_rejected", &[]), Some(2));
}

#[test]
fn queued_deploy_lands_once_capacity_frees_up() {
    let topo = builders::star(2, 1.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 92).unwrap();
    esc.set_admission(AdmissionConfig {
        soft_watermark: 0.25,
        hard_watermark: 0.9,
        max_queue: 4,
        max_retries: 8,
    });

    esc.deploy(&graph("a", 1.0)).unwrap();
    let err = esc.deploy(&graph("b", 0.4)).err().unwrap();
    assert!(
        matches!(err, EscapeError::Admission(AdmissionVerdict::Queued { .. })),
        "got {err}"
    );
    assert_eq!(esc.pending_admissions(), 1);

    // Tearing the first chain down drops utilization to 0; the queued
    // deploy lands on the next pump.
    esc.teardown("a").unwrap();
    esc.run_for_ms(200);
    assert_eq!(esc.pending_admissions(), 0);
    assert!(esc.deployed("b").is_some(), "queued chain deployed");
    assert!(esc.check_invariants().is_empty());
    assert!(
        esc.event_trace()
            .iter()
            .any(|l| l.contains("admission: dequeued after")),
        "trace: {:#?}",
        esc.event_trace()
    );
}

#[test]
fn admission_disabled_by_default() {
    // Without set_admission, deploys run straight through even at 100%
    // utilization — existing behavior is unchanged.
    let topo = builders::star(2, 1.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 93).unwrap();
    esc.deploy(&graph("a", 1.0)).unwrap();
    esc.deploy(&graph("a2", 1.0)).unwrap();
    assert_eq!(esc.orchestrator().cpu_utilization(), 1.0);
    // Full: the *orchestrator* rejects (no capacity), not admission.
    let err = esc.deploy(&graph("b", 0.5)).err().unwrap();
    assert!(matches!(err, EscapeError::MappingFailed(_)), "got {err}");
}
