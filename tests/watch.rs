//! Streaming observability witnesses: an in-process `escaped` daemon
//! with `watch` subscribers attached over the socket.
//!
//! Covers the push contract end to end — a subscriber registered before
//! a command is guaranteed to observe it (deploy, fault, heal, SLA
//! flips), metric-delta frames reconcile exactly against the polled
//! metrics exposition, the slow-consumer path surfaces a typed `lagged`
//! frame and keeps streaming afterwards, and two same-seed scripted
//! daemons export byte-identical event journals.

use escape::session::demo_topology;
use escape::{Session, SessionConfig};
use escape_ctl::proto::{CtlRequest, CtlResponse, MetricsFormat, SgFormat};
use escape_ctl::server::{Daemon, DaemonConfig};
use escape_ctl::{CtlClient, CtlEvent, CtlWatch, WatchTopic};
use escape_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

const DEMO_SG: &str = "sap sap0 sap1\n\
                       vnf fw type=firewall cpu=1\n\
                       chain demo = sap0 -> fw -> sap1 bw=50\n";

/// Survivable loss spike on the demo trunk, later cleared.
const FLAP_PLAN: &str = r#"{
  "name": "trunk-flap",
  "events": [
    { "at_us": 1000, "kind": "loss_spike", "a": "s0", "b": "s1", "loss": 0.1 },
    { "at_us": 9000, "kind": "loss_clear", "a": "s0", "b": "s1" }
  ]
}"#;

/// Hard cut: the demo substrate is linear, so this fails the chain and
/// forces the heal path to run (and fail — there is no backup path).
const CUT_PLAN: &str = r#"{
  "name": "trunk-cut",
  "events": [
    { "at_us": 1000, "kind": "link_down", "a": "s0", "b": "s1" }
  ]
}"#;

fn temp_socket(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("escape-watch-{name}-{}.sock", std::process::id()))
}

fn default_session(seed: u64) -> Session {
    Session::new(
        demo_topology(),
        SessionConfig {
            seed,
            flight_recorder: Some(65_536),
            ..SessionConfig::default()
        },
    )
    .unwrap()
}

fn spawn_daemon(session: Session, socket: &Path) -> JoinHandle<()> {
    let cfg = DaemonConfig::new(socket.to_path_buf());
    thread::spawn(move || Daemon::run(session, cfg).unwrap())
}

fn connect(socket: &Path) -> CtlClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match CtlClient::connect(socket) {
            Ok(c) => return c,
            Err(e) if Instant::now() > deadline => {
                panic!("daemon never came up on {}: {e}", socket.display())
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn call(client: &mut CtlClient, req: CtlRequest) -> CtlResponse {
    client.call(&req).unwrap()
}

fn deploy(client: &mut CtlClient) {
    let resp = call(
        client,
        CtlRequest::Deploy {
            sg: DEMO_SG.into(),
            format: SgFormat::Dsl,
        },
    );
    assert!(
        matches!(resp, CtlResponse::Deployed(_)),
        "deploy failed: {resp:?}"
    );
}

/// Reads every remaining frame until the daemon closes the stream.
fn drain(watch: &mut CtlWatch) -> Vec<CtlEvent> {
    let mut events = Vec::new();
    while let Some(ev) = watch.next_event().unwrap() {
        events.push(ev);
    }
    events
}

// ---------------------------------------------------------------------
// Lifecycle streaming
// ---------------------------------------------------------------------

#[test]
fn subscriber_streams_deploy_fault_heal_and_sla() {
    let socket = temp_socket("lifecycle");
    let daemon = spawn_daemon(default_session(11), &socket);

    // Subscribe to everything BEFORE acting: the `watching` ack
    // guarantees the subscription is registered ahead of any command
    // enqueued afterwards.
    let watch_client = connect(&socket);
    let mut watch = watch_client.watch(&[]).unwrap();
    assert_eq!(watch.topics(), WatchTopic::ALL);

    let mut c = connect(&socket);
    deploy(&mut c);
    assert_eq!(
        call(
            &mut c,
            CtlRequest::Traffic {
                from: "sap0".into(),
                to: "sap1".into(),
                frames: 20,
                len: 128,
                interval_us: 200,
            },
        ),
        CtlResponse::TrafficStarted
    );
    assert!(matches!(
        call(&mut c, CtlRequest::RunFor { ms: 50 }),
        CtlResponse::Advanced { .. }
    ));
    // Hard cut: fails the chain so heal actually runs.
    assert!(matches!(
        call(
            &mut c,
            CtlRequest::Fault {
                plan: CUT_PLAN.into()
            }
        ),
        CtlResponse::FaultArmed { events: 1 }
    ));
    assert!(matches!(
        call(&mut c, CtlRequest::RunFor { ms: 10 }),
        CtlResponse::Advanced { .. }
    ));
    let _ = c.call(&CtlRequest::Heal); // heal outcome asserted via the stream
    call(&mut c, CtlRequest::Shutdown);

    let events = drain(&mut watch);
    daemon.join().unwrap();

    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            CtlEvent::Journal { kind, .. } => Some(kind.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        kinds.contains(&"deploy-committed"),
        "no deploy event in {kinds:?}"
    );
    assert!(
        kinds.contains(&"fault-injected"),
        "no fault event in {kinds:?}"
    );
    assert!(
        kinds
            .iter()
            .any(|k| k.starts_with("heal-") || *k == "chain-abandoned"),
        "no heal-path event in {kinds:?}"
    );

    // Journal timestamps arrive in virtual-clock order.
    let stamps: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            CtlEvent::Journal { at_ns, .. } => Some(*at_ns),
            _ => None,
        })
        .collect();
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "journal events out of order: {stamps:?}"
    );

    let delta_frames = events
        .iter()
        .filter(|e| matches!(e, CtlEvent::MetricsDelta { .. }))
        .count();
    assert!(
        delta_frames >= 2,
        "want >=2 delta frames, got {delta_frames}"
    );

    // The first SLA verdict counts as a flip (nothing -> pass/fail).
    let sla_chains: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            CtlEvent::Sla { verdicts, .. } => Some(verdicts.iter().map(|v| v.chain.as_str())),
            _ => None,
        })
        .flatten()
        .collect();
    assert!(
        sla_chains.contains(&"demo"),
        "no SLA verdict frame for the demo chain: {events:?}"
    );

    // A prompt reader never lags.
    assert!(
        !events.iter().any(|e| matches!(e, CtlEvent::Lagged { .. })),
        "prompt subscriber must not lag"
    );
}

// ---------------------------------------------------------------------
// Metric deltas reconcile with the polled exposition
// ---------------------------------------------------------------------

/// One metric's state as parsed out of the JSON exposition.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Polled {
    Counter(u64),
    Gauge(f64),
    /// Histograms compare by observation count.
    Hist(u64),
}

fn poll_metrics(client: &mut CtlClient) -> HashMap<String, Polled> {
    let CtlResponse::Metrics { body, .. } = call(
        client,
        CtlRequest::Metrics {
            format: MetricsFormat::Json,
        },
    ) else {
        panic!("metrics poll failed")
    };
    let root = Value::parse(&body).expect("exposition parses");
    let entries = root
        .get("metrics")
        .and_then(|m| m.get("metrics"))
        .and_then(Value::as_arr)
        .expect("metrics array");
    let mut out = HashMap::new();
    for e in entries {
        let name = e.get("name").and_then(Value::as_str).unwrap();
        let labels: Vec<(String, String)> = match e.get("labels") {
            Some(Value::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| (k.clone(), v.as_str().unwrap().to_string()))
                .collect(),
            _ => Vec::new(),
        };
        let key = metric_key(name, &labels);
        let polled = match e.get("type").and_then(Value::as_str).unwrap() {
            "counter" => Polled::Counter(e.get("value").and_then(Value::as_u64).unwrap()),
            "gauge" => Polled::Gauge(e.get("value").and_then(Value::as_f64).unwrap()),
            "histogram" => Polled::Hist(e.get("count").and_then(Value::as_u64).unwrap()),
            t => panic!("unknown metric type {t}"),
        };
        out.insert(key, polled);
    }
    out
}

fn metric_key(name: &str, labels: &[(String, String)]) -> String {
    format!("{name}{labels:?}")
}

#[test]
fn metric_deltas_reconcile_with_polled_exposition() {
    let socket = temp_socket("reconcile");
    let daemon = spawn_daemon(default_session(7), &socket);

    let watch_client = connect(&socket);
    let mut watch = watch_client.watch(&[WatchTopic::MetricsDeltas]).unwrap();

    let mut c = connect(&socket);
    // Baseline poll first: rendering the exposition mutates nothing, so
    // this is exactly the state the subscriber's cursor started from.
    let baseline = poll_metrics(&mut c);

    deploy(&mut c);
    assert_eq!(
        call(
            &mut c,
            CtlRequest::Traffic {
                from: "sap0".into(),
                to: "sap1".into(),
                frames: 30,
                len: 128,
                interval_us: 200,
            },
        ),
        CtlResponse::TrafficStarted
    );
    for _ in 0..2 {
        assert!(matches!(
            call(&mut c, CtlRequest::RunFor { ms: 30 }),
            CtlResponse::Advanced { .. }
        ));
    }
    let fin = poll_metrics(&mut c);
    call(&mut c, CtlRequest::Shutdown);

    let events = drain(&mut watch);
    daemon.join().unwrap();

    // Accumulate every delta frame: counters/histograms sum their
    // per-frame movement, gauges keep the last absolute value.
    let mut counter_acc: HashMap<String, u64> = HashMap::new();
    let mut hist_acc: HashMap<String, u64> = HashMap::new();
    let mut gauge_last: HashMap<String, f64> = HashMap::new();
    let mut frames = 0usize;
    for ev in &events {
        let CtlEvent::MetricsDelta { deltas, .. } = ev else {
            panic!("metrics-deltas subscriber got an off-topic frame: {ev:?}")
        };
        frames += 1;
        for d in deltas {
            let key = metric_key(&d.name, &d.labels);
            match d.metric.as_str() {
                "counter" => *counter_acc.entry(key).or_insert(0) += d.value as u64,
                "histogram" => *hist_acc.entry(key).or_insert(0) += d.value as u64,
                "gauge" => {
                    gauge_last.insert(key, d.value);
                }
                m => panic!("unknown delta metric kind {m}"),
            }
        }
    }
    assert!(frames >= 2, "want >=2 delta frames, got {frames}");

    // Every metric in the final exposition must equal its baseline plus
    // the streamed movement — the push plane and the poll plane are two
    // views of the same registry.
    for (key, final_val) in &fin {
        match *final_val {
            Polled::Counter(f) => {
                let base = match baseline.get(key) {
                    Some(Polled::Counter(b)) => *b,
                    _ => 0,
                };
                let acc = counter_acc.get(key).copied().unwrap_or(0);
                assert_eq!(base + acc, f, "counter {key} drifted from its deltas");
            }
            Polled::Hist(f) => {
                let base = match baseline.get(key) {
                    Some(Polled::Hist(b)) => *b,
                    _ => 0,
                };
                let acc = hist_acc.get(key).copied().unwrap_or(0);
                assert_eq!(
                    base + acc,
                    f,
                    "histogram {key} observation count drifted from its deltas"
                );
            }
            Polled::Gauge(f) => {
                let expect =
                    gauge_last
                        .get(key)
                        .copied()
                        .unwrap_or_else(|| match baseline.get(key) {
                            Some(Polled::Gauge(b)) => *b,
                            _ => 0.0,
                        });
                assert_eq!(expect, f, "gauge {key} drifted from its last delta");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Slow consumer: lag, recover, keep streaming
// ---------------------------------------------------------------------

#[test]
fn slow_consumer_gets_lagged_frame_and_keeps_streaming() {
    let socket = temp_socket("lagged");
    let daemon = spawn_daemon(default_session(13), &socket);

    let watch_client = connect(&socket);
    let mut watch = watch_client.watch(&[]).unwrap();

    // Never read while the daemon churns: every cycle publishes journal
    // entries and a (large) metrics-delta frame. The writer fills the
    // socket buffer, then the 256-frame queue, then the publisher starts
    // counting misses.
    let mut c = connect(&socket);
    for _ in 0..600 {
        deploy(&mut c);
        assert!(matches!(
            call(
                &mut c,
                CtlRequest::Teardown {
                    chain: "demo".into()
                }
            ),
            CtlResponse::ToreDown { .. }
        ));
    }

    // Now drain. The pending lag count is only flushed by a later
    // publish, so keep the daemon churning from a second connection
    // while this thread reads: the poker guarantees frames keep
    // arriving, so the blocking reads below always terminate.
    let stop = Arc::new(AtomicBool::new(false));
    let poker = {
        let stop = stop.clone();
        let socket = socket.clone();
        thread::spawn(move || {
            let mut c = connect(&socket);
            while !stop.load(Ordering::SeqCst) {
                deploy(&mut c);
                call(
                    &mut c,
                    CtlRequest::Teardown {
                        chain: "demo".into(),
                    },
                );
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut missed = None;
    let mut read = 0usize;
    while missed.is_none() {
        match watch.next_event().unwrap() {
            Some(CtlEvent::Lagged { missed: m }) => missed = Some(m),
            Some(_) => read += 1,
            None => panic!("stream closed before a lagged frame after {read} events"),
        }
        assert!(read < 100_000, "no lagged frame after {read} events");
    }
    assert!(missed.unwrap() > 0, "lagged frame must carry a count");

    // The subscriber was NOT evicted — it recovers and keeps receiving
    // the poker's ongoing deploys.
    let mut saw_post_lag_deploy = false;
    for _ in 0..100_000 {
        match watch.next_event().unwrap() {
            Some(CtlEvent::Journal { kind, .. }) if kind == "deploy-committed" => {
                saw_post_lag_deploy = true;
                break;
            }
            Some(_) => continue,
            None => break,
        }
    }
    assert!(
        saw_post_lag_deploy,
        "stream must keep delivering after a lagged frame"
    );

    stop.store(true, Ordering::SeqCst);
    poker.join().unwrap();
    call(&mut c, CtlRequest::Shutdown);
    drain(&mut watch); // daemon shutdown ends the stream with EOF
    daemon.join().unwrap();
}

// ---------------------------------------------------------------------
// Same-seed determinism of the exported journal
// ---------------------------------------------------------------------

/// Runs a fixed script against a fresh daemon and exports the journal.
fn scripted_journal(name: &str, seed: u64, run_ms: u64) -> String {
    let socket = temp_socket(name);
    let daemon = spawn_daemon(default_session(seed), &socket);
    let mut c = connect(&socket);
    deploy(&mut c);
    call(
        &mut c,
        CtlRequest::Traffic {
            from: "sap0".into(),
            to: "sap1".into(),
            frames: 20,
            len: 128,
            interval_us: 200,
        },
    );
    call(&mut c, CtlRequest::RunFor { ms: run_ms });
    call(
        &mut c,
        CtlRequest::Fault {
            plan: FLAP_PLAN.into(),
        },
    );
    call(&mut c, CtlRequest::RunFor { ms: 20 });
    let _ = c.call(&CtlRequest::Heal);
    call(
        &mut c,
        CtlRequest::Teardown {
            chain: "demo".into(),
        },
    );
    let CtlResponse::Journal { body } = call(&mut c, CtlRequest::Journal) else {
        panic!("journal export failed")
    };
    call(&mut c, CtlRequest::Shutdown);
    daemon.join().unwrap();
    body
}

#[test]
fn same_seed_runs_export_byte_identical_journals() {
    let a = scripted_journal("journal-a", 42, 50);
    let b = scripted_journal("journal-b", 42, 50);
    assert!(!a.is_empty(), "scripted run must journal something");
    assert_eq!(a, b, "same-seed journals diverged");

    // Every line is one self-contained JSON event with the typed shape.
    let mut kinds = Vec::new();
    for line in a.lines() {
        let v = Value::parse(line).expect("journal line parses");
        assert!(v.get("at_ns").and_then(Value::as_u64).is_some());
        assert!(v.get("severity").and_then(Value::as_str).is_some());
        kinds.push(v.get("kind").and_then(Value::as_str).unwrap().to_string());
    }
    for want in ["deploy-committed", "fault-injected", "teardown"] {
        assert!(
            kinds.iter().any(|k| k == want),
            "journal missing {want}: {kinds:?}"
        );
    }

    // Not a constant artifact: a longer run journals differently-stamped
    // events.
    let c = scripted_journal("journal-c", 42, 80);
    assert_ne!(a, c, "different scripts must journal differently");
}
