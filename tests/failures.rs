//! Failure injection across the stack: link loss, link down, VNF death,
//! agent death, resource exhaustion under churn.

use escape::container::VnfContainer;
use escape::env::Escape;
use escape::{DeployPhase, EscapeError};
use escape_netconf::VnfInstrumentation;
use escape_netem::LinkState;
use escape_orch::{GreedyFirstFit, NearestNeighbor};
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

fn sg() -> ServiceGraph {
    ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("mon", "monitor", 0.5, 64)
        .chain("c1", &["sap0", "mon", "sap1"], 20.0, None)
}

#[test]
fn lossy_links_lose_some_but_not_all() {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 21).unwrap();
    esc.deploy(&sg()).unwrap();
    // 20% loss on every link.
    for i in 0..esc.sim.link_count() as u32 {
        esc.sim.set_link_loss(escape_netem::LinkId(i), 0.2);
    }
    esc.start_udp("sap0", "sap1", 100, 200, 100).unwrap();
    esc.run_for_ms(200);
    let rx = esc.sap_stats("sap1").unwrap().udp_rx;
    assert!(rx < 100, "some frames lost ({rx})");
    assert!(rx > 10, "but not everything ({rx})");
    assert!(esc.sim.stats().drops_loss > 0);
}

#[test]
fn link_down_black_holes_then_recovers() {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 22).unwrap();
    esc.deploy(&sg()).unwrap();
    // Flip every dataplane link down, verify the black hole, bring them
    // back, verify recovery.
    let ids: Vec<escape_netem::LinkId> = (0..esc.sim.link_count() as u32)
        .map(escape_netem::LinkId)
        .collect();
    for &id in &ids {
        esc.sim.set_link_state(id, LinkState::Down);
    }
    esc.start_udp("sap0", "sap1", 100, 200, 10).unwrap();
    esc.run_for_ms(50);
    assert_eq!(
        esc.sap_stats("sap1").unwrap().udp_rx,
        0,
        "black hole while down"
    );
    assert!(esc.sim.stats().drops_link_down > 0);
    for id in ids {
        esc.sim.set_link_state(id, LinkState::Up);
    }
    esc.start_udp("sap0", "sap1", 100, 200, 10).unwrap();
    esc.run_for_ms(50);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 10, "recovered");
}

#[test]
fn stopped_vnf_drops_chain_traffic() {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 23).unwrap();
    esc.deploy(&sg()).unwrap();
    // Kill the VNF behind the chain's back (simulating a crash).
    let dc = esc.deployed("c1").unwrap().clone();
    let vnf = &dc.vnfs[0];
    let node = esc.infra.node(&vnf.container).unwrap();
    esc.sim
        .node_as_mut::<VnfContainer>(node)
        .unwrap()
        .host_mut()
        .stop(&vnf.vnf_id)
        .unwrap();
    esc.start_udp("sap0", "sap1", 100, 200, 10).unwrap();
    esc.run_for_ms(50);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 0);
    let c = esc.sim.node_as::<VnfContainer>(node).unwrap();
    let idx = c.host().vnf_index(&vnf.vnf_id).unwrap();
    assert_eq!(c.host().vnfs[idx].dropped_not_running, 10);
}

#[test]
fn dead_agent_times_out_cleanly() {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 24).unwrap();
    // Kill the container node entirely: its agent can never answer, so
    // every retry times out and the typed error names the container and
    // the exhausted attempt budget.
    let node = esc.infra.node("c0").unwrap();
    esc.sim.kill_node(node);
    let before = esc.now();
    let err = esc.deploy(&sg()).err().unwrap();
    let EscapeError::DeployFailed {
        phase,
        cause,
        rollback,
    } = err
    else {
        panic!("expected DeployFailed, got {err}");
    };
    assert_eq!(phase, DeployPhase::Prepare);
    let EscapeError::RpcTimeout {
        container,
        attempts,
    } = *cause
    else {
        panic!("expected RpcTimeout cause, got {cause}");
    };
    assert_eq!(container, "c0");
    assert_eq!(attempts, 5, "first try + 4 retries");
    // The reservation was the only completed step; undoing it cannot
    // fail, so the rollback reports complete.
    assert!(rollback.complete(), "rollback: {rollback}");
    assert!(
        rollback
            .steps
            .iter()
            .any(|s| s.action == "release-reservation"),
        "rollback released the plan-phase reservation: {rollback}"
    );
    // Each attempt waited out the RPC deadline plus its backoff slot.
    assert!(
        esc.now().since(before) >= 5 * 100_000_000,
        "virtual time spent waiting"
    );
    // The retry counter saw exactly the retries (not the first attempt).
    assert_eq!(esc.metrics().counter("netconf.rpc_retries", &[]), Some(4));
}

#[test]
fn remap_with_no_surviving_capacity_degrades_gracefully() {
    // Two 1-CPU containers; the chain's VNF needs a full CPU. Crash the
    // hosting container, then fill the survivor so re-mapping has nowhere
    // to go: recovery must fail cleanly (no panic), the chain is
    // abandoned, and the failure is counted and logged.
    let topo = builders::star(2, 1.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 27).unwrap();
    let g = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 256)
        .chain("c1", &["sap0", "fw", "sap1"], 20.0, None);
    esc.deploy(&g).unwrap();
    assert_eq!(
        esc.deployed("c1").unwrap().vnfs[0].container,
        "c0",
        "greedy picks c0"
    );
    // Take the survivor's capacity out of play too.
    esc.orchestrator_mut().mark_container_failed("c1");

    let plan = escape_netem::FaultPlan::new("no-capacity")
        .at_ms(5, escape_netem::FaultKind::VnfCrash { node: "c0".into() });
    esc.load_fault_plan(&plan).unwrap();
    esc.run_with_recovery(30);

    assert!(esc.deployed("c1").is_none(), "chain abandoned");
    let m = esc.metrics();
    assert_eq!(m.counter("escape.recovery_failures", &[]), Some(1));
    assert_eq!(m.counter("escape.recoveries", &[]), Some(0));
    assert!(
        esc.event_trace()
            .iter()
            .any(|l| l.contains("recovery of chain c1 failed")),
        "trace: {:#?}",
        esc.event_trace()
    );
}

#[test]
fn churn_embed_release_cycles_do_not_leak_resources() {
    let topo = builders::star(4, 2.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 25).unwrap();
    for round in 0..5 {
        let g = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("v", "monitor", 1.5, 64)
            .chain("churny", &["sap0", "v", "sap1"], 50.0, None);
        esc.deploy(&g)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        esc.teardown("churny").unwrap();
        assert_eq!(
            esc.orchestrator().cpu_utilization(),
            0.0,
            "round {round}: all CPU back"
        );
    }
}

#[test]
fn delay_sla_violation_is_rejected_up_front() {
    // 8 switch hops at 50 µs each cannot meet a 60 µs budget.
    let topo = builders::linear(8, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 26).unwrap();
    let g = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("v", "monitor", 0.5, 64)
        .chain("tight", &["sap0", "v", "sap1"], 10.0, Some(60));
    let err = esc.deploy(&g).err().unwrap();
    let EscapeError::MappingFailed(rej) = err else {
        panic!("expected mapping failure")
    };
    assert!(matches!(
        rej[0].1,
        escape_orch::MapError::DelayExceeded { .. }
    ));
}

#[test]
fn netconf_timeout_mid_deploy_rolls_back_to_identical_state() {
    // The zero-residual-state guarantee: a deploy whose *second* VNF
    // times out over NETCONF must undo everything the transaction did —
    // the already-started first VNF, any staged rules, every
    // reservation — leaving the environment byte-identical to its
    // pre-deploy fingerprint.
    let topo = builders::linear(3, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 31).unwrap();

    // Warm up: one deploy/teardown cycle so the NETCONF session to c0
    // and its stopped-VNF husk already exist before the fingerprint.
    let warm = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("w", "monitor", 0.5, 64)
        .chain("warm", &["sap0", "w", "sap1"], 10.0, None);
    esc.deploy(&warm).unwrap();
    esc.teardown("warm").unwrap();

    // Stall c1's agent for longer than the entire RPC retry schedule.
    let plan = escape_netem::FaultPlan::new("c1-stall").at_ms(
        0,
        escape_netem::FaultKind::VnfStall {
            node: "c1".into(),
            for_us: 3_000_000,
        },
    );
    esc.load_fault_plan(&plan).unwrap();
    esc.run_for_ms(1); // arm the stall

    let before = esc.state_fingerprint();
    assert!(esc.check_invariants().is_empty());

    // Two 3-CPU VNFs cannot share a 4-CPU container: v0 lands on c0
    // (prepares fine), v1 lands on stalled c1 and times out.
    let big = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("v0", "monitor", 3.0, 64)
        .vnf("v1", "monitor", 3.0, 64)
        .chain("big", &["sap0", "v0", "v1", "sap1"], 10.0, None);
    let err = esc.deploy(&big).expect_err("deploy must fail");
    let EscapeError::DeployFailed {
        phase,
        cause,
        rollback,
    } = err
    else {
        panic!("expected DeployFailed, got {err}");
    };
    assert_eq!(phase, DeployPhase::Prepare);
    assert!(
        matches!(*cause, EscapeError::RpcTimeout { ref container, .. } if container == "c1"),
        "cause: {cause}"
    );
    // v0 on healthy c0 was started and connected; both undo steps hit a
    // live agent and succeed, as does releasing the reservation.
    assert!(rollback.complete(), "rollback: {rollback}");
    assert!(rollback.steps.iter().any(|s| s.action == "stop-vnf"));
    assert!(rollback
        .steps
        .iter()
        .any(|s| s.action == "release-reservation"));

    // Zero residual state: resources, flow tables, running VNFs and
    // sessions are byte-identical to the pre-deploy view.
    assert_eq!(esc.state_fingerprint(), before, "residual state leaked");
    assert!(esc.check_invariants().is_empty());
    assert!(esc.deployed("big").is_none());
    assert_eq!(esc.orchestrator().cpu_utilization(), 0.0);

    // Once the stall clears the same graph deploys cleanly.
    esc.run_for_ms(3_100);
    esc.deploy(&big).unwrap();
    assert!(esc.check_invariants().is_empty());
    esc.start_udp("sap0", "sap1", 100, 200, 5).unwrap();
    esc.run_for_ms(50);
    assert_eq!(
        esc.sap_stats("sap1").unwrap().udp_rx,
        5,
        "chain carries traffic"
    );
}

#[test]
fn malformed_agent_reply_fails_deploy_with_typed_error() {
    // A garbage frame on the control connection (truncated XML) must
    // surface as the typed MalformedReply — not a parse panic and not a
    // silent retry-until-timeout — and the transaction rolls back.
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 33).unwrap();
    let conn = esc.infra.netconf_conn["c0"];
    let relay = esc.infra.manager;
    esc.sim
        .node_as_mut::<escape::infra::ManagerRelay>(relay)
        .unwrap()
        .inbox
        .push((
            conn,
            escape_netconf::Framer::frame(b"<rpc-reply message-id=\"1\"><data>"),
        ));

    let err = esc.deploy(&sg()).err().unwrap();
    let EscapeError::DeployFailed {
        phase,
        cause,
        rollback,
    } = err
    else {
        panic!("expected DeployFailed, got {err}");
    };
    assert_eq!(phase, DeployPhase::Prepare);
    let EscapeError::MalformedReply { container, reason } = *cause else {
        panic!("expected MalformedReply cause, got {cause}");
    };
    assert_eq!(container, "c0");
    assert!(reason.contains("XML"), "{reason}");
    assert!(rollback.complete(), "rollback: {rollback}");
    assert_eq!(
        esc.metrics().counter("netconf.malformed_replies", &[]),
        Some(1)
    );
    assert!(
        esc.event_trace()
            .iter()
            .any(|l| l.contains("malformed reply from c0")),
        "trace: {:#?}",
        esc.event_trace()
    );

    // The bad frame never corrupts session state: the same graph
    // deploys cleanly right after.
    esc.deploy(&sg()).unwrap();
    assert!(esc.check_invariants().is_empty());
}
