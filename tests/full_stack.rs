//! Full-stack integration: topology bring-up, chain deployment over
//! NETCONF, POX steering, dataplane traffic through Click VNFs.

use escape::env::Escape;
use escape_orch::{GreedyFirstFit, NearestNeighbor};
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

fn simple_sg() -> ServiceGraph {
    ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("mon", "monitor", 0.5, 64)
        .chain("c1", &["sap0", "mon", "sap1"], 50.0, None)
}

#[test]
fn single_vnf_chain_carries_traffic() {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 1).unwrap();
    let report = esc.deploy(&simple_sg()).unwrap();
    assert_eq!(report.chains.len(), 1);
    assert_eq!(report.chains[0].vnfs.len(), 1);
    assert!(report.chains[0].rules > 0, "steering rules installed");
    assert!(report.total().as_us() > 0, "setup takes virtual time");

    esc.start_udp("sap0", "sap1", 128, 200, 25).unwrap();
    esc.run_for_ms(100);
    let stats = esc.sap_stats("sap1").unwrap();
    assert_eq!(stats.udp_rx, 25, "all frames arrive through the chain");
    assert!(stats.mean_latency().unwrap().as_us() > 0);

    // The VNF saw the traffic (Clicky view over NETCONF).
    let handlers = esc.monitor_vnf("c1", "mon").unwrap();
    let count = handlers
        .iter()
        .find(|(k, _)| k == "in_cnt.count")
        .map(|(_, v)| v.clone())
        .expect("monitor exposes in_cnt.count");
    assert_eq!(count, "25");
}

#[test]
fn three_vnf_chain_works() {
    let topo = builders::linear(3, 8.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 2).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 128)
        .with_params(&[("rules", "allow udp")])
        .vnf("mark", "qos_marker", 0.5, 64)
        .vnf("mon", "monitor", 0.5, 64)
        .chain("c1", &["sap0", "fw", "mark", "mon", "sap1"], 20.0, None);
    esc.deploy(&sg).unwrap();
    esc.start_udp("sap0", "sap1", 200, 500, 10).unwrap();
    esc.run_for_ms(100);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 10);
    // Firewall counted passes; monitor counted arrivals.
    let fw = esc.monitor_vnf("c1", "fw").unwrap();
    assert!(
        fw.iter().any(|(k, v)| k == "fw.passed" && v == "10"),
        "{fw:?}"
    );
}

#[test]
fn firewall_chain_filters_disallowed_traffic() {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 3).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 128)
        .with_params(&[("rules", "deny dst port 9000, allow all")])
        .chain("c1", &["sap0", "fw", "sap1"], 20.0, None);
    esc.deploy(&sg).unwrap();
    // start_udp uses dst port 9000 — everything should be dropped.
    esc.start_udp("sap0", "sap1", 128, 200, 10).unwrap();
    esc.run_for_ms(50);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 0);
    let fw = esc.monitor_vnf("c1", "fw").unwrap();
    assert!(
        fw.iter().any(|(k, v)| k == "fw.dropped" && v == "10"),
        "{fw:?}"
    );
}

#[test]
fn reactive_steering_also_delivers() {
    let topo = builders::linear(2, 4.0);
    let mut esc = Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Reactive, 4).unwrap();
    esc.deploy(&simple_sg()).unwrap();
    esc.start_udp("sap0", "sap1", 128, 500, 10).unwrap();
    esc.run_for_ms(100);
    let stats = esc.sap_stats("sap1").unwrap();
    assert_eq!(
        stats.udp_rx, 10,
        "reactive install releases buffered packets"
    );
}

#[test]
fn two_chains_share_the_infrastructure() {
    let topo = builders::star(4, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 5).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .sap("sap2")
        .sap("sap3")
        .vnf("m1", "monitor", 0.5, 64)
        .vnf("m2", "monitor", 0.5, 64)
        .chain("a", &["sap0", "m1", "sap1"], 10.0, None)
        .chain("b", &["sap2", "m2", "sap3"], 10.0, None);
    let report = esc.deploy(&sg).unwrap();
    assert_eq!(report.chains.len(), 2);
    esc.start_udp("sap0", "sap1", 100, 300, 8).unwrap();
    esc.start_udp("sap2", "sap3", 100, 300, 9).unwrap();
    esc.run_for_ms(100);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 8);
    assert_eq!(esc.sap_stats("sap3").unwrap().udp_rx, 9);
}

#[test]
fn teardown_stops_traffic_and_frees_resources() {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 6).unwrap();
    esc.deploy(&simple_sg()).unwrap();
    let used_before = esc.orchestrator().cpu_utilization();
    assert!(used_before > 0.0);

    esc.teardown("c1").unwrap();
    assert_eq!(esc.orchestrator().cpu_utilization(), 0.0);
    assert!(esc.deployed("c1").is_none());

    // Traffic now dies at the first switch (no rules, no running VNF).
    esc.start_udp("sap0", "sap1", 128, 200, 5).unwrap();
    esc.run_for_ms(50);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 0);
}

#[test]
fn chain_latency_reflects_path_and_vnf_count() {
    // Longer chains through more VNFs must show higher end-to-end latency.
    let mut lat = Vec::new();
    for n_vnfs in [1usize, 3] {
        let topo = builders::linear(4, 8.0);
        let mut esc =
            Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 7).unwrap();
        let mut sg = ServiceGraph::new().sap("sap0").sap("sap1");
        let mut hops = vec!["sap0".to_string()];
        for i in 0..n_vnfs {
            sg = sg.vnf(&format!("v{i}"), "monitor", 0.2, 32);
            hops.push(format!("v{i}"));
        }
        hops.push("sap1".to_string());
        let hop_refs: Vec<&str> = hops.iter().map(|s| s.as_str()).collect();
        sg = sg.chain("c", &hop_refs, 10.0, None);
        esc.deploy(&sg).unwrap();
        esc.start_udp("sap0", "sap1", 128, 500, 10).unwrap();
        esc.run_for_ms(100);
        let stats = esc.sap_stats("sap1").unwrap();
        assert_eq!(stats.udp_rx, 10, "{n_vnfs} vnf chain");
        lat.push(stats.mean_latency().unwrap().as_ns());
    }
    assert!(lat[1] > lat[0], "3-VNF chain slower than 1-VNF: {lat:?}");
}

#[test]
fn mapping_failure_is_reported_and_clean() {
    let topo = builders::linear(2, 0.25); // tiny containers
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 8).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("big", "dpi", 2.0, 512)
        .chain("c1", &["sap0", "big", "sap1"], 10.0, None);
    let err = esc.deploy(&sg).err().unwrap();
    assert!(matches!(err, escape::EscapeError::MappingFailed(_)));
    assert_eq!(esc.orchestrator().cpu_utilization(), 0.0, "rolled back");
}

#[test]
fn ping_works_over_bidirectional_chains() {
    // Echo request rides chain fwd (sap0 -> mon -> sap1); the reply needs
    // its own chain back (sap1 -> mon2 -> sap0) — chains are
    // unidirectional by design.
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 9).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("m1", "monitor", 0.5, 64)
        .vnf("m2", "monitor", 0.5, 64)
        .chain("fwd", &["sap0", "m1", "sap1"], 10.0, None)
        .chain("back", &["sap1", "m2", "sap0"], 10.0, None);
    esc.deploy(&sg).unwrap();
    esc.start_ping("sap0", "sap1", 1_000, 5).unwrap();
    esc.run_for_ms(50);
    let s1 = esc.sap_stats("sap1").unwrap();
    let s0 = esc.sap_stats("sap0").unwrap();
    assert_eq!(s1.icmp_echo_rx, 5, "echo requests arrived");
    assert_eq!(s0.icmp_reply_rx, 5, "echo replies came back");
}

#[test]
fn packet_trace_captures_chain_traversal() {
    // The pcap stand-in: enable tracing, run a chain, verify the trace
    // shows the frame crossing switch and container nodes.
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 10).unwrap();
    esc.deploy(&simple_sg()).unwrap();
    esc.sim.enable_trace(10_000);
    esc.sim.trace.as_mut().unwrap().capture_payloads = true;
    esc.start_udp("sap0", "sap1", 128, 500, 3).unwrap();
    esc.run_for_ms(50);
    let trace = esc.sim.trace.as_ref().unwrap();
    assert!(
        trace.count(escape_netem::TraceDir::Rx) >= 9,
        "multi-hop rx events"
    );
    assert!(
        trace.count(escape_netem::TraceDir::Tx) >= 6,
        "switch/container forwards"
    );
    let dump = trace.dump();
    assert!(dump.contains("rx"), "{dump}");
    // And the pcap export is a valid libpcap file carrying real frames.
    let pcap = trace.to_pcap();
    assert!(
        pcap.len() > 24 + (16 + 128) * 3,
        "pcap has frames: {} bytes",
        pcap.len()
    );
    assert_eq!(&pcap[0..4], &0xa1b2_c3d4u32.to_le_bytes());
}

#[test]
fn custom_click_config_vnf_deploys_end_to_end() {
    // The "develop a particular VNF" path: a service graph carries a raw
    // Click config instead of a catalog type; the orchestrator ships the
    // text in initiateVNF's click-config leaf.
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 11).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("mine", "custom", 0.5, 64)
        .with_click_config(
            "FromDevice(0) -> tagged :: Counter -> SetIPDSCP(12) -> ToDevice(1);\n\
             FromDevice(1) -> rev :: Counter -> ToDevice(0);\n",
        )
        .chain("c1", &["sap0", "mine", "sap1"], 10.0, None);
    esc.deploy(&sg).unwrap();
    esc.start_udp("sap0", "sap1", 128, 300, 7).unwrap();
    esc.run_for_ms(50);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 7);
    // The custom element graph is live and countable over NETCONF.
    let handlers = esc.monitor_vnf("c1", "mine").unwrap();
    assert!(
        handlers
            .iter()
            .any(|(k, v)| k == "tagged.count" && v == "7"),
        "{handlers:?}"
    );
    // Bad configs are rejected by the agent: the transaction rolls back
    // completely and surfaces the NETCONF error as the prepare-phase
    // cause.
    let bad = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("broken", "custom", 0.5, 64)
        .with_click_config("this is not click (")
        .chain("c2", &["sap0", "broken", "sap1"], 10.0, None);
    let err = esc.deploy(&bad).err().unwrap();
    let escape::EscapeError::DeployFailed {
        phase,
        cause,
        rollback,
    } = err
    else {
        panic!("expected DeployFailed, got {err}");
    };
    assert_eq!(phase, escape::DeployPhase::Prepare);
    assert!(
        matches!(*cause, escape::EscapeError::Netconf(_)),
        "got {cause}"
    );
    assert!(rollback.complete(), "rollback: {rollback}");
    // The first chain is untouched and still carries traffic.
    esc.start_udp("sap0", "sap1", 128, 300, 3).unwrap();
    esc.run_for_ms(50);
    assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 10);
}

#[test]
fn telemetry_spans_all_layers() {
    // The acceptance gate for the observability subsystem: one demo run
    // must leave counters and histograms from the netem, pox, orch, and
    // escape crates in a single shared registry, plus virtual-time spans
    // around the chain-setup path.
    let topo = builders::linear(3, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(NearestNeighbor), SteeringMode::Proactive, 7).unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("fw", "firewall", 1.0, 128)
        .vnf("mon", "monitor", 0.5, 64)
        .chain("demo", &["sap0", "fw", "mon", "sap1"], 25.0, Some(50_000));
    esc.deploy(&sg).unwrap();
    esc.start_udp("sap0", "sap1", 128, 200, 15).unwrap();
    esc.run_for_ms(60);

    let snap = esc.metrics();

    // Counters from four distinct crates moved through the shared registry.
    assert!(snap.counter_total("netem.events") > 0, "netem counters");
    assert!(
        snap.counter_total("netem.frames_delivered") > 0,
        "dataplane moved"
    );
    assert!(snap.counter_total("pox.flow_mods") > 0, "pox counters");
    assert!(
        snap.counter_total("pox.steering.proactive_installs") > 0,
        "steering installs recorded"
    );
    assert!(
        snap.counter_total("orch.mapping_attempts") > 0,
        "orch counters"
    );
    assert!(
        snap.counter_total("escape.chains_deployed") > 0,
        "escape counters"
    );
    assert!(
        snap.counter_total("netconf.rpcs_sent") > 0,
        "netconf counters"
    );

    // The NETCONF RPC latency histogram saw real round-trips.
    let h = snap
        .histogram("netconf.rpc_latency_ns", &[])
        .expect("rpc latency histogram");
    assert!(h.count > 0 && h.sum > 0, "rpc latency observed");

    // Orchestrator placement time was measured.
    let p = snap
        .histogram("wallclock.orch_placement_ns", &[])
        .expect("placement histogram");
    assert!(p.count > 0, "placement timed");

    // Chain-setup spans: one per chain, balanced, with non-zero virtual
    // duration, nested under the deploy span.
    let setups: Vec<_> = esc.tracer().finished("chain_setup").collect();
    assert_eq!(setups.len(), 1, "one chain_setup span per chain");
    assert!(
        setups[0].duration_ns().unwrap_or(0) > 0,
        "chain setup takes virtual time"
    );
    assert!(setups[0].parent.is_some(), "chain_setup nests under deploy");
    assert_eq!(esc.tracer().finished("deploy").count(), 1);
    assert_eq!(esc.tracer().finished("mapping").count(), 1);
    assert_eq!(esc.tracer().depth(), 0, "all spans closed");
    assert_eq!(
        snap.counter("span.count", &[("span", "chain_setup")])
            .unwrap_or(0),
        1,
        "span counter matches trace"
    );

    // Both expositions carry all four crates' series.
    let prom = snap.prometheus();
    for prefix in ["netem_", "pox_", "orch_", "escape_", "netconf_"] {
        assert!(
            prom.contains(prefix),
            "prometheus text has {prefix}* series"
        );
    }
    let json = snap.json_value().to_string();
    assert!(json.contains("pox.flow_mods") && json.contains("orch.mapping_attempts"));

    // The diff report sees further activity as deltas.
    esc.start_udp("sap0", "sap1", 128, 200, 5).unwrap();
    esc.run_for_ms(20);
    let report = snap.diff(&esc.metrics());
    assert!(
        report.counter_delta("netem.frames_delivered") > 0,
        "diff captures new frames"
    );
}
