//! Offline stand-in for the `bytes` crate.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace vendors the small slice of the `bytes` API it actually
//! uses: [`Bytes`] (cheaply cloneable, sliceable, immutable byte
//! storage), [`BytesMut`] (a growable buffer) and the [`BufMut`] write
//! helpers. Semantics match the real crate for this subset; it can be
//! swapped back for the upstream package without source changes.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer: a shared allocation plus a
/// view window, so `clone` and `slice` are O(1).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Wraps a static slice. (The shim copies it into one shared
    /// allocation; upstream borrows, but the observable API is equal.)
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copies an arbitrary slice.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// Growable byte buffer with the `put_*` write helpers.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a slice (inherent mirror of the [`BufMut`] method, so
    /// callers don't need the trait in scope).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

/// Big-endian write helpers over a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).len(), 2);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x04050607);
        m.put_slice(&[8]);
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn equality_ignores_backing_window() {
        let a = Bytes::from(vec![9, 1, 2, 9]).slice(1..3);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
    }
}
