//! Offline stand-in for the `proptest` crate.
//!
//! The container this repo builds in has no crates.io access, so the
//! property tests run on this small reimplementation of the proptest
//! surface they use: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, `any::<T>()`, range and tuple strategies,
//! regex-literal string strategies (a practical subset of the regex
//! syntax), `proptest::collection::vec`, `proptest::option::of`,
//! [`Just`], `prop_oneof!` and the `proptest!` test macro.
//!
//! Differences from upstream: cases are generated from a seed derived
//! from the test name (fully deterministic, overridable with
//! `PROPTEST_SEED`), and failing cases are *not* shrunk — the failing
//! input is printed as-is.

use rand::rngs::SmallRng;
use rand::Rng;
use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob the repo uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test name (FNV-1a),
    /// or from `PROPTEST_SEED` when set.
    pub fn new_rng(test_name: &str) -> super::SmallRng {
        use rand::SeedableRng;
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return super::SmallRng::seed_from_u64(seed);
            }
        }
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        super::SmallRng::seed_from_u64(h)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Builds recursive structures: `f` receives a strategy for the
    /// nested level and returns the strategy for one level up. `depth`
    /// bounds the nesting (the size hints are accepted for upstream
    /// compatibility and unused).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            s = f(s).boxed();
        }
        s
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ------------------------------------------------------------- arbitrary

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, bool, f32, f64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy behind [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniformly random value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ------------------------------------------------------------ collections

pub mod collection {
    use super::*;

    /// Accepted length specifications for [`vec`].
    #[derive(Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Vectors of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.size.min + 1 >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    /// `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// --------------------------------------------------------- string regexes

/// `&str` literals act as regex-shaped string strategies. Supported
/// subset: concatenations of atoms, where an atom is a character class
/// `[...]` (with ranges and `\n`/`\[`/`\]`/`\\` escapes), the class
/// `\PC` (printable, non-control), or a literal character; each atom may
/// carry a `{min,max}` repetition. This covers every pattern in the
/// repo's property tests.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut SmallRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let n = if min == max {
                *min
            } else {
                rng.gen_range(*min..=*max)
            };
            for _ in 0..n {
                out.push(atom.sample_char(rng));
            }
        }
        out
    }
}

enum Atom {
    /// Explicit choices (expanded from a class or a literal).
    Choices(Vec<char>),
    /// Any printable, non-control character (`\PC`).
    Printable,
}

impl Atom {
    fn sample_char(&self, rng: &mut SmallRng) -> char {
        match self {
            Atom::Choices(set) => set[rng.gen_range(0..set.len())],
            Atom::Printable => {
                // Mostly ASCII printable, with a sprinkle of wider
                // unicode to keep decoders honest.
                const EXOTIC: &[char] = &['é', 'λ', '→', '𝕏', '中'];
                if rng.gen_range(0u32..16) == 0 {
                    EXOTIC[rng.gen_range(0..EXOTIC.len())]
                } else {
                    char::from(rng.gen_range(0x20u8..0x7f))
                }
            }
        }
    }
}

type Rep = (Atom, usize, usize);

fn parse_pattern(src: &str) -> Result<Vec<Rep>, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut atoms: Vec<Rep> = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1)?;
                i = next;
                Atom::Choices(set)
            }
            '\\' => {
                let (atom, next) = parse_escape(&chars, i + 1)?;
                i = next;
                atom
            }
            c => {
                i += 1;
                Atom::Choices(vec![c])
            }
        };
        // Optional {min,max} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated {..}")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = body.split_once(',').ok_or("need {min,max}")?;
            i = close + 1;
            (
                lo.trim().parse::<usize>().map_err(|e| e.to_string())?,
                hi.trim().parse::<usize>().map_err(|e| e.to_string())?,
            )
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    Ok(atoms)
}

fn parse_escape(chars: &[char], i: usize) -> Result<(Atom, usize), String> {
    match chars.get(i) {
        Some('P') => {
            // Only \PC (not-control) is supported.
            if chars.get(i + 1) == Some(&'C') {
                Ok((Atom::Printable, i + 2))
            } else {
                Err("only \\PC is supported".into())
            }
        }
        Some('n') => Ok((Atom::Choices(vec!['\n']), i + 1)),
        Some('t') => Ok((Atom::Choices(vec!['\t']), i + 1)),
        Some(&c) => Ok((Atom::Choices(vec![c]), i + 1)),
        None => Err("dangling backslash".into()),
    }
}

fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), String> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        match chars.get(i) {
            None => return Err("unterminated [..]".into()),
            Some(']') => {
                if let Some(p) = prev {
                    set.push(p);
                }
                return Ok((set, i + 1));
            }
            Some('\\') => {
                if let Some(p) = prev.take() {
                    set.push(p);
                }
                let c = match chars.get(i + 1) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(&c) => c,
                    None => return Err("dangling backslash in class".into()),
                };
                prev = Some(c);
                i += 2;
            }
            Some('-') if prev.is_some() && chars.get(i + 1).is_some_and(|&c| c != ']') => {
                // Range like a-z.
                let lo = prev.take().unwrap();
                let hi = match chars.get(i + 1) {
                    Some('\\') => {
                        i += 1;
                        match chars.get(i + 1) {
                            Some('n') => '\n',
                            Some(&c) => c,
                            None => return Err("dangling backslash in class".into()),
                        }
                    }
                    Some(&c) => c,
                    None => return Err("unterminated range".into()),
                };
                if lo as u32 > hi as u32 {
                    return Err(format!("bad range {lo}-{hi}"));
                }
                for code in lo as u32..=hi as u32 {
                    if let Some(c) = char::from_u32(code) {
                        set.push(c);
                    }
                }
                i += 2;
            }
            Some(&c) => {
                if let Some(p) = prev.replace(c) {
                    set.push(p);
                }
                i += 1;
            }
        }
    }
}

// ---------------------------------------------------------------- macros

/// Uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertion macros: identical to `assert!`/`assert_eq!` (no shrinking,
/// so the plain panic already carries the failing input via the harness
/// message below).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::new_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $crate::__proptest_bindings!{ (__rng) $($args)* }
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    (($rng:ident)) => {};
    (($rng:ident) $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
    };
    (($rng:ident) $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::__proptest_bindings!{ ($rng) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = new_rng("t1");
        let s = (0u8..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = new_rng("t2");
        for _ in 0..50 {
            let s = "[a-z][a-z0-9-]{0,10}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));

            let p = "\\PC{0,20}".sample(&mut rng);
            assert!(p.chars().all(|c| !c.is_control()));
            assert!(p.chars().count() <= 20);

            let cls = "[ -~]{0,30}".sample(&mut rng);
            assert!(cls.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_and_option_and_oneof() {
        let mut rng = new_rng("t3");
        let v = crate::collection::vec(crate::any::<u8>(), 2..5);
        let o = crate::option::of(0u8..4);
        let u = prop_oneof![Just(1u8), Just(2u8), 10u8..12];
        let mut saw_none = false;
        for _ in 0..200 {
            let xs = v.sample(&mut rng);
            assert!((2..5).contains(&xs.len()));
            saw_none |= o.sample(&mut rng).is_none();
            let x = u.sample(&mut rng);
            assert!(x == 1 || x == 2 || x == 10 || x == 11);
        }
        assert!(saw_none);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u32..100, b in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 100);
            prop_assert!(b.len() < 4);
        }
    }
}
