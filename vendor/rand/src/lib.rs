//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::SmallRng`], [`SeedableRng`] and the [`Rng`] helper
//! surface the workspace uses (`gen`, `gen_range`, `gen_bool`). The
//! generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets — so quality
//! is adequate for simulation workloads. The exact stream differs from
//! upstream; the repo only relies on determinism for a fixed seed, which
//! holds.

pub mod rngs {
    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 to fill the state, as recommended by the xoshiro
        // authors (and done by upstream rand).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        rngs::SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Core RNG interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Debiased via 128-bit multiply-shift (Lemire).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + hi as u128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128 - lo as u128 + 1) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u128 + v as u128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing helper methods, blanket-implemented for every core
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u8..=6);
            assert!(w == 5 || w == 6);
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
