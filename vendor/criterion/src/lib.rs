//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so `cargo bench` runs on
//! this minimal reimplementation: same macros ([`criterion_group!`] /
//! [`criterion_main!`]) and the [`Criterion`] / [`BenchmarkGroup`] /
//! [`Bencher`] surface the repo's benches use. Measurement is a plain
//! calibrated-iteration loop reporting mean / min / max per sample — no
//! statistical analysis, HTML reports or regression tracking. Good
//! enough to exercise the bench code paths and print comparable numbers.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How much work one batched-iteration input represents.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for parameterized benchmarks (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// One group of related benchmarks, printed under a shared heading.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (each sample is one calibrated timing loop).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Report per-element / per-byte rates alongside times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        self.run(&id, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: grow the iteration count until one loop takes a
        // measurable slice, aiming near TARGET per sample.
        const TARGET: Duration = Duration::from_millis(20);
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                let per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
                let want = (TARGET.as_nanos() / per_iter.as_nanos().max(1)) as u64;
                iters = want.clamp(1, 1 << 22);
                break;
            }
            iters *= 4;
        }

        let mut times: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let (min, max) = (times[0], times[times.len() - 1]);

        print!(
            "{}/{}: mean {} (min {}, max {}; {} samples x {} iters)",
            self.name,
            id,
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            self.sample_size,
            iters
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                print!("  [{:.3} Melem/s]", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                print!("  [{:.3} MiB/s]", n as f64 / mean / (1024.0 * 1024.0))
            }
            _ => {}
        }
        println!();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Accepts `&str`, `String` and [`BenchmarkId`] as benchmark names.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// The harness entry point; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- bench group: {name} --");
        BenchmarkGroup {
            name,
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut g = self.benchmark_group(id.clone());
        let mut f = f;
        g.run(&id, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards flags like `--bench`; accept and
            // ignore them the way the real harness does.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_tiny_bench() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert!(b.elapsed > Duration::ZERO);
    }
}
