#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== soak smoke (escape soak --steps 200 --seed 7) =="
cargo run --release -q --bin escape -- soak --steps 200 --seed 7

echo "all checks passed"
