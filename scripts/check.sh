#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== dataplane perf gate (E0 cached pps vs committed BENCH_dataplane.json) =="
# The bench refreshes the root snapshot; if it was clean going in, put the
# committed baseline back so the gate never dirties the tree.
BASELINE_CLEAN=0
if git ls-files --error-unmatch BENCH_dataplane.json >/dev/null 2>&1 \
    && git diff --quiet -- BENCH_dataplane.json; then
    BASELINE_CLEAN=1
fi
ESCAPE_BENCH_GATE=1 ESCAPE_BENCH_TABLE_ONLY=1 \
    cargo bench -q -p escape-bench --bench e0_dataplane
if [ "$BASELINE_CLEAN" = 1 ]; then
    git checkout -- BENCH_dataplane.json
fi

echo "== soak smoke (escape soak --steps 200 --seed 7) =="
cargo run --release -q --bin escape -- soak --steps 200 --seed 7

echo "== daemon smoke (escaped + escape ctl) =="
cargo build --release -q --bin escape --bin escaped
SOCK="$(mktemp -u /tmp/escaped-check-XXXXXX.sock)"
target/release/escaped --socket "$SOCK" --seed 7 &
DAEMON_PID=$!
cleanup_daemon() {
    kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$SOCK"
}
trap cleanup_daemon EXIT
for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon smoke: socket never appeared" >&2; exit 1; }
target/release/escape ctl --socket "$SOCK" status
target/release/escape ctl --socket "$SOCK" metrics --prom | grep -q escape_deploys
target/release/escape ctl --socket "$SOCK" shutdown
wait "$DAEMON_PID"
trap - EXIT
if [ -e "$SOCK" ]; then
    echo "daemon smoke: leaked socket $SOCK" >&2
    exit 1
fi
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "daemon smoke: orphaned daemon process $DAEMON_PID" >&2
    exit 1
fi

echo "all checks passed"
