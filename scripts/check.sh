#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== dataplane perf gate (E0 cached pps vs committed BENCH_dataplane.json) =="
# The bench refreshes the root snapshot; if it was clean going in, put the
# committed baseline back so the gate never dirties the tree.
BASELINE_CLEAN=0
if git ls-files --error-unmatch BENCH_dataplane.json >/dev/null 2>&1 \
    && git diff --quiet -- BENCH_dataplane.json; then
    BASELINE_CLEAN=1
fi
ESCAPE_BENCH_GATE=1 ESCAPE_BENCH_TABLE_ONLY=1 \
    cargo bench -q -p escape-bench --bench e0_dataplane
if [ "$BASELINE_CLEAN" = 1 ]; then
    git checkout -- BENCH_dataplane.json
fi

echo "== soak smoke (escape soak --steps 200 --seed 7) =="
cargo run --release -q --bin escape -- soak --steps 200 --seed 7

echo "== daemon smoke (escaped + escape ctl) =="
cargo build --release -q --bin escape --bin escaped
SOCK="$(mktemp -u /tmp/escaped-check-XXXXXX.sock)"
target/release/escaped --socket "$SOCK" --seed 7 &
DAEMON_PID=$!
cleanup_daemon() {
    kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$SOCK"
}
trap cleanup_daemon EXIT
for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon smoke: socket never appeared" >&2; exit 1; }
target/release/escape ctl --socket "$SOCK" status
target/release/escape ctl --socket "$SOCK" metrics --prom | grep -q escape_deploys
target/release/escape ctl --socket "$SOCK" shutdown
wait "$DAEMON_PID"
trap - EXIT
if [ -e "$SOCK" ]; then
    echo "daemon smoke: leaked socket $SOCK" >&2
    exit 1
fi
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "daemon smoke: orphaned daemon process $DAEMON_PID" >&2
    exit 1
fi

echo "== watch smoke (escaped + streaming escape ctl watch) =="
WSOCK="$(mktemp -u /tmp/escaped-watch-XXXXXX.sock)"
WATCH_OUT="$(mktemp /tmp/escape-watch-XXXXXX.log)"
target/release/escaped --socket "$WSOCK" --seed 11 &
WDAEMON_PID=$!
cleanup_watch() {
    kill "$WDAEMON_PID" 2>/dev/null || true
    rm -f "$WSOCK" "$WATCH_OUT"
}
trap cleanup_watch EXIT
for _ in $(seq 1 50); do
    [ -S "$WSOCK" ] && break
    sleep 0.1
done
[ -S "$WSOCK" ] || { echo "watch smoke: socket never appeared" >&2; exit 1; }
target/release/escape ctl --socket "$WSOCK" watch >"$WATCH_OUT" 2>&1 &
WATCH_PID=$!
# The "watching:" ack means the subscription is registered ahead of
# every command issued after it — nothing below can be missed.
for _ in $(seq 1 50); do
    grep -q "watching:" "$WATCH_OUT" && break
    sleep 0.1
done
grep -q "watching:" "$WATCH_OUT" || { echo "watch smoke: subscriber never acked" >&2; exit 1; }
target/release/escape ctl --socket "$WSOCK" deploy examples/data/demo.sg
target/release/escape ctl --socket "$WSOCK" traffic sap0:sap1:50:128:200
target/release/escape ctl --socket "$WSOCK" run-for 20
target/release/escape ctl --socket "$WSOCK" run-for 20
target/release/escape ctl --socket "$WSOCK" shutdown
wait "$WDAEMON_PID"
if ! wait "$WATCH_PID"; then
    echo "watch smoke: subscriber exited non-zero" >&2
    cat "$WATCH_OUT" >&2
    exit 1
fi
grep -q "deploy-committed" "$WATCH_OUT" \
    || { echo "watch smoke: no deploy event seen" >&2; cat "$WATCH_OUT" >&2; exit 1; }
DELTAS=$(grep -c "metrics-delta" "$WATCH_OUT" || true)
if [ "$DELTAS" -lt 2 ]; then
    echo "watch smoke: only $DELTAS metrics-delta frames (want >=2)" >&2
    cat "$WATCH_OUT" >&2
    exit 1
fi
rm -f "$WATCH_OUT"
trap - EXIT
if [ -e "$WSOCK" ]; then
    echo "watch smoke: leaked socket $WSOCK" >&2
    exit 1
fi

echo "all checks passed"
