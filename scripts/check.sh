#!/usr/bin/env bash
# Repo gate: formatting, lints, tests. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "all checks passed"
