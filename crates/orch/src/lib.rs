//! # escape-orch
//!
//! The ESCAPE orchestrator: mapping abstract service graphs onto
//! infrastructure resources.
//!
//! The paper: *"A dedicated component maps abstract service graphs into
//! available resources based on different optimization algorithms (which
//! can be easily changed or customized)."* This crate is that component:
//!
//! * [`state::ResourceState`] — residual CPU per container and bandwidth
//!   per link, kept consistent as chains are embedded and released;
//! * [`algo::MappingAlgorithm`] — the pluggable algorithm trait, with five
//!   implementations: [`algo::GreedyFirstFit`], [`algo::BestFitCpu`],
//!   [`algo::NearestNeighbor`], [`algo::Backtracking`] (optimal on small
//!   instances) and [`algo::SimulatedAnnealing`];
//! * [`engine::Orchestrator`] — commits/releases embeddings against the
//!   resource state and produces [`engine::ChainMapping`]s, the input the
//!   deployment pipeline (escape crate) turns into NETCONF calls and
//!   steering rules;
//! * [`workload`] — seeded random service-graph generators for the
//!   mapping experiments (E2) and chain-setup benches (E1).

pub mod algo;
pub mod engine;
pub mod state;
pub mod workload;

pub use algo::{
    Backtracking, BestFitCpu, GreedyFirstFit, MapError, MappingAlgorithm, NearestNeighbor,
    SimulatedAnnealing,
};
pub use engine::{ChainMapping, Orchestrator, PathSegment};
pub use state::ResourceState;
