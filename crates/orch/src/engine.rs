//! The orchestration engine: commits embeddings against the resource view.

use crate::algo::{MapError, MappingAlgorithm};
use crate::state::ResourceState;
use escape_sg::topo::{link_key, TopoNodeKind};
use escape_sg::{Chain, ResourceTopology, ServiceGraph};
use escape_telemetry::{Counter, Histogram, Registry};
use std::collections::HashMap;
use std::time::Instant;

/// One routed leg of a chain: the full node path (SAP/container/switch
/// names, endpoints included) between two consecutive chain hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    pub nodes: Vec<String>,
    pub delay_us: u64,
}

/// A fully mapped chain: where each VNF goes and how traffic is routed.
#[derive(Debug, Clone)]
pub struct ChainMapping {
    pub chain: Chain,
    /// (vnf name, container name), in chain order.
    pub placement: Vec<(String, String)>,
    /// One segment per consecutive hop pair.
    pub segments: Vec<PathSegment>,
    /// Sum of segment delays.
    pub total_delay_us: u64,
}

impl ChainMapping {
    /// Container hosting a given VNF.
    pub fn container_of(&self, vnf: &str) -> Option<&str> {
        self.placement
            .iter()
            .find(|(v, _)| v == vnf)
            .map(|(_, c)| c.as_str())
    }

    /// Total switch-hops across all segments (a path-stretch metric).
    pub fn hop_count(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.nodes.len().saturating_sub(1))
            .sum()
    }
}

/// Routes a chain given a placement: shortest residual-capacity paths
/// between consecutive hop locations, with the delay budget enforced.
pub fn route_chain(
    topo: &ResourceTopology,
    chain: &Chain,
    locate: &dyn Fn(&str) -> Option<String>,
    state: &ResourceState,
) -> Result<(Vec<PathSegment>, u64), MapError> {
    let mut segments = Vec::new();
    let mut total = 0u64;
    for w in chain.hops.windows(2) {
        let from = locate(&w[0]).ok_or_else(|| MapError::UnknownNode(w[0].clone()))?;
        let to = locate(&w[1]).ok_or_else(|| MapError::UnknownNode(w[1].clone()))?;
        if from == to {
            segments.push(PathSegment {
                nodes: vec![from],
                delay_us: 0,
            });
            continue;
        }
        let (nodes, delay) = topo
            .shortest_path(&from, &to, chain.bandwidth_mbps, Some(&state.bw))
            .ok_or_else(|| MapError::NoPath {
                from: from.clone(),
                to: to.clone(),
            })?;
        total += delay;
        segments.push(PathSegment {
            nodes,
            delay_us: delay,
        });
    }
    if let Some(budget) = chain.max_delay_us {
        if total > budget {
            return Err(MapError::DelayExceeded { got: total, budget });
        }
    }
    Ok((segments, total))
}

/// Cached registry handles for the mapping path.
struct OrchCounters {
    attempts: Counter,
    embedded: Counter,
    rejected: Counter,
    sg_rejected: Counter,
    remaps: Counter,
    remap_failures: Counter,
    reroutes: Counter,
    reroute_failures: Counter,
    placement_ns: Histogram,
}

impl OrchCounters {
    fn new(reg: &Registry) -> OrchCounters {
        OrchCounters {
            attempts: reg.counter("orch.mapping_attempts"),
            embedded: reg.counter("orch.chains_embedded"),
            rejected: reg.counter("orch.chains_rejected"),
            sg_rejected: reg.counter("orch.sg_rejected"),
            remaps: reg.counter("orch.remaps"),
            remap_failures: reg.counter("orch.remap_failures"),
            reroutes: reg.counter("orch.reroutes"),
            reroute_failures: reg.counter("orch.reroute_failures"),
            // Wall-clock timing: the `wallclock.` namespace marks the
            // only metrics allowed to differ between same-seed runs, so
            // determinism comparisons can exclude them by prefix.
            placement_ns: reg.histogram("wallclock.orch_placement_ns"),
        }
    }
}

/// The orchestrator: owns the resource view and a pluggable algorithm.
/// Per-chain commit record: the mapping plus the (container, cpu, mem)
/// reservations to release on teardown.
type CommitRecord = (ChainMapping, Vec<(String, f64, u64)>);

pub struct Orchestrator {
    topo: ResourceTopology,
    state: ResourceState,
    algorithm: Box<dyn MappingAlgorithm>,
    committed: HashMap<String, CommitRecord>,
    telemetry: Registry,
    counters: OrchCounters,
}

impl Orchestrator {
    /// Creates an orchestrator over a validated topology with a private
    /// telemetry registry.
    pub fn new(
        topo: ResourceTopology,
        algorithm: Box<dyn MappingAlgorithm>,
    ) -> Result<Orchestrator, String> {
        Orchestrator::with_registry(topo, algorithm, Registry::new())
    }

    /// Creates an orchestrator publishing `orch.*` metrics into `registry`.
    pub fn with_registry(
        topo: ResourceTopology,
        algorithm: Box<dyn MappingAlgorithm>,
        registry: Registry,
    ) -> Result<Orchestrator, String> {
        topo.validate()?;
        let state = ResourceState::from_topology(&topo);
        let counters = OrchCounters::new(&registry);
        Ok(Orchestrator {
            topo,
            state,
            algorithm,
            committed: HashMap::new(),
            telemetry: registry,
            counters,
        })
    }

    /// The registry this orchestrator publishes `orch.*` metrics into.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The algorithm in use.
    pub fn algorithm_name(&self) -> &'static str {
        self.algorithm.name()
    }

    /// Swaps the mapping algorithm ("easily changed or customized").
    pub fn set_algorithm(&mut self, algorithm: Box<dyn MappingAlgorithm>) {
        self.algorithm = algorithm;
    }

    /// The current residual view.
    pub fn state(&self) -> &ResourceState {
        &self.state
    }

    /// The topology.
    pub fn topology(&self) -> &ResourceTopology {
        &self.topo
    }

    /// Embeds every chain of a service graph; successful chains commit
    /// resources immediately (first-come-first-served within the graph).
    /// Returns (accepted mappings, rejections with reasons).
    pub fn embed_graph(
        &mut self,
        sg: &ServiceGraph,
    ) -> (Vec<ChainMapping>, Vec<(String, MapError)>) {
        let mut ok = Vec::new();
        let mut rejected = Vec::new();
        for chain in sg.chains.clone() {
            match self.embed_chain(sg, &chain) {
                Ok(m) => ok.push(m),
                Err(e) => rejected.push((chain.name.clone(), e)),
            }
        }
        if !rejected.is_empty() {
            self.counters.sg_rejected.inc();
        }
        (ok, rejected)
    }

    /// Embeds one chain and commits its resources.
    pub fn embed_chain(
        &mut self,
        sg: &ServiceGraph,
        chain: &Chain,
    ) -> Result<ChainMapping, MapError> {
        let started = Instant::now();
        self.counters.attempts.inc();
        let result = self.embed_chain_inner(sg, chain);
        self.counters
            .placement_ns
            .observe(started.elapsed().as_nanos() as u64);
        match &result {
            Ok(_) => self.counters.embedded.inc(),
            Err(_) => self.counters.rejected.inc(),
        }
        result
    }

    fn embed_chain_inner(
        &mut self,
        sg: &ServiceGraph,
        chain: &Chain,
    ) -> Result<ChainMapping, MapError> {
        if self.committed.contains_key(&chain.name) {
            return Err(MapError::Infeasible(format!(
                "chain {:?} already embedded",
                chain.name
            )));
        }
        let mapping = self
            .algorithm
            .map_chain(&self.topo, sg, chain, &self.state)?;
        // Commit: compute then bandwidth, rolling back on failure.
        let mut reserved_compute: Vec<(String, f64, u64)> = Vec::new();
        for (vnf, container) in &mapping.placement {
            let req = sg
                .vnf_named(vnf)
                .ok_or_else(|| MapError::UnknownNode(vnf.clone()))?;
            if let Err(e) = self.state.reserve_compute(container, req.cpu, req.mem_mb) {
                for (c, cpu, mem) in &reserved_compute {
                    self.state.release_compute(c, *cpu, *mem);
                }
                return Err(MapError::Infeasible(e));
            }
            reserved_compute.push((container.clone(), req.cpu, req.mem_mb));
        }
        let mut reserved_paths: Vec<&PathSegment> = Vec::new();
        for seg in &mapping.segments {
            if let Err(e) = self.state.reserve_path(&seg.nodes, chain.bandwidth_mbps) {
                for s in reserved_paths {
                    self.state.release_path(&s.nodes, chain.bandwidth_mbps);
                }
                for (c, cpu, mem) in &reserved_compute {
                    self.state.release_compute(c, *cpu, *mem);
                }
                return Err(MapError::Infeasible(e));
            }
            reserved_paths.push(seg);
        }
        self.committed
            .insert(chain.name.clone(), (mapping.clone(), reserved_compute));
        Ok(mapping)
    }

    /// Releases an embedded chain's resources. Returns the mapping if the
    /// chain was known.
    pub fn release_chain(&mut self, chain_name: &str) -> Option<ChainMapping> {
        let (mapping, compute) = self.committed.remove(chain_name)?;
        for (c, cpu, mem) in compute {
            self.state.release_compute(&c, cpu, mem);
        }
        for seg in &mapping.segments {
            self.state
                .release_path(&seg.nodes, mapping.chain.bandwidth_mbps);
        }
        Some(mapping)
    }

    // ------------- fault handling -----------------------------------

    /// Marks a container failed in the resource view (see
    /// [`ResourceState::fail_container`]).
    pub fn mark_container_failed(&mut self, container: &str) -> bool {
        self.state.fail_container(container)
    }

    /// Restores a failed container's capacity.
    pub fn mark_container_recovered(&mut self, container: &str) -> bool {
        self.state.recover_container(container)
    }

    /// Marks a link failed: path search and reservation route around it.
    pub fn mark_link_failed(&mut self, a: &str, b: &str) -> bool {
        self.state.fail_link(a, b)
    }

    /// Restores a failed link's capacity.
    pub fn mark_link_recovered(&mut self, a: &str, b: &str) -> bool {
        self.state.recover_link(a, b)
    }

    /// The committed mapping of an embedded chain, if any.
    pub fn chain_mapping(&self, chain_name: &str) -> Option<&ChainMapping> {
        self.committed.get(chain_name).map(|(m, _)| m)
    }

    /// Embedded chains whose routed segments traverse the `a`-`b` link,
    /// sorted for deterministic recovery order.
    pub fn chains_using_link(&self, a: &str, b: &str) -> Vec<String> {
        let key = link_key(a, b);
        let mut v: Vec<String> = self
            .committed
            .iter()
            .filter(|(_, (m, _))| {
                m.segments
                    .iter()
                    .any(|s| s.nodes.windows(2).any(|w| link_key(&w[0], &w[1]) == key))
            })
            .map(|(name, _)| name.clone())
            .collect();
        v.sort_unstable();
        v
    }

    /// Embedded chains with at least one VNF placed on `container`,
    /// sorted for deterministic recovery order.
    pub fn chains_on_container(&self, container: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .committed
            .iter()
            .filter(|(_, (m, _))| m.placement.iter().any(|(_, c)| c == container))
            .map(|(name, _)| name.clone())
            .collect();
        v.sort_unstable();
        v
    }

    /// Fully re-embeds a chain (new placement and routes), e.g. after the
    /// container hosting one of its VNFs died. The old embedding is
    /// released first; on failure the chain stays un-embedded and its
    /// healthy resources stay released (the caller decides whether to
    /// retry later).
    pub fn remap_chain(
        &mut self,
        sg: &ServiceGraph,
        chain_name: &str,
    ) -> Result<ChainMapping, MapError> {
        let Some(old) = self.release_chain(chain_name) else {
            return Err(MapError::Infeasible(format!(
                "chain {chain_name:?} is not embedded"
            )));
        };
        match self.embed_chain(sg, &old.chain) {
            Ok(m) => {
                self.counters.remaps.inc();
                Ok(m)
            }
            Err(e) => {
                self.counters.remap_failures.inc();
                Err(e)
            }
        }
    }

    /// Re-routes a chain around failed links while keeping its placement
    /// (VNFs stay where they run; only the paths move). On failure the
    /// chain is fully released — placement included — so a subsequent
    /// [`Orchestrator::remap_chain`]-style re-embedding can start clean.
    pub fn reroute_chain(&mut self, chain_name: &str) -> Result<ChainMapping, MapError> {
        let Some((old, compute)) = self.committed.remove(chain_name) else {
            return Err(MapError::Infeasible(format!(
                "chain {chain_name:?} is not embedded"
            )));
        };
        // Free the old paths (failed hops land in the stash), keep compute.
        for seg in &old.segments {
            self.state
                .release_path(&seg.nodes, old.chain.bandwidth_mbps);
        }
        let placement = old.placement.clone();
        let topo = &self.topo;
        let locate = |hop: &str| -> Option<String> {
            if let Some((_, c)) = placement.iter().find(|(v, _)| v == hop) {
                return Some(c.clone());
            }
            match topo.node(hop).map(|n| &n.kind) {
                Some(TopoNodeKind::Sap) => Some(hop.to_string()),
                _ => None,
            }
        };
        let routed =
            route_chain(topo, &old.chain, &locate, &self.state).and_then(|(segments, total)| {
                let mut reserved: Vec<&PathSegment> = Vec::new();
                for seg in &segments {
                    if let Err(e) = self
                        .state
                        .reserve_path(&seg.nodes, old.chain.bandwidth_mbps)
                    {
                        for s in reserved {
                            self.state.release_path(&s.nodes, old.chain.bandwidth_mbps);
                        }
                        return Err(MapError::Infeasible(e));
                    }
                    reserved.push(seg);
                }
                Ok((segments, total))
            });
        match routed {
            Ok((segments, total)) => {
                let mapping = ChainMapping {
                    segments,
                    total_delay_us: total,
                    ..old
                };
                self.committed
                    .insert(chain_name.to_string(), (mapping.clone(), compute));
                self.counters.reroutes.inc();
                Ok(mapping)
            }
            Err(e) => {
                // No viable route: give the compute back too and leave the
                // chain un-embedded.
                for (c, cpu, mem) in compute {
                    self.state.release_compute(&c, cpu, mem);
                }
                self.counters.reroute_failures.inc();
                Err(e)
            }
        }
    }

    /// Per-container compute reserved by an embedded chain, as committed
    /// at embed time: (container, cpu, mem_mb) triples.
    pub fn chain_reservations(&self, chain_name: &str) -> Option<&[(String, f64, u64)]> {
        self.committed.get(chain_name).map(|(_, c)| c.as_slice())
    }

    /// Conservation audit of the reservation ledger: for every container,
    /// effective free CPU/memory (live + failure stash) plus the sum of
    /// reservations committed to live chains must equal the topology
    /// capacity — and likewise for link bandwidth. Any difference means a
    /// leak (released twice, or never released). Returns one line per
    /// violation, in deterministic order; empty means the ledger is clean.
    pub fn audit(&self) -> Vec<String> {
        const EPS: f64 = 1e-6;
        let mut violations = Vec::new();
        let capacity = ResourceState::from_topology(&self.topo);

        // Sum committed reservations per container and per link.
        let mut cpu_reserved: HashMap<&str, f64> = HashMap::new();
        let mut mem_reserved: HashMap<&str, u64> = HashMap::new();
        let mut bw_reserved: HashMap<(String, String), f64> = HashMap::new();
        for (mapping, compute) in self.committed.values() {
            for (c, cpu, mem) in compute {
                *cpu_reserved.entry(c.as_str()).or_insert(0.0) += cpu;
                *mem_reserved.entry(c.as_str()).or_insert(0) += mem;
            }
            for seg in &mapping.segments {
                for w in seg.nodes.windows(2) {
                    *bw_reserved.entry(link_key(&w[0], &w[1])).or_insert(0.0) +=
                        mapping.chain.bandwidth_mbps;
                }
            }
        }

        for name in capacity.containers_sorted() {
            let free = self.state.effective_cpu_of(&name);
            let reserved = cpu_reserved.get(name.as_str()).copied().unwrap_or(0.0);
            let cap = capacity.cpu_of(&name);
            if (free + reserved - cap).abs() > EPS {
                violations.push(format!(
                    "container {name}: free {free} + reserved {reserved} != capacity {cap} cpu"
                ));
            }
            let free_mem = self.state.effective_mem_of(&name);
            let reserved_mem = mem_reserved.get(name.as_str()).copied().unwrap_or(0);
            let cap_mem = capacity.mem.get(&name).copied().unwrap_or(0);
            if free_mem + reserved_mem != cap_mem {
                violations.push(format!(
                    "container {name}: free {free_mem} + reserved {reserved_mem} != capacity {cap_mem} mem"
                ));
            }
        }
        let mut links: Vec<&(String, String)> = capacity.bw.keys().collect();
        links.sort();
        for key in links {
            let free = self.state.effective_bw_of(&key.0, &key.1);
            let reserved = bw_reserved.get(key).copied().unwrap_or(0.0);
            let cap = capacity.bw[key];
            if (free + reserved - cap).abs() > EPS {
                violations.push(format!(
                    "link {}-{}: free {free} + reserved {reserved} != capacity {cap} mbps",
                    key.0, key.1
                ));
            }
        }
        violations
    }

    /// Names of currently embedded chains.
    pub fn embedded_chains(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.committed.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// Fraction of total container CPU currently reserved.
    pub fn cpu_utilization(&self) -> f64 {
        let total: f64 = ResourceState::from_topology(&self.topo).total_free_cpu();
        if total == 0.0 {
            return 0.0;
        }
        1.0 - self.state.total_free_cpu() / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::GreedyFirstFit;
    use escape_sg::topo::builders;

    fn sg() -> ServiceGraph {
        ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("fw", "firewall", 1.0, 256)
            .vnf("mon", "monitor", 0.5, 64)
            .chain("c1", &["sap0", "fw", "mon", "sap1"], 100.0, Some(10_000))
    }

    #[test]
    fn embed_and_release_round_trip() {
        let topo = builders::linear(3, 4.0);
        let mut orch = Orchestrator::new(topo, Box::new(GreedyFirstFit)).unwrap();
        let free0 = orch.state().total_free_cpu();
        let (ok, rejected) = orch.embed_graph(&sg());
        assert_eq!(ok.len(), 1, "rejected: {rejected:?}");
        assert!(rejected.is_empty());
        let m = &ok[0];
        assert_eq!(m.placement.len(), 2);
        assert!(m.total_delay_us > 0);
        assert!(orch.state().total_free_cpu() < free0);
        assert_eq!(orch.embedded_chains(), vec!["c1"]);
        assert!(orch.cpu_utilization() > 0.0);

        orch.release_chain("c1").unwrap();
        assert_eq!(orch.state().total_free_cpu(), free0);
        assert!(orch.embedded_chains().is_empty());
        assert!(orch.release_chain("c1").is_none());
    }

    #[test]
    fn double_embed_is_refused() {
        let topo = builders::linear(3, 4.0);
        let mut orch = Orchestrator::new(topo, Box::new(GreedyFirstFit)).unwrap();
        let g = sg();
        orch.embed_chain(&g, &g.chains[0]).unwrap();
        assert!(matches!(
            orch.embed_chain(&g, &g.chains[0]),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn capacity_exhaustion_rejects_later_chains() {
        // Containers have 1 CPU each; each chain needs 1.5 total.
        let topo = builders::linear(2, 1.0);
        let mut orch = Orchestrator::new(topo, Box::new(GreedyFirstFit)).unwrap();
        let mut g = ServiceGraph::new().sap("sap0").sap("sap1");
        for i in 0..4 {
            g = g.vnf(&format!("fw{i}"), "firewall", 1.0, 64).chain(
                &format!("c{i}"),
                &["sap0", &format!("fw{i}"), "sap1"],
                10.0,
                None,
            );
        }
        let (ok, rejected) = orch.embed_graph(&g);
        assert_eq!(ok.len(), 2, "two 1-cpu containers fit two 1-cpu vnfs");
        assert_eq!(rejected.len(), 2);
        assert!(matches!(rejected[0].1, MapError::NoCapacity(_)));
    }

    #[test]
    fn bandwidth_exhaustion_rejects() {
        // 1000 Mbit/s links; each chain reserves 400 Mbit/s into and out
        // of its container, so one chain saturates c0's uplink (800 of
        // 1000) and greedy — which keeps picking c0 by CPU — fails to
        // route the rest.
        let mk_graph = || {
            let mut g = ServiceGraph::new().sap("sap0").sap("sap1");
            for i in 0..3 {
                g = g.vnf(&format!("v{i}"), "monitor", 0.1, 16).chain(
                    &format!("c{i}"),
                    &["sap0", &format!("v{i}"), "sap1"],
                    400.0,
                    None,
                );
            }
            g
        };
        let mut orch =
            Orchestrator::new(builders::linear(2, 8.0), Box::new(GreedyFirstFit)).unwrap();
        let (ok, rejected) = orch.embed_graph(&mk_graph());
        assert_eq!(ok.len(), 1);
        assert_eq!(rejected.len(), 2);

        // A locality-aware algorithm spreads to c1 and fits a second
        // chain (sap0-s0 has 1000/400 = 2 chains of headroom).
        let mut orch = Orchestrator::new(
            builders::linear(2, 8.0),
            Box::new(crate::algo::NearestNeighbor),
        )
        .unwrap();
        let (ok, rejected) = orch.embed_graph(&mk_graph());
        assert_eq!(ok.len(), 2, "rejected: {rejected:?}");
        assert_eq!(rejected.len(), 1);
    }

    #[test]
    fn delay_budget_rejects() {
        let topo = builders::linear(8, 4.0); // 50 µs per switch hop
        let mut orch = Orchestrator::new(topo, Box::new(GreedyFirstFit)).unwrap();
        let g = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("v", "monitor", 0.5, 32)
            .chain("tight", &["sap0", "v", "sap1"], 10.0, Some(50));
        let (ok, rejected) = orch.embed_graph(&g);
        assert!(ok.is_empty());
        assert!(matches!(rejected[0].1, MapError::DelayExceeded { .. }));
    }

    /// A redundant triangle: the s0-s1 primary link has a two-hop backup
    /// through s2, so reroutes have somewhere to go.
    fn triangle() -> ResourceTopology {
        let mut t = ResourceTopology::new();
        t.add_sap("sap0").add_sap("sap1");
        t.add_switch("s0").add_switch("s1").add_switch("s2");
        t.add_container("c0", 4.0, 2048);
        t.add_link("sap0", "s0", 1000.0, 10);
        t.add_link("s0", "c0", 1000.0, 20);
        t.add_link("s0", "s1", 1000.0, 50);
        t.add_link("s0", "s2", 1000.0, 100);
        t.add_link("s2", "s1", 1000.0, 100);
        t.add_link("sap1", "s1", 1000.0, 10);
        t
    }

    #[test]
    fn reroute_moves_traffic_off_a_failed_link() {
        let mut orch = Orchestrator::new(triangle(), Box::new(GreedyFirstFit)).unwrap();
        let g = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("fw", "firewall", 1.0, 256)
            .chain("c1", &["sap0", "fw", "sap1"], 100.0, None);
        let m = orch.embed_chain(&g, &g.chains[0]).unwrap();
        assert!(
            m.segments.iter().any(|s| s
                .nodes
                .windows(2)
                .any(|w| { (w[0] == "s0" && w[1] == "s1") || (w[0] == "s1" && w[1] == "s0") })),
            "primary route should use the direct s0-s1 link: {m:?}"
        );
        assert_eq!(orch.chains_using_link("s1", "s0"), vec!["c1"]);
        assert_eq!(orch.chains_on_container("c0"), vec!["c1"]);

        orch.mark_link_failed("s0", "s1");
        let m2 = orch.reroute_chain("c1").unwrap();
        assert_eq!(m2.placement, m.placement, "reroute keeps the placement");
        assert!(
            m2.segments
                .iter()
                .any(|s| s.nodes.iter().any(|n| n == "s2")),
            "reroute should detour through s2: {m2:?}"
        );
        assert!(m2.total_delay_us > m.total_delay_us);
        assert!(orch.chains_using_link("s0", "s1").is_empty());
        let snap = orch.telemetry().snapshot();
        assert_eq!(snap.counter("orch.reroutes", &[]), Some(1));
        // The full round trip still releases cleanly.
        orch.mark_link_recovered("s0", "s1");
        orch.release_chain("c1").unwrap();
        let fresh = ResourceState::from_topology(orch.topology());
        assert_eq!(orch.state().bw, fresh.bw);
        assert_eq!(orch.state().cpu, fresh.cpu);
    }

    #[test]
    fn reroute_without_alternate_path_releases_everything() {
        // linear(2) has a single path between the SAPs.
        let mut orch =
            Orchestrator::new(builders::linear(2, 4.0), Box::new(GreedyFirstFit)).unwrap();
        let g = sg();
        orch.embed_chain(&g, &g.chains[0]).unwrap();
        orch.mark_link_failed("s0", "s1");
        let err = orch.reroute_chain("c1").unwrap_err();
        assert!(matches!(err, MapError::NoPath { .. }), "{err:?}");
        assert!(orch.embedded_chains().is_empty(), "chain fully released");
        // Healthy resources were returned (only the failed link is held).
        orch.mark_link_recovered("s0", "s1");
        let fresh = ResourceState::from_topology(orch.topology());
        assert_eq!(orch.state().cpu, fresh.cpu);
        assert_eq!(orch.state().bw, fresh.bw);
        assert_eq!(
            orch.telemetry()
                .snapshot()
                .counter("orch.reroute_failures", &[]),
            Some(1)
        );
    }

    #[test]
    fn remap_moves_a_chain_off_a_failed_container() {
        let mut orch = Orchestrator::new(builders::star(2, 4.0), Box::new(GreedyFirstFit)).unwrap();
        let g = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("fw", "firewall", 1.0, 256)
            .chain("c1", &["sap0", "fw", "sap1"], 100.0, None);
        let m = orch.embed_chain(&g, &g.chains[0]).unwrap();
        assert_eq!(m.container_of("fw"), Some("c0"));

        orch.mark_container_failed("c0");
        let m2 = orch.remap_chain(&g, "c1").unwrap();
        assert_eq!(m2.container_of("fw"), Some("c1"), "moved to the survivor");
        assert_eq!(orch.chains_on_container("c1"), vec!["c1"]);
        assert_eq!(
            orch.telemetry().snapshot().counter("orch.remaps", &[]),
            Some(1)
        );
    }

    #[test]
    fn remap_without_capacity_fails_gracefully() {
        let mut orch = Orchestrator::new(builders::star(2, 1.0), Box::new(GreedyFirstFit)).unwrap();
        let g = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("fw", "firewall", 1.0, 256)
            .chain("c1", &["sap0", "fw", "sap1"], 100.0, None);
        orch.embed_chain(&g, &g.chains[0]).unwrap();
        orch.mark_container_failed("c0");
        orch.mark_container_failed("c1");
        let err = orch.remap_chain(&g, "c1").unwrap_err();
        assert!(matches!(err, MapError::NoCapacity(_)), "{err:?}");
        assert!(orch.embedded_chains().is_empty());
        assert!(orch.remap_chain(&g, "c1").is_err(), "unknown chain now");
        assert_eq!(
            orch.telemetry()
                .snapshot()
                .counter("orch.remap_failures", &[]),
            Some(1)
        );
        // Survivors come back once the containers recover.
        orch.mark_container_recovered("c0");
        orch.mark_container_recovered("c1");
        let m = orch.embed_chain(&g, &g.chains[0]).unwrap();
        assert_eq!(m.placement.len(), 1);
    }

    #[test]
    fn audit_is_clean_through_lifecycle_and_catches_leaks() {
        let topo = builders::linear(3, 4.0);
        let mut orch = Orchestrator::new(topo, Box::new(GreedyFirstFit)).unwrap();
        assert!(orch.audit().is_empty(), "fresh view is balanced");
        let g = sg();
        orch.embed_chain(&g, &g.chains[0]).unwrap();
        assert!(orch.audit().is_empty(), "embedded view is balanced");
        assert!(!orch.chain_reservations("c1").unwrap().is_empty());

        // Failure stashes don't unbalance the ledger.
        orch.mark_link_failed("s0", "s1");
        orch.mark_container_failed("c0");
        assert_eq!(orch.audit(), Vec::<String>::new());
        orch.mark_container_recovered("c0");
        orch.mark_link_recovered("s0", "s1");

        orch.release_chain("c1").unwrap();
        assert!(orch.audit().is_empty(), "released view is balanced");
        assert!(orch.chain_reservations("c1").is_none());

        // A double release is exactly the class of leak audit must catch.
        orch.embed_chain(&g, &g.chains[0]).unwrap();
        let m = orch.chain_mapping("c1").unwrap().clone();
        orch.state.release_path(&m.segments[0].nodes, 100.0);
        let v = orch.audit();
        assert!(!v.is_empty(), "double release must be flagged");
        assert!(v[0].contains("link"), "{v:?}");
    }

    #[test]
    fn hop_count_metric() {
        let topo = builders::linear(3, 4.0);
        let mut orch = Orchestrator::new(topo, Box::new(GreedyFirstFit)).unwrap();
        let g = sg();
        let m = orch.embed_chain(&g, &g.chains[0]).unwrap();
        assert!(m.hop_count() >= 2);
        assert_eq!(m.container_of("fw"), Some("c0"));
        assert!(m.container_of("ghost").is_none());
    }
}
