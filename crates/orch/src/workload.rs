//! Seeded random service-graph generators for the mapping experiments.

use escape_catalog::Catalog;
use escape_sg::topo::TopoNodeKind;
use escape_sg::{ResourceTopology, ServiceGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a random chain workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of chains to request.
    pub chains: usize,
    /// VNFs per chain, inclusive range.
    pub vnfs_per_chain: (usize, usize),
    /// CPU demand per VNF, inclusive range.
    pub cpu: (f64, f64),
    /// Bandwidth per chain (Mbit/s), inclusive range.
    pub bandwidth_mbps: (f64, f64),
    /// Delay budget (µs), or `None` for best-effort chains.
    pub max_delay_us: Option<u64>,
    /// RNG seed (runs are reproducible per seed).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            chains: 10,
            vnfs_per_chain: (1, 3),
            cpu: (0.25, 1.0),
            bandwidth_mbps: (10.0, 100.0),
            max_delay_us: None,
            seed: 1,
        }
    }
}

/// Why a workload could not be generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The topology exposes fewer than two SAPs, so no chain can have
    /// distinct endpoints.
    NotEnoughSaps {
        /// SAPs actually present in the topology.
        found: usize,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::NotEnoughSaps { found } => write!(
                f,
                "topology has {found} SAP(s); random workloads need at least two"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Generates a random service graph over the topology's SAPs, drawing
/// VNF types from the catalog. Fails with [`WorkloadError::NotEnoughSaps`]
/// when the topology has fewer than two SAPs.
pub fn random_service_graph(
    topo: &ResourceTopology,
    spec: &WorkloadSpec,
) -> Result<ServiceGraph, WorkloadError> {
    let saps: Vec<&str> = topo
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, TopoNodeKind::Sap))
        .map(|n| n.name.as_str())
        .collect();
    if saps.len() < 2 {
        return Err(WorkloadError::NotEnoughSaps { found: saps.len() });
    }
    let catalog = Catalog::standard();
    // Exclude the 3-port load balancer: chains are linear.
    let types: Vec<&str> = catalog
        .names()
        .into_iter()
        .filter(|n| catalog.get(n).unwrap().ports == 2)
        .collect();
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut g = ServiceGraph::new();
    for s in &saps {
        g.saps.push(s.to_string());
    }
    for ci in 0..spec.chains {
        let src = saps[rng.gen_range(0..saps.len())];
        let dst = loop {
            let d = saps[rng.gen_range(0..saps.len())];
            if d != src {
                break d;
            }
        };
        let n_vnfs = rng.gen_range(spec.vnfs_per_chain.0..=spec.vnfs_per_chain.1);
        let mut hops = vec![src.to_string()];
        for vi in 0..n_vnfs {
            let name = format!("vnf_{ci}_{vi}");
            let ty = types[rng.gen_range(0..types.len())];
            let cpu = rng.gen_range(spec.cpu.0..=spec.cpu.1);
            g.vnfs.push(escape_sg::VnfReq {
                name: name.clone(),
                vnf_type: ty.to_string(),
                cpu: (cpu * 100.0).round() / 100.0,
                mem_mb: 64,
                params: Vec::new(),
                click_config: None,
            });
            hops.push(name);
        }
        hops.push(dst.to_string());
        g.chains.push(escape_sg::Chain {
            name: format!("chain_{ci}"),
            hops,
            bandwidth_mbps: (rng.gen_range(spec.bandwidth_mbps.0..=spec.bandwidth_mbps.1) * 10.0)
                .round()
                / 10.0,
            max_delay_us: spec.max_delay_us,
            sla: None,
        });
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::GreedyFirstFit;
    use crate::engine::Orchestrator;
    use escape_sg::topo::builders;

    #[test]
    fn generated_graphs_validate() {
        let topo = builders::star(6, 4.0);
        for seed in 0..5 {
            let g = random_service_graph(
                &topo,
                &WorkloadSpec {
                    seed,
                    ..Default::default()
                },
            )
            .unwrap();
            g.validate().unwrap();
            assert_eq!(g.chains.len(), 10);
        }
    }

    #[test]
    fn same_seed_same_graph() {
        let topo = builders::star(4, 2.0);
        let spec = WorkloadSpec {
            seed: 99,
            ..Default::default()
        };
        assert_eq!(
            random_service_graph(&topo, &spec).unwrap(),
            random_service_graph(&topo, &spec).unwrap()
        );
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let topo = builders::star(4, 2.0);
        let a = random_service_graph(
            &topo,
            &WorkloadSpec {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = random_service_graph(
            &topo,
            &WorkloadSpec {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, b, "seed must drive generation");
    }

    #[test]
    fn too_few_saps_is_a_typed_error() {
        // A 1-switch "topology" with no SAPs at all.
        let mut topo = escape_sg::ResourceTopology::new();
        topo.add_switch("s0");
        let err = random_service_graph(&topo, &WorkloadSpec::default()).unwrap_err();
        assert_eq!(err, WorkloadError::NotEnoughSaps { found: 0 });
        assert!(err.to_string().contains("at least two"));
    }

    #[test]
    fn workloads_are_mappable_on_big_topologies() {
        let topo = builders::tree(3, 16.0);
        let g = random_service_graph(
            &topo,
            &WorkloadSpec {
                chains: 5,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut orch = Orchestrator::new(topo, Box::new(GreedyFirstFit)).unwrap();
        let (ok, rejected) = orch.embed_graph(&g);
        assert_eq!(ok.len() + rejected.len(), 5);
        assert!(!ok.is_empty(), "at least some chains embed");
    }

    #[test]
    fn vnf_types_come_from_catalog() {
        let topo = builders::star(4, 2.0);
        let g = random_service_graph(&topo, &WorkloadSpec::default()).unwrap();
        let catalog = Catalog::standard();
        for v in &g.vnfs {
            assert!(
                catalog.get(&v.vnf_type).is_some(),
                "unknown type {}",
                v.vnf_type
            );
            assert_eq!(catalog.get(&v.vnf_type).unwrap().ports, 2);
        }
    }
}
