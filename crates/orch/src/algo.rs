//! Mapping algorithms: from abstract chain to placement + route.

use crate::engine::{route_chain, ChainMapping};
use crate::state::ResourceState;
use escape_sg::{Chain, ResourceTopology, ServiceGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Why a chain could not be mapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// No container can host this VNF's demand.
    NoCapacity(String),
    /// No path with enough residual bandwidth.
    NoPath { from: String, to: String },
    /// Delay budget exceeded by the best found embedding.
    DelayExceeded { got: u64, budget: u64 },
    /// A referenced node does not exist.
    UnknownNode(String),
    /// Commit-time or structural failure.
    Infeasible(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::NoCapacity(v) => write!(f, "no capacity for VNF {v:?}"),
            MapError::NoPath { from, to } => write!(f, "no feasible path {from} -> {to}"),
            MapError::DelayExceeded { got, budget } => {
                write!(f, "delay {got}µs exceeds budget {budget}µs")
            }
            MapError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            MapError::Infeasible(m) => write!(f, "infeasible: {m}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A chain-mapping algorithm. Implementations are pure with respect to
/// the passed state: they never mutate it (the engine commits).
pub trait MappingAlgorithm: Send {
    fn name(&self) -> &'static str;

    /// Maps one chain, returning the placement and routed segments.
    fn map_chain(
        &mut self,
        topo: &ResourceTopology,
        sg: &ServiceGraph,
        chain: &Chain,
        state: &ResourceState,
    ) -> Result<ChainMapping, MapError>;
}

/// VNF hops of a chain (the middle of the hop list), with their demands.
fn chain_vnfs<'a>(
    sg: &'a ServiceGraph,
    chain: &'a Chain,
) -> Result<Vec<(&'a str, f64, u64)>, MapError> {
    let mut v = Vec::new();
    if chain.hops.len() >= 2 {
        for h in &chain.hops[1..chain.hops.len() - 1] {
            let req = sg
                .vnf_named(h)
                .ok_or_else(|| MapError::UnknownNode(h.clone()))?;
            v.push((h.as_str(), req.cpu, req.mem_mb));
        }
    }
    Ok(v)
}

/// Builds the final mapping from a placement, routing it and checking
/// the budget.
fn finish(
    topo: &ResourceTopology,
    chain: &Chain,
    placement: Vec<(String, String)>,
    state: &ResourceState,
) -> Result<ChainMapping, MapError> {
    let by_vnf: HashMap<&str, &str> = placement
        .iter()
        .map(|(v, c)| (v.as_str(), c.as_str()))
        .collect();
    let locate = |hop: &str| -> Option<String> {
        match by_vnf.get(hop) {
            Some(c) => Some(c.to_string()),
            None => topo.node(hop).map(|n| n.name.clone()),
        }
    };
    let (segments, total) = route_chain(topo, chain, &locate, state)?;
    Ok(ChainMapping {
        chain: chain.clone(),
        placement,
        segments,
        total_delay_us: total,
    })
}

/// First-fit: walk containers in name order, take the first that fits.
/// The paper-era default: fast, oblivious to locality.
pub struct GreedyFirstFit;

impl MappingAlgorithm for GreedyFirstFit {
    fn name(&self) -> &'static str {
        "greedy_first_fit"
    }

    fn map_chain(
        &mut self,
        topo: &ResourceTopology,
        sg: &ServiceGraph,
        chain: &Chain,
        state: &ResourceState,
    ) -> Result<ChainMapping, MapError> {
        let mut scratch = state.clone();
        let mut placement = Vec::new();
        for (vnf, cpu, mem) in chain_vnfs(sg, chain)? {
            let host = scratch
                .containers_sorted()
                .into_iter()
                .find(|c| scratch.fits(c, cpu, mem))
                .ok_or_else(|| MapError::NoCapacity(vnf.to_string()))?;
            scratch
                .reserve_compute(&host, cpu, mem)
                .expect("fits was checked");
            placement.push((vnf.to_string(), host));
        }
        finish(topo, chain, placement, state)
    }
}

/// Best-fit on CPU: take the fitting container with the least residual
/// CPU (classic bin-packing best-fit, consolidates load).
pub struct BestFitCpu;

impl MappingAlgorithm for BestFitCpu {
    fn name(&self) -> &'static str {
        "best_fit_cpu"
    }

    fn map_chain(
        &mut self,
        topo: &ResourceTopology,
        sg: &ServiceGraph,
        chain: &Chain,
        state: &ResourceState,
    ) -> Result<ChainMapping, MapError> {
        let mut scratch = state.clone();
        let mut placement = Vec::new();
        for (vnf, cpu, mem) in chain_vnfs(sg, chain)? {
            let host = scratch
                .containers_sorted()
                .into_iter()
                .filter(|c| scratch.fits(c, cpu, mem))
                .min_by(|a, b| {
                    scratch
                        .cpu_of(a)
                        .partial_cmp(&scratch.cpu_of(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .ok_or_else(|| MapError::NoCapacity(vnf.to_string()))?;
            scratch
                .reserve_compute(&host, cpu, mem)
                .expect("fits was checked");
            placement.push((vnf.to_string(), host));
        }
        finish(topo, chain, placement, state)
    }
}

/// Nearest-neighbor chain embedding: walk the chain, placing each VNF on
/// the fitting container closest (by residual-capacity shortest path) to
/// the previous hop's location — minimizes path stretch greedily.
pub struct NearestNeighbor;

impl MappingAlgorithm for NearestNeighbor {
    fn name(&self) -> &'static str {
        "nearest_neighbor"
    }

    fn map_chain(
        &mut self,
        topo: &ResourceTopology,
        sg: &ServiceGraph,
        chain: &Chain,
        state: &ResourceState,
    ) -> Result<ChainMapping, MapError> {
        let mut scratch = state.clone();
        let mut placement = Vec::new();
        let mut location = chain
            .hops
            .first()
            .cloned()
            .ok_or_else(|| MapError::Infeasible("empty chain".into()))?;
        for (vnf, cpu, mem) in chain_vnfs(sg, chain)? {
            let mut best: Option<(u64, String)> = None;
            for c in scratch.containers_sorted() {
                if !scratch.fits(&c, cpu, mem) {
                    continue;
                }
                let d = if c == location {
                    0
                } else {
                    match topo.shortest_path(&location, &c, chain.bandwidth_mbps, Some(&scratch.bw))
                    {
                        Some((_, d)) => d,
                        None => continue,
                    }
                };
                if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                    best = Some((d, c));
                }
            }
            let (_, host) = best.ok_or_else(|| MapError::NoCapacity(vnf.to_string()))?;
            scratch
                .reserve_compute(&host, cpu, mem)
                .expect("fits was checked");
            location = host.clone();
            placement.push((vnf.to_string(), host));
        }
        finish(topo, chain, placement, state)
    }
}

/// Exhaustive search over container assignments, minimizing total chain
/// delay — optimal, exponential; the baseline the heuristics are judged
/// against on small instances. `node_budget` caps explored assignments.
pub struct Backtracking {
    pub node_budget: u64,
}

impl Default for Backtracking {
    fn default() -> Self {
        Backtracking {
            node_budget: 200_000,
        }
    }
}

impl MappingAlgorithm for Backtracking {
    fn name(&self) -> &'static str {
        "backtracking"
    }

    fn map_chain(
        &mut self,
        topo: &ResourceTopology,
        sg: &ServiceGraph,
        chain: &Chain,
        state: &ResourceState,
    ) -> Result<ChainMapping, MapError> {
        let vnfs = chain_vnfs(sg, chain)?;
        let containers = state.containers_sorted();
        let mut best: Option<ChainMapping> = None;
        let mut budget = self.node_budget;
        let mut stack: Vec<(String, String)> = Vec::new();

        #[allow(clippy::too_many_arguments)]
        fn recurse(
            topo: &ResourceTopology,
            chain: &Chain,
            state: &ResourceState,
            scratch: &mut ResourceState,
            vnfs: &[(&str, f64, u64)],
            containers: &[String],
            stack: &mut Vec<(String, String)>,
            best: &mut Option<ChainMapping>,
            budget: &mut u64,
        ) {
            if *budget == 0 {
                return;
            }
            *budget -= 1;
            if stack.len() == vnfs.len() {
                if let Ok(m) = finish(topo, chain, stack.clone(), state) {
                    if best
                        .as_ref()
                        .is_none_or(|b| m.total_delay_us < b.total_delay_us)
                    {
                        *best = Some(m);
                    }
                }
                return;
            }
            let (vnf, cpu, mem) = vnfs[stack.len()];
            for c in containers {
                if !scratch.fits(c, cpu, mem) {
                    continue;
                }
                scratch
                    .reserve_compute(c, cpu, mem)
                    .expect("fits was checked");
                stack.push((vnf.to_string(), c.clone()));
                recurse(
                    topo, chain, state, scratch, vnfs, containers, stack, best, budget,
                );
                stack.pop();
                scratch.release_compute(c, cpu, mem);
            }
        }

        let mut scratch = state.clone();
        recurse(
            topo,
            chain,
            state,
            &mut scratch,
            &vnfs,
            &containers,
            &mut stack,
            &mut best,
            &mut budget,
        );
        best.ok_or_else(|| {
            // Distinguish "nothing fits" from "fits but violates budget".
            if vnfs
                .iter()
                .any(|(_, cpu, mem)| !containers.iter().any(|c| state.fits(c, *cpu, *mem)))
            {
                MapError::NoCapacity(chain.name.clone())
            } else {
                MapError::Infeasible(format!("no feasible embedding for chain {:?}", chain.name))
            }
        })
    }
}

/// Simulated annealing over placements, minimizing total delay. Starts
/// from first-fit, proposes single-VNF relocations, accepts worse moves
/// with a temperature-decayed probability. Deterministic per seed.
pub struct SimulatedAnnealing {
    pub iterations: u32,
    pub seed: u64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 500,
            seed: 42,
        }
    }
}

impl MappingAlgorithm for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated_annealing"
    }

    fn map_chain(
        &mut self,
        topo: &ResourceTopology,
        sg: &ServiceGraph,
        chain: &Chain,
        state: &ResourceState,
    ) -> Result<ChainMapping, MapError> {
        let vnfs = chain_vnfs(sg, chain)?;
        let mut current = GreedyFirstFit.map_chain(topo, sg, chain, state)?;
        if vnfs.is_empty() {
            return Ok(current);
        }
        let containers = state.containers_sorted();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut best = current.clone();
        for it in 0..self.iterations {
            let temp = 1.0 - (it as f64 / self.iterations as f64);
            // Propose: move one VNF to a random other container.
            let k = rng.gen_range(0..current.placement.len());
            let new_host = containers[rng.gen_range(0..containers.len())].clone();
            if current.placement[k].1 == new_host {
                continue;
            }
            let mut proposal = current.placement.clone();
            proposal[k].1 = new_host;
            // Feasibility: aggregate demands per container must fit.
            let mut scratch = state.clone();
            let mut feasible = true;
            for ((vnf, host), (_, cpu, mem)) in proposal.iter().zip(&vnfs) {
                debug_assert_eq!(
                    vnf,
                    vnfs[proposal.iter().position(|(v, _)| v == vnf).unwrap()].0
                );
                if scratch.reserve_compute(host, *cpu, *mem).is_err() {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                continue;
            }
            let Ok(candidate) = finish(topo, chain, proposal, state) else {
                continue;
            };
            let delta = candidate.total_delay_us as f64 - current.total_delay_us as f64;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / (1.0 + 5_000.0 * temp)).exp();
            if accept {
                current = candidate;
                if current.total_delay_us < best.total_delay_us {
                    best = current.clone();
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_sg::topo::builders;
    use escape_sg::ServiceGraph;

    fn two_vnf_sg() -> ServiceGraph {
        ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("a", "monitor", 1.0, 64)
            .vnf("b", "monitor", 1.0, 64)
            .chain("c", &["sap0", "a", "b", "sap1"], 10.0, None)
    }

    fn run(algo: &mut dyn MappingAlgorithm, topo: &ResourceTopology) -> ChainMapping {
        let sg = two_vnf_sg();
        let state = ResourceState::from_topology(topo);
        algo.map_chain(topo, &sg, &sg.chains[0], &state).unwrap()
    }

    #[test]
    fn all_algorithms_find_a_feasible_mapping() {
        let topo = builders::linear(4, 2.0);
        let algos: Vec<Box<dyn MappingAlgorithm>> = vec![
            Box::new(GreedyFirstFit),
            Box::new(BestFitCpu),
            Box::new(NearestNeighbor),
            Box::new(Backtracking::default()),
            Box::new(SimulatedAnnealing::default()),
        ];
        for mut a in algos {
            let m = run(a.as_mut(), &topo);
            assert_eq!(m.placement.len(), 2, "{}", a.name());
            assert_eq!(m.segments.len(), 3);
            assert!(m.total_delay_us > 0);
        }
    }

    #[test]
    fn map_error_display_strings() {
        let cases: Vec<(MapError, &str)> = vec![
            (
                MapError::NoCapacity("f1".into()),
                "no capacity for VNF \"f1\"",
            ),
            (
                MapError::NoPath {
                    from: "sap0".into(),
                    to: "c2".into(),
                },
                "no feasible path sap0 -> c2",
            ),
            (
                MapError::DelayExceeded {
                    got: 900,
                    budget: 500,
                },
                "delay 900µs exceeds budget 500µs",
            ),
            (
                MapError::UnknownNode("ghost".into()),
                "unknown node \"ghost\"",
            ),
            (
                MapError::Infeasible("commit rejected".into()),
                "infeasible: commit rejected",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn backtracking_is_no_worse_than_greedy() {
        // Star topology: c0..c5 hang off separate edge switches; first-fit
        // picks c0 then c1 (far apart through the core), while the optimum
        // co-locates both VNFs.
        let topo = builders::star(6, 2.0);
        let sg = ServiceGraph::new()
            .sap("sap0")
            .sap("sap5")
            .vnf("a", "monitor", 1.0, 64)
            .vnf("b", "monitor", 1.0, 64)
            .chain("c", &["sap0", "a", "b", "sap5"], 10.0, None);
        let state = ResourceState::from_topology(&topo);
        let greedy = GreedyFirstFit
            .map_chain(&topo, &sg, &sg.chains[0], &state)
            .unwrap();
        let optimal = Backtracking::default()
            .map_chain(&topo, &sg, &sg.chains[0], &state)
            .unwrap();
        assert!(optimal.total_delay_us <= greedy.total_delay_us);
    }

    #[test]
    fn nearest_neighbor_beats_first_fit_on_star() {
        // sap3's own container c3 is the nearest host; first-fit blindly
        // takes c0.
        let topo = builders::star(6, 4.0);
        let sg = ServiceGraph::new()
            .sap("sap3")
            .sap("sap4")
            .vnf("v", "monitor", 1.0, 64)
            .chain("c", &["sap3", "v", "sap4"], 10.0, None);
        let state = ResourceState::from_topology(&topo);
        let nn = NearestNeighbor
            .map_chain(&topo, &sg, &sg.chains[0], &state)
            .unwrap();
        let ff = GreedyFirstFit
            .map_chain(&topo, &sg, &sg.chains[0], &state)
            .unwrap();
        assert!(nn.total_delay_us <= ff.total_delay_us);
        assert_eq!(nn.container_of("v"), Some("c3"));
    }

    #[test]
    fn best_fit_consolidates() {
        // c0 has little CPU left (small), c1 is big: best-fit picks the
        // tighter c0 for a small VNF.
        let mut topo = builders::linear(2, 4.0);
        // Shrink c0 to 1 CPU.
        for n in &mut topo.nodes {
            if n.name == "c0" {
                n.kind = escape_sg::TopoNodeKind::Container {
                    cpu: 1.0,
                    mem_mb: 2048,
                };
            }
        }
        let sg = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("small", "monitor", 0.5, 64)
            .chain("c", &["sap0", "small", "sap1"], 10.0, None);
        let state = ResourceState::from_topology(&topo);
        let m = BestFitCpu
            .map_chain(&topo, &sg, &sg.chains[0], &state)
            .unwrap();
        assert_eq!(m.container_of("small"), Some("c0"));
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let topo = builders::star(8, 2.0);
        let sg = two_vnf_sg();
        let state = ResourceState::from_topology(&topo);
        let m1 = SimulatedAnnealing {
            iterations: 300,
            seed: 7,
        }
        .map_chain(&topo, &sg, &sg.chains[0], &state)
        .unwrap();
        let m2 = SimulatedAnnealing {
            iterations: 300,
            seed: 7,
        }
        .map_chain(&topo, &sg, &sg.chains[0], &state)
        .unwrap();
        assert_eq!(m1.placement, m2.placement);
        assert_eq!(m1.total_delay_us, m2.total_delay_us);
    }

    #[test]
    fn no_capacity_error_names_the_vnf() {
        let topo = builders::linear(2, 0.5);
        let sg = two_vnf_sg(); // wants 1.0 CPU per VNF
        let state = ResourceState::from_topology(&topo);
        for mut a in [
            Box::new(GreedyFirstFit) as Box<dyn MappingAlgorithm>,
            Box::new(BestFitCpu),
            Box::new(NearestNeighbor),
        ] {
            let e = a.map_chain(&topo, &sg, &sg.chains[0], &state).unwrap_err();
            assert!(matches!(e, MapError::NoCapacity(_)), "{}: {e}", a.name());
        }
        let e = Backtracking::default()
            .map_chain(&topo, &sg, &sg.chains[0], &state)
            .unwrap_err();
        assert!(matches!(e, MapError::NoCapacity(_)));
    }

    #[test]
    fn direct_sap_chain_maps_with_no_placement() {
        let topo = builders::linear(2, 1.0);
        let sg = ServiceGraph::new().sap("sap0").sap("sap1").chain(
            "direct",
            &["sap0", "sap1"],
            10.0,
            None,
        );
        let state = ResourceState::from_topology(&topo);
        let m = GreedyFirstFit
            .map_chain(&topo, &sg, &sg.chains[0], &state)
            .unwrap();
        assert!(m.placement.is_empty());
        assert_eq!(m.segments.len(), 1);
    }

    #[test]
    fn map_error_display() {
        assert!(MapError::NoCapacity("x".into()).to_string().contains("x"));
        assert!(MapError::NoPath {
            from: "a".into(),
            to: "b".into()
        }
        .to_string()
        .contains("a"));
        assert!(MapError::DelayExceeded { got: 10, budget: 5 }
            .to_string()
            .contains("10"));
    }
}
