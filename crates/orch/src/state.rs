//! Residual resource tracking.

use escape_sg::topo::{link_key, TopoNodeKind};
use escape_sg::ResourceTopology;
use std::collections::HashMap;

/// Residual CPU per container and bandwidth per link. The orchestrator's
/// "global network and resource view".
#[derive(Debug, Clone, Default)]
pub struct ResourceState {
    /// Residual CPU cores per container.
    pub cpu: HashMap<String, f64>,
    /// Residual memory MB per container.
    pub mem: HashMap<String, u64>,
    /// Residual bandwidth (Mbit/s) per canonical link key.
    pub bw: HashMap<(String, String), f64>,
    /// Residuals stashed away for failed containers: while a container is
    /// in here its live cpu/mem read zero, and releases route into the
    /// stash so recovery restores an exact view.
    failed_compute: HashMap<String, (f64, u64)>,
    /// Same for failed links (stashed residual bandwidth).
    failed_links: HashMap<(String, String), f64>,
}

impl ResourceState {
    /// Full capacities from a topology.
    pub fn from_topology(topo: &ResourceTopology) -> ResourceState {
        let mut s = ResourceState::default();
        for n in &topo.nodes {
            if let TopoNodeKind::Container { cpu, mem_mb } = n.kind {
                s.cpu.insert(n.name.clone(), cpu);
                s.mem.insert(n.name.clone(), mem_mb);
            }
        }
        for l in &topo.links {
            // Parallel links accumulate.
            *s.bw.entry(link_key(&l.a, &l.b)).or_insert(0.0) += l.bandwidth_mbps;
        }
        s
    }

    /// Residual CPU of a container (0 if unknown).
    pub fn cpu_of(&self, container: &str) -> f64 {
        self.cpu.get(container).copied().unwrap_or(0.0)
    }

    /// Residual bandwidth of a link (0 if unknown).
    pub fn bw_of(&self, a: &str, b: &str) -> f64 {
        self.bw.get(&link_key(a, b)).copied().unwrap_or(0.0)
    }

    /// True if `container` can host a (cpu, mem) demand. Failed
    /// containers never fit.
    pub fn fits(&self, container: &str, cpu: f64, mem_mb: u64) -> bool {
        !self.failed_compute.contains_key(container)
            && self.cpu_of(container) >= cpu
            && self.mem.get(container).copied().unwrap_or(0) >= mem_mb
    }

    // ------------- failure marking ----------------------------------

    /// Marks a container failed: its residual cpu/mem is stashed and
    /// reads zero, so no algorithm places onto it and no release leaks
    /// capacity back. Returns false if unknown or already failed.
    pub fn fail_container(&mut self, container: &str) -> bool {
        if self.failed_compute.contains_key(container) {
            return false;
        }
        let (Some(c), Some(m)) = (self.cpu.get_mut(container), self.mem.get_mut(container)) else {
            return false;
        };
        self.failed_compute.insert(container.to_string(), (*c, *m));
        *c = 0.0;
        *m = 0;
        true
    }

    /// Restores a failed container's stashed residuals.
    pub fn recover_container(&mut self, container: &str) -> bool {
        let Some((c, m)) = self.failed_compute.remove(container) else {
            return false;
        };
        *self.cpu.get_mut(container).expect("known container") += c;
        *self.mem.get_mut(container).expect("known container") += m;
        true
    }

    /// True if the container is currently marked failed.
    pub fn container_failed(&self, container: &str) -> bool {
        self.failed_compute.contains_key(container)
    }

    /// Marks a link failed: its residual bandwidth is stashed and reads
    /// zero, so path search and reservation route around it.
    pub fn fail_link(&mut self, a: &str, b: &str) -> bool {
        let key = link_key(a, b);
        if self.failed_links.contains_key(&key) {
            return false;
        }
        let Some(bw) = self.bw.get_mut(&key) else {
            return false;
        };
        let stashed = *bw;
        *bw = 0.0;
        self.failed_links.insert(key, stashed);
        true
    }

    /// Restores a failed link's stashed residual bandwidth.
    pub fn recover_link(&mut self, a: &str, b: &str) -> bool {
        let key = link_key(a, b);
        let Some(stashed) = self.failed_links.remove(&key) else {
            return false;
        };
        *self.bw.get_mut(&key).expect("known link") += stashed;
        true
    }

    /// True if the link is currently marked failed.
    pub fn link_failed(&self, a: &str, b: &str) -> bool {
        self.failed_links.contains_key(&link_key(a, b))
    }

    /// Reserves compute on a container. Fails without mutating if it
    /// doesn't fit.
    pub fn reserve_compute(
        &mut self,
        container: &str,
        cpu: f64,
        mem_mb: u64,
    ) -> Result<(), String> {
        if !self.fits(container, cpu, mem_mb) {
            return Err(format!(
                "container {container:?} cannot fit cpu={cpu} mem={mem_mb}"
            ));
        }
        *self.cpu.get_mut(container).unwrap() -= cpu;
        *self.mem.get_mut(container).unwrap() -= mem_mb;
        Ok(())
    }

    /// Releases compute. Releases onto a failed container land in its
    /// stash, keeping the live view at zero until recovery.
    pub fn release_compute(&mut self, container: &str, cpu: f64, mem_mb: u64) {
        if let Some((c, m)) = self.failed_compute.get_mut(container) {
            *c += cpu;
            *m += mem_mb;
            return;
        }
        if let Some(c) = self.cpu.get_mut(container) {
            *c += cpu;
        }
        if let Some(m) = self.mem.get_mut(container) {
            *m += mem_mb;
        }
    }

    /// Reserves bandwidth along a node path (consecutive pairs). Fails
    /// without partial effects if any hop lacks capacity.
    pub fn reserve_path(&mut self, path: &[String], mbps: f64) -> Result<(), String> {
        for w in path.windows(2) {
            if self.bw_of(&w[0], &w[1]) < mbps {
                return Err(format!("link {}-{} lacks {mbps} Mbit/s", w[0], w[1]));
            }
        }
        for w in path.windows(2) {
            *self.bw.get_mut(&link_key(&w[0], &w[1])).unwrap() -= mbps;
        }
        Ok(())
    }

    /// Releases bandwidth along a path. Releases onto a failed link land
    /// in its stash.
    pub fn release_path(&mut self, path: &[String], mbps: f64) {
        for w in path.windows(2) {
            let key = link_key(&w[0], &w[1]);
            if let Some(stash) = self.failed_links.get_mut(&key) {
                *stash += mbps;
            } else if let Some(b) = self.bw.get_mut(&key) {
                *b += mbps;
            }
        }
    }

    // ------------- conservation accessors ---------------------------

    /// Free CPU of a container *including* any failure stash: the value
    /// conservation audits compare against topology capacity, invariant
    /// under fail/recover cycles.
    pub fn effective_cpu_of(&self, container: &str) -> f64 {
        self.cpu_of(container) + self.failed_compute.get(container).map_or(0.0, |(c, _)| *c)
    }

    /// Free memory of a container including any failure stash.
    pub fn effective_mem_of(&self, container: &str) -> u64 {
        self.mem.get(container).copied().unwrap_or(0)
            + self.failed_compute.get(container).map_or(0, |(_, m)| *m)
    }

    /// Free bandwidth of a link including any failure stash.
    pub fn effective_bw_of(&self, a: &str, b: &str) -> f64 {
        self.bw_of(a, b)
            + self
                .failed_links
                .get(&link_key(a, b))
                .copied()
                .unwrap_or(0.0)
    }

    /// Containers sorted by name (deterministic iteration for the
    /// algorithms).
    pub fn containers_sorted(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cpu.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Total CPU still free.
    pub fn total_free_cpu(&self) -> f64 {
        self.cpu.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_sg::topo::builders;

    #[test]
    fn capacities_come_from_topology() {
        let t = builders::linear(3, 4.0);
        let s = ResourceState::from_topology(&t);
        assert_eq!(s.cpu_of("c0"), 4.0);
        assert_eq!(s.bw_of("s0", "s1"), 1000.0);
        assert_eq!(s.bw_of("s1", "s0"), 1000.0, "canonical key is symmetric");
        assert_eq!(s.cpu_of("ghost"), 0.0);
    }

    #[test]
    fn reserve_and_release_compute() {
        let t = builders::linear(2, 2.0);
        let mut s = ResourceState::from_topology(&t);
        s.reserve_compute("c0", 1.5, 100).unwrap();
        assert!((s.cpu_of("c0") - 0.5).abs() < 1e-9);
        assert!(s.reserve_compute("c0", 1.0, 0).is_err());
        s.release_compute("c0", 1.5, 100);
        assert_eq!(s.cpu_of("c0"), 2.0);
    }

    #[test]
    fn memory_is_enforced() {
        let t = builders::linear(2, 8.0);
        let mut s = ResourceState::from_topology(&t);
        assert!(s.reserve_compute("c0", 1.0, 10_000_000).is_err());
        assert!(s.fits("c0", 1.0, 2048));
        assert!(!s.fits("c0", 1.0, 2049));
    }

    #[test]
    fn path_reservation_is_atomic() {
        let t = builders::linear(3, 2.0);
        let mut s = ResourceState::from_topology(&t);
        let path: Vec<String> = ["sap0", "s0", "s1", "s2", "sap1"]
            .map(String::from)
            .to_vec();
        s.reserve_path(&path, 600.0).unwrap();
        assert_eq!(s.bw_of("s0", "s1"), 400.0);
        // Second reservation exceeds the s0-s1 residual: nothing changes.
        let before = s.bw.clone();
        assert!(s.reserve_path(&path, 500.0).is_err());
        assert_eq!(s.bw, before);
        s.release_path(&path, 600.0);
        assert_eq!(s.bw_of("s0", "s1"), 1000.0);
    }

    #[test]
    fn failed_container_is_unusable_until_recovery() {
        let t = builders::linear(2, 2.0);
        let mut s = ResourceState::from_topology(&t);
        s.reserve_compute("c0", 1.0, 100).unwrap();
        assert!(s.fail_container("c0"));
        assert!(!s.fail_container("c0"), "idempotent");
        assert!(s.container_failed("c0"));
        assert_eq!(s.cpu_of("c0"), 0.0);
        assert!(!s.fits("c0", 0.0, 0), "failed container never fits");
        // Releasing the dead placement must not resurrect capacity.
        s.release_compute("c0", 1.0, 100);
        assert_eq!(s.cpu_of("c0"), 0.0);
        // Recovery restores the exact pre-failure free view.
        assert!(s.recover_container("c0"));
        assert_eq!(s.cpu_of("c0"), 2.0);
        assert!(!s.recover_container("c0"));
        assert!(!s.fail_container("ghost"));
    }

    #[test]
    fn failed_link_blocks_and_restores_exactly() {
        let t = builders::linear(3, 2.0);
        let mut s = ResourceState::from_topology(&t);
        let path: Vec<String> = ["s0", "s1", "s2"].map(String::from).to_vec();
        s.reserve_path(&path, 300.0).unwrap();
        assert!(s.fail_link("s1", "s0"), "order-insensitive");
        assert!(s.link_failed("s0", "s1"));
        assert_eq!(s.bw_of("s0", "s1"), 0.0);
        assert!(s.reserve_path(&path, 1.0).is_err());
        // Release of the old path goes to the stash, not the live view.
        s.release_path(&path, 300.0);
        assert_eq!(s.bw_of("s0", "s1"), 0.0);
        assert_eq!(s.bw_of("s1", "s2"), 1000.0, "healthy links release live");
        assert!(s.recover_link("s0", "s1"));
        assert_eq!(s.bw_of("s0", "s1"), 1000.0);
        assert!(!s.link_failed("s0", "s1"));
    }

    #[test]
    fn effective_view_is_invariant_under_failure() {
        let t = builders::linear(3, 2.0);
        let mut s = ResourceState::from_topology(&t);
        s.reserve_compute("c0", 0.5, 128).unwrap();
        let path: Vec<String> = ["s0", "s1", "s2"].map(String::from).to_vec();
        s.reserve_path(&path, 200.0).unwrap();
        let (cpu0, mem0, bw0) = (
            s.effective_cpu_of("c0"),
            s.effective_mem_of("c0"),
            s.effective_bw_of("s0", "s1"),
        );
        s.fail_container("c0");
        s.fail_link("s0", "s1");
        assert_eq!(s.effective_cpu_of("c0"), cpu0);
        assert_eq!(s.effective_mem_of("c0"), mem0);
        assert_eq!(s.effective_bw_of("s0", "s1"), bw0);
        // Releases into the stash stay visible through the effective view.
        s.release_compute("c0", 0.5, 128);
        s.release_path(&path, 200.0);
        assert_eq!(s.effective_cpu_of("c0"), 2.0);
        assert_eq!(s.effective_bw_of("s0", "s1"), 1000.0);
    }

    #[test]
    fn containers_sorted_is_deterministic() {
        let t = builders::star(4, 1.0);
        let s = ResourceState::from_topology(&t);
        assert_eq!(s.containers_sorted(), vec!["c0", "c1", "c2", "c3"]);
        assert_eq!(s.total_free_cpu(), 4.0);
    }
}
