//! Residual resource tracking.

use escape_sg::topo::{link_key, TopoNodeKind};
use escape_sg::ResourceTopology;
use std::collections::HashMap;

/// Residual CPU per container and bandwidth per link. The orchestrator's
/// "global network and resource view".
#[derive(Debug, Clone, Default)]
pub struct ResourceState {
    /// Residual CPU cores per container.
    pub cpu: HashMap<String, f64>,
    /// Residual memory MB per container.
    pub mem: HashMap<String, u64>,
    /// Residual bandwidth (Mbit/s) per canonical link key.
    pub bw: HashMap<(String, String), f64>,
}

impl ResourceState {
    /// Full capacities from a topology.
    pub fn from_topology(topo: &ResourceTopology) -> ResourceState {
        let mut s = ResourceState::default();
        for n in &topo.nodes {
            if let TopoNodeKind::Container { cpu, mem_mb } = n.kind {
                s.cpu.insert(n.name.clone(), cpu);
                s.mem.insert(n.name.clone(), mem_mb);
            }
        }
        for l in &topo.links {
            // Parallel links accumulate.
            *s.bw.entry(link_key(&l.a, &l.b)).or_insert(0.0) += l.bandwidth_mbps;
        }
        s
    }

    /// Residual CPU of a container (0 if unknown).
    pub fn cpu_of(&self, container: &str) -> f64 {
        self.cpu.get(container).copied().unwrap_or(0.0)
    }

    /// Residual bandwidth of a link (0 if unknown).
    pub fn bw_of(&self, a: &str, b: &str) -> f64 {
        self.bw.get(&link_key(a, b)).copied().unwrap_or(0.0)
    }

    /// True if `container` can host a (cpu, mem) demand.
    pub fn fits(&self, container: &str, cpu: f64, mem_mb: u64) -> bool {
        self.cpu_of(container) >= cpu && self.mem.get(container).copied().unwrap_or(0) >= mem_mb
    }

    /// Reserves compute on a container. Fails without mutating if it
    /// doesn't fit.
    pub fn reserve_compute(
        &mut self,
        container: &str,
        cpu: f64,
        mem_mb: u64,
    ) -> Result<(), String> {
        if !self.fits(container, cpu, mem_mb) {
            return Err(format!(
                "container {container:?} cannot fit cpu={cpu} mem={mem_mb}"
            ));
        }
        *self.cpu.get_mut(container).unwrap() -= cpu;
        *self.mem.get_mut(container).unwrap() -= mem_mb;
        Ok(())
    }

    /// Releases compute.
    pub fn release_compute(&mut self, container: &str, cpu: f64, mem_mb: u64) {
        if let Some(c) = self.cpu.get_mut(container) {
            *c += cpu;
        }
        if let Some(m) = self.mem.get_mut(container) {
            *m += mem_mb;
        }
    }

    /// Reserves bandwidth along a node path (consecutive pairs). Fails
    /// without partial effects if any hop lacks capacity.
    pub fn reserve_path(&mut self, path: &[String], mbps: f64) -> Result<(), String> {
        for w in path.windows(2) {
            if self.bw_of(&w[0], &w[1]) < mbps {
                return Err(format!("link {}-{} lacks {mbps} Mbit/s", w[0], w[1]));
            }
        }
        for w in path.windows(2) {
            *self.bw.get_mut(&link_key(&w[0], &w[1])).unwrap() -= mbps;
        }
        Ok(())
    }

    /// Releases bandwidth along a path.
    pub fn release_path(&mut self, path: &[String], mbps: f64) {
        for w in path.windows(2) {
            if let Some(b) = self.bw.get_mut(&link_key(&w[0], &w[1])) {
                *b += mbps;
            }
        }
    }

    /// Containers sorted by name (deterministic iteration for the
    /// algorithms).
    pub fn containers_sorted(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cpu.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Total CPU still free.
    pub fn total_free_cpu(&self) -> f64 {
        self.cpu.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_sg::topo::builders;

    #[test]
    fn capacities_come_from_topology() {
        let t = builders::linear(3, 4.0);
        let s = ResourceState::from_topology(&t);
        assert_eq!(s.cpu_of("c0"), 4.0);
        assert_eq!(s.bw_of("s0", "s1"), 1000.0);
        assert_eq!(s.bw_of("s1", "s0"), 1000.0, "canonical key is symmetric");
        assert_eq!(s.cpu_of("ghost"), 0.0);
    }

    #[test]
    fn reserve_and_release_compute() {
        let t = builders::linear(2, 2.0);
        let mut s = ResourceState::from_topology(&t);
        s.reserve_compute("c0", 1.5, 100).unwrap();
        assert!((s.cpu_of("c0") - 0.5).abs() < 1e-9);
        assert!(s.reserve_compute("c0", 1.0, 0).is_err());
        s.release_compute("c0", 1.5, 100);
        assert_eq!(s.cpu_of("c0"), 2.0);
    }

    #[test]
    fn memory_is_enforced() {
        let t = builders::linear(2, 8.0);
        let mut s = ResourceState::from_topology(&t);
        assert!(s.reserve_compute("c0", 1.0, 10_000_000).is_err());
        assert!(s.fits("c0", 1.0, 2048));
        assert!(!s.fits("c0", 1.0, 2049));
    }

    #[test]
    fn path_reservation_is_atomic() {
        let t = builders::linear(3, 2.0);
        let mut s = ResourceState::from_topology(&t);
        let path: Vec<String> = ["sap0", "s0", "s1", "s2", "sap1"]
            .map(String::from)
            .to_vec();
        s.reserve_path(&path, 600.0).unwrap();
        assert_eq!(s.bw_of("s0", "s1"), 400.0);
        // Second reservation exceeds the s0-s1 residual: nothing changes.
        let before = s.bw.clone();
        assert!(s.reserve_path(&path, 500.0).is_err());
        assert_eq!(s.bw, before);
        s.release_path(&path, 600.0);
        assert_eq!(s.bw_of("s0", "s1"), 1000.0);
    }

    #[test]
    fn containers_sorted_is_deterministic() {
        let t = builders::star(4, 1.0);
        let s = ResourceState::from_topology(&t);
        assert_eq!(s.containers_sorted(), vec!["c0", "c1", "c2", "c3"]);
        assert_eq!(s.total_free_cpu(), 4.0);
    }
}
