//! Property tests for the orchestrator: every accepted mapping satisfies
//! the resource constraints; embed/release is lossless; algorithms are
//! deterministic.

use escape_orch::workload::{random_service_graph, WorkloadSpec};
use escape_orch::{
    BestFitCpu, GreedyFirstFit, MappingAlgorithm, NearestNeighbor, Orchestrator, ResourceState,
};
use escape_sg::topo::{builders, TopoNodeKind};
use proptest::prelude::*;

fn spec(seed: u64, chains: usize) -> WorkloadSpec {
    WorkloadSpec {
        chains,
        vnfs_per_chain: (1, 3),
        cpu: (0.25, 1.5),
        bandwidth_mbps: (10.0, 120.0),
        max_delay_us: None,
        seed,
    }
}

fn algo(which: u8) -> Box<dyn MappingAlgorithm> {
    match which % 3 {
        0 => Box::new(GreedyFirstFit),
        1 => Box::new(BestFitCpu),
        _ => Box::new(NearestNeighbor),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After embedding, no container is over-committed and no link's
    /// residual bandwidth is negative; accepted placements sum correctly.
    #[test]
    fn accepted_mappings_respect_capacity(
        seed in any::<u64>(),
        leaves in 3usize..10,
        chains in 1usize..12,
        which in any::<u8>(),
    ) {
        let topo = builders::star(leaves, 4.0);
        let sg = random_service_graph(&topo, &spec(seed, chains)).unwrap();
        let mut orch = Orchestrator::new(topo.clone(), algo(which)).unwrap();
        let (ok, rejected) = orch.embed_graph(&sg);
        prop_assert_eq!(ok.len() + rejected.len(), chains);

        // Residuals never negative.
        for (c, &cpu) in &orch.state().cpu {
            prop_assert!(cpu >= -1e-9, "container {c} over-committed: {cpu}");
        }
        for (l, &bw) in &orch.state().bw {
            prop_assert!(bw >= -1e-9, "link {l:?} over-committed: {bw}");
        }

        // Sum of accepted CPU equals capacity minus residual.
        let full = ResourceState::from_topology(&topo);
        let placed_cpu: f64 = ok
            .iter()
            .flat_map(|m| m.placement.iter())
            .map(|(v, _)| sg.vnf_named(v).unwrap().cpu)
            .sum();
        let used = full.total_free_cpu() - orch.state().total_free_cpu();
        prop_assert!((placed_cpu - used).abs() < 1e-6, "{placed_cpu} vs {used}");

        // Every accepted placement lands on a real container.
        for m in &ok {
            for (_, c) in &m.placement {
                let is_container = matches!(
                    topo.node(c).map(|n| &n.kind),
                    Some(TopoNodeKind::Container { .. })
                );
                prop_assert!(is_container, "placement on non-container");
            }
            // Segments connect consecutive hop locations.
            prop_assert_eq!(m.segments.len(), m.chain.hops.len() - 1);
        }
    }

    /// Releasing everything restores the pristine resource state.
    #[test]
    fn release_restores_state(
        seed in any::<u64>(),
        which in any::<u8>(),
    ) {
        let topo = builders::tree(2, 8.0);
        let sg = random_service_graph(&topo, &spec(seed, 6)).unwrap();
        let mut orch = Orchestrator::new(topo.clone(), algo(which)).unwrap();
        let pristine_cpu = orch.state().total_free_cpu();
        let pristine_bw: f64 = orch.state().bw.values().sum();
        let (ok, _) = orch.embed_graph(&sg);
        for m in &ok {
            orch.release_chain(&m.chain.name);
        }
        prop_assert!((orch.state().total_free_cpu() - pristine_cpu).abs() < 1e-6);
        let bw_now: f64 = orch.state().bw.values().sum();
        prop_assert!((bw_now - pristine_bw).abs() < 1e-3);
        prop_assert!(orch.embedded_chains().is_empty());
    }

    /// Algorithms are deterministic: same inputs, same outputs.
    #[test]
    fn algorithms_are_deterministic(seed in any::<u64>(), which in any::<u8>()) {
        let topo = builders::star(5, 4.0);
        let sg = random_service_graph(&topo, &spec(seed, 5)).unwrap();
        let run = || {
            let mut orch = Orchestrator::new(topo.clone(), algo(which)).unwrap();
            let (ok, rej) = orch.embed_graph(&sg);
            (
                ok.iter().map(|m| (m.chain.name.clone(), m.placement.clone(), m.total_delay_us)).collect::<Vec<_>>(),
                rej.len(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Delay budgets are honoured: an accepted chain's mapped delay never
    /// exceeds its budget.
    #[test]
    fn delay_budgets_hold(seed in any::<u64>(), budget_us in 100u64..5_000) {
        let topo = builders::star(6, 8.0);
        let mut w = spec(seed, 8);
        w.max_delay_us = Some(budget_us);
        let sg = random_service_graph(&topo, &w).unwrap();
        let mut orch = Orchestrator::new(topo, Box::new(NearestNeighbor)).unwrap();
        let (ok, _) = orch.embed_graph(&sg);
        for m in &ok {
            prop_assert!(m.total_delay_us <= budget_us, "{} > {}", m.total_delay_us, budget_us);
        }
    }
}
