//! The element class registry: maps Click class names to factories.

use crate::element::Element;
use crate::lang::ConfigError;
use std::collections::HashMap;

/// A factory building an element instance from its textual arguments.
pub type Factory = fn(&[String]) -> Result<Box<dyn Element>, String>;

/// Maps class names to element factories. [`Registry::standard`] contains
/// the built-in library; VNF developers register their own classes on top
/// (see the `custom_vnf` example in the workspace).
#[derive(Default)]
pub struct Registry {
    factories: HashMap<String, Factory>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The registry with every standard element installed.
    pub fn standard() -> Self {
        let mut r = Registry::new();
        crate::elements::install_standard(&mut r);
        r
    }

    /// Registers (or replaces) a class.
    pub fn register(&mut self, class: &str, factory: Factory) {
        self.factories.insert(class.to_string(), factory);
    }

    /// True if `class` is known.
    pub fn contains(&self, class: &str) -> bool {
        self.factories.contains_key(class)
    }

    /// Known class names, sorted (for error messages and docs).
    pub fn class_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.factories.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// Instantiates `class` with `args`; `line` contextualizes errors.
    pub fn build(
        &self,
        class: &str,
        args: &[String],
        line: usize,
    ) -> Result<Box<dyn Element>, ConfigError> {
        let f = self.factories.get(class).ok_or_else(|| ConfigError {
            line,
            message: format!("unknown element class '{class}'"),
        })?;
        f(args).map_err(|message| ConfigError {
            line,
            message: format!("{class}: {message}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElemCtx;
    use escape_packet::Packet;

    struct Dummy;
    impl Element for Dummy {
        fn class_name(&self) -> &'static str {
            "Dummy"
        }
        fn ports(&self) -> (usize, usize) {
            (1, 1)
        }
        fn push(&mut self, _ctx: &mut ElemCtx<'_>, _port: usize, _pkt: Packet) {}
    }

    fn dummy_factory(args: &[String]) -> Result<Box<dyn Element>, String> {
        if args.len() > 1 {
            return Err("too many arguments".into());
        }
        Ok(Box::new(Dummy))
    }

    #[test]
    fn register_and_build() {
        let mut r = Registry::new();
        assert!(!r.contains("Dummy"));
        r.register("Dummy", dummy_factory);
        assert!(r.contains("Dummy"));
        let e = r.build("Dummy", &[], 1).unwrap();
        assert_eq!(e.class_name(), "Dummy");
    }

    #[test]
    fn unknown_class_errors_with_line() {
        let r = Registry::new();
        let err = r.build("Nope", &[], 42).err().unwrap();
        assert_eq!(err.line, 42);
        assert!(err.message.contains("Nope"));
    }

    #[test]
    fn factory_errors_are_prefixed_with_class() {
        let mut r = Registry::new();
        r.register("Dummy", dummy_factory);
        let err = r
            .build("Dummy", &["a".into(), "b".into()], 3)
            .err()
            .unwrap();
        assert!(err.message.starts_with("Dummy:"));
    }

    #[test]
    fn standard_registry_is_well_stocked() {
        let r = Registry::standard();
        for class in [
            "FromDevice",
            "ToDevice",
            "Counter",
            "Queue",
            "Unqueue",
            "Discard",
            "Tee",
            "Classifier",
            "IPClassifier",
            "IPFilter",
        ] {
            assert!(r.contains(class), "missing standard element {class}");
        }
        assert!(r.class_names().len() >= 20);
    }
}
