//! The element model: Click's processing unit.

use crate::router::Router;
use escape_netem::Time;
use escape_packet::Packet;
use rand::Rng;
use std::any::Any;

/// Error from a handler invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandlerError {
    /// No such handler on this element.
    NoSuchHandler(String),
    /// The handler exists but rejected the value.
    BadValue(String),
}

impl std::fmt::Display for HandlerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandlerError::NoSuchHandler(h) => write!(f, "no such handler: {h}"),
            HandlerError::BadValue(v) => write!(f, "bad handler value: {v}"),
        }
    }
}

impl std::error::Error for HandlerError {}

/// `Any` plumbing so routers can hand out typed element references.
pub trait AsAnyElement {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAnyElement for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A Click element: a packet-processing unit with numbered input and
/// output ports.
///
/// Push packets arrive via [`Element::push`]; the element forwards them
/// downstream with [`ElemCtx::emit`]. Pull outputs (e.g. `Queue`) hand out
/// packets when downstream calls [`ElemCtx::pull_from`] → [`Element::pull`].
/// Elements with time-driven behaviour (sources, shapers) report their next
/// wake-up through [`Element::next_wake`] and get [`Element::tick`] calls
/// from the router at that time.
pub trait Element: AsAnyElement + Send {
    /// The Click class name, e.g. `"Counter"`.
    fn class_name(&self) -> &'static str;

    /// (input port count, output port count).
    fn ports(&self) -> (usize, usize);

    /// Handles a packet pushed into `port`. Default: drop.
    fn push(&mut self, _ctx: &mut ElemCtx<'_>, _port: usize, _pkt: Packet) {}

    /// Supplies a packet from pull output `port`. Default: none.
    fn pull(&mut self, _ctx: &mut ElemCtx<'_>, _port: usize) -> Option<Packet> {
        None
    }

    /// Called when the element's scheduled wake time arrives.
    fn tick(&mut self, _ctx: &mut ElemCtx<'_>) {}

    /// Upstream notification: the element feeding this element's input
    /// `port` (typically a `Queue`) went from empty to non-empty. Pull
    /// schedulers use this to come out of dormancy — Click's "notifier"
    /// mechanism.
    fn notify(&mut self, _ctx: &mut ElemCtx<'_>, _port: usize) {}

    /// The next virtual time this element wants a [`Element::tick`], if any.
    fn next_wake(&self) -> Option<Time> {
        None
    }

    /// Reads a named handler, returning its textual value.
    fn read_handler(&self, _name: &str) -> Option<String> {
        None
    }

    /// Writes a named handler.
    fn write_handler(&mut self, name: &str, _value: &str) -> Result<(), HandlerError> {
        Err(HandlerError::NoSuchHandler(name.to_string()))
    }

    /// CPU nanoseconds this element charges per processed packet (fed to
    /// the container's cgroup model).
    fn cost_ns(&self) -> u64 {
        50
    }
}

/// Deferred work produced while an element runs.
pub(crate) enum Effect {
    /// Push `pkt` downstream from output `(from_elem, from_port)`.
    Downstream {
        from_elem: usize,
        from_port: usize,
        pkt: Packet,
    },
    /// Emit `pkt` out of the VNF on device `dev`.
    External { dev: u16, pkt: Packet },
    /// Wake whatever is connected downstream of `(from_elem, from_port)`.
    Notify { from_elem: usize, from_port: usize },
}

/// The capability surface an element sees while it runs.
///
/// While an element executes it is temporarily removed from the router, so
/// the ctx can hold the router mutably: emissions go to the router's
/// pending-effect queue, and pulls recurse into upstream elements.
pub struct ElemCtx<'a> {
    pub(crate) router: &'a mut Router,
    pub(crate) elem_idx: usize,
    pub(crate) depth: usize,
}

/// Maximum pull-chain length; deeper chains yield `None` (a config with a
/// pull cycle would otherwise hang).
pub(crate) const MAX_PULL_DEPTH: usize = 16;

impl ElemCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.router.now()
    }

    /// Pushes `pkt` out of this element's output `port`.
    pub fn emit(&mut self, port: usize, pkt: Packet) {
        self.router.pending.push_back(Effect::Downstream {
            from_elem: self.elem_idx,
            from_port: port,
            pkt,
        });
    }

    /// Sends `pkt` out of the VNF container on device `dev`. Normally only
    /// `ToDevice` calls this.
    pub fn emit_external(&mut self, dev: u16, pkt: Packet) {
        self.router.pending.push_back(Effect::External { dev, pkt });
    }

    /// Notifies the element connected downstream of this element's output
    /// `port` that data became available (see [`Element::notify`]).
    pub fn kick(&mut self, port: usize) {
        self.router.pending.push_back(Effect::Notify {
            from_elem: self.elem_idx,
            from_port: port,
        });
    }

    /// Pulls a packet from the upstream element connected to this
    /// element's input `port`.
    pub fn pull_from(&mut self, port: usize) -> Option<Packet> {
        if self.depth >= MAX_PULL_DEPTH {
            return None;
        }
        let (src, sport) = self.router.upstream_of(self.elem_idx, port)?;
        self.router.pull_at(src, sport, self.depth + 1)
    }

    /// A uniform random value in [0, 1) from the router's seeded RNG.
    pub fn random_f64(&mut self) -> f64 {
        self.router.rng.gen()
    }

    /// Charges extra CPU work beyond the element's static `cost_ns`.
    pub fn charge_work(&mut self, ns: u64) {
        self.router.work_acc += ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Element for Nop {
        fn class_name(&self) -> &'static str {
            "Nop"
        }
        fn ports(&self) -> (usize, usize) {
            (1, 1)
        }
    }

    #[test]
    fn default_trait_methods() {
        let mut n = Nop;
        assert_eq!(n.class_name(), "Nop");
        assert!(n.next_wake().is_none());
        assert!(n.read_handler("count").is_none());
        assert!(matches!(
            n.write_handler("reset", ""),
            Err(HandlerError::NoSuchHandler(_))
        ));
        assert_eq!(n.cost_ns(), 50);
    }

    #[test]
    fn handler_error_display() {
        assert!(HandlerError::NoSuchHandler("x".into())
            .to_string()
            .contains("x"));
        assert!(HandlerError::BadValue("y".into()).to_string().contains("y"));
    }
}
