//! Header surgery: strip/encap, sanity checks, TTL and DSCP rewriting.
//!
//! These elements operate on full Ethernet frames (ESCAPE VNF ports carry
//! Ethernet), decoding and re-encoding the affected layers so checksums
//! stay correct.

use super::args;
use crate::element::{ElemCtx, Element};
use crate::registry::Registry;
use escape_packet::{EtherType, EthernetFrame, Ipv4Packet, MacAddr, Packet};

pub fn install(r: &mut Registry) {
    r.register("Strip", |a| {
        args::max(a, 1)?;
        let n = args::req::<usize>(a, 0, "byte count")?;
        Ok(Box::new(Strip { n }))
    });
    r.register("EtherEncap", |a| {
        args::max(a, 3)?;
        let ethertype = a
            .first()
            .ok_or("missing ethertype")?
            .trim_start_matches("0x")
            .pipe_parse_hex()?;
        let src: MacAddr = a
            .get(1)
            .ok_or("missing source MAC")?
            .parse()
            .map_err(|_| "bad source MAC".to_string())?;
        let dst: MacAddr = a
            .get(2)
            .ok_or("missing destination MAC")?
            .parse()
            .map_err(|_| "bad destination MAC".to_string())?;
        Ok(Box::new(EtherEncap {
            ethertype,
            src,
            dst,
        }))
    });
    r.register("CheckIPHeader", |a| {
        args::max(a, 0)?;
        Ok(Box::new(CheckIpHeader { bad: 0 }))
    });
    r.register("DecIPTTL", |a| {
        args::max(a, 0)?;
        Ok(Box::new(DecIpTtl { expired: 0 }))
    });
    r.register("SetIPDSCP", |a| {
        args::max(a, 1)?;
        let dscp = args::req::<u8>(a, 0, "dscp value")?;
        if dscp > 63 {
            return Err("dscp must be 0..=63".into());
        }
        Ok(Box::new(SetIpDscp { dscp }))
    });
}

trait HexParse {
    fn pipe_parse_hex(&self) -> Result<u16, String>;
}

impl HexParse for str {
    fn pipe_parse_hex(&self) -> Result<u16, String> {
        u16::from_str_radix(self, 16).map_err(|_| format!("bad hex ethertype {self:?}"))
    }
}

/// Removes the first `n` bytes of the packet.
pub struct Strip {
    n: usize,
}

impl Element for Strip {
    fn class_name(&self) -> &'static str {
        "Strip"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, mut pkt: Packet) {
        if pkt.data.len() >= self.n {
            pkt.data = pkt.data.slice(self.n..);
            ctx.emit(0, pkt);
        }
        // Shorter packets are dropped (cannot strip).
    }
    fn cost_ns(&self) -> u64 {
        20
    }
}

/// Prepends a fresh Ethernet header.
pub struct EtherEncap {
    ethertype: u16,
    src: MacAddr,
    dst: MacAddr,
}

impl Element for EtherEncap {
    fn class_name(&self) -> &'static str {
        "EtherEncap"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, mut pkt: Packet) {
        let frame = EthernetFrame::new(
            self.dst,
            self.src,
            EtherType::from_u16(self.ethertype),
            pkt.data.clone(),
        );
        pkt.data = frame.encode();
        ctx.emit(0, pkt);
    }
    fn cost_ns(&self) -> u64 {
        45
    }
}

/// Validates the IPv4 layer of an Ethernet frame: bad frames (non-IP,
/// truncated, bad checksum) are dropped and counted.
pub struct CheckIpHeader {
    bad: u64,
}

impl Element for CheckIpHeader {
    fn class_name(&self) -> &'static str {
        "CheckIPHeader"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        let ok = EthernetFrame::decode(&pkt.data)
            .ok()
            .filter(|e| e.ethertype == EtherType::Ipv4)
            .map(|e| Ipv4Packet::decode(&e.payload).is_ok())
            .unwrap_or(false);
        if ok {
            ctx.emit(0, pkt);
        } else {
            self.bad += 1;
        }
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "drops" => Some(self.bad.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        70
    }
}

/// Decrements the IPv4 TTL, dropping expired packets.
pub struct DecIpTtl {
    expired: u64,
}

impl Element for DecIpTtl {
    fn class_name(&self) -> &'static str {
        "DecIPTTL"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, mut pkt: Packet) {
        let Ok(eth) = EthernetFrame::decode(&pkt.data) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            ctx.emit(0, pkt); // non-IP passes through untouched
            return;
        }
        let Ok(ip) = Ipv4Packet::decode(&eth.payload) else {
            return;
        };
        match ip.decrement_ttl() {
            Some(newip) => {
                let frame = EthernetFrame::new(eth.dst, eth.src, eth.ethertype, newip.encode());
                pkt.data = frame.encode();
                ctx.emit(0, pkt);
            }
            None => self.expired += 1,
        }
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "expired" => Some(self.expired.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        80
    }
}

/// Overwrites the IPv4 DSCP field (used by the QoS-marking catalog VNF).
pub struct SetIpDscp {
    dscp: u8,
}

impl Element for SetIpDscp {
    fn class_name(&self) -> &'static str {
        "SetIPDSCP"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, mut pkt: Packet) {
        let Ok(eth) = EthernetFrame::decode(&pkt.data) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            ctx.emit(0, pkt);
            return;
        }
        let Ok(mut ip) = Ipv4Packet::decode(&eth.payload) else {
            return;
        };
        ip.dscp = self.dscp;
        let frame = EthernetFrame::new(eth.dst, eth.src, eth.ethertype, ip.encode());
        pkt.data = frame.encode();
        ctx.emit(0, pkt);
    }
    fn cost_ns(&self) -> u64 {
        80
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::router::Router;
    use bytes::Bytes;
    use escape_netem::Time;
    use escape_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn udp_pkt() -> Packet {
        let data = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            Bytes::from_static(b"payload"),
        );
        Packet {
            data,
            id: 0,
            born_ns: 0,
        }
    }

    fn mk(cfg: &str) -> Router {
        Router::from_config(cfg, &Registry::standard(), 0).unwrap()
    }

    #[test]
    fn strip_then_encap_restores_a_valid_frame() {
        let mut r = mk(
            "FromDevice(0) -> Strip(14) -> EtherEncap(0800, 02:00:00:00:00:09, 02:00:00:00:00:0a) -> ToDevice(0);",
        );
        let out = r.push_external(0, udp_pkt(), Time::ZERO);
        assert_eq!(out.external.len(), 1);
        let eth = EthernetFrame::decode(&out.external[0].1.data).unwrap();
        assert_eq!(eth.src, MacAddr::from_id(9));
        assert_eq!(eth.dst, MacAddr::from_id(10));
        // IP layer is untouched and still valid.
        Ipv4Packet::decode(&eth.payload).unwrap();
    }

    #[test]
    fn check_ip_header_filters_garbage() {
        let mut r = mk("FromDevice(0) -> c :: CheckIPHeader -> ToDevice(0);");
        assert_eq!(r.push_external(0, udp_pkt(), Time::ZERO).external.len(), 1);
        let junk = Packet {
            data: Bytes::from(vec![0u8; 40]),
            id: 0,
            born_ns: 0,
        };
        assert_eq!(r.push_external(0, junk, Time::ZERO).external.len(), 0);
        assert_eq!(r.read_handler("c.drops").unwrap(), "1");
    }

    #[test]
    fn ttl_decrements_and_expires() {
        let mut r = mk("FromDevice(0) -> d :: DecIPTTL -> ToDevice(0);");
        let out = r.push_external(0, udp_pkt(), Time::ZERO);
        let eth = EthernetFrame::decode(&out.external[0].1.data).unwrap();
        let ip = Ipv4Packet::decode(&eth.payload).unwrap();
        assert_eq!(ip.ttl, 63);
        // A TTL-1 packet expires.
        let mut low = Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            escape_packet::IpProtocol::Udp,
            Bytes::new(),
        );
        low.ttl = 1;
        let frame = EthernetFrame::new(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            EtherType::Ipv4,
            low.encode(),
        )
        .encode();
        let out = r.push_external(
            0,
            Packet {
                data: frame,
                id: 0,
                born_ns: 0,
            },
            Time::ZERO,
        );
        assert!(out.external.is_empty());
        assert_eq!(r.read_handler("d.expired").unwrap(), "1");
    }

    #[test]
    fn dscp_is_rewritten_with_valid_checksum() {
        let mut r = mk("FromDevice(0) -> SetIPDSCP(46) -> ToDevice(0);");
        let out = r.push_external(0, udp_pkt(), Time::ZERO);
        let eth = EthernetFrame::decode(&out.external[0].1.data).unwrap();
        let ip = Ipv4Packet::decode(&eth.payload).unwrap(); // checksum verified inside
        assert_eq!(ip.dscp, 46);
    }

    #[test]
    fn non_ip_passes_through_ttl_and_dscp() {
        let mut r = mk("FromDevice(0) -> DecIPTTL -> SetIPDSCP(10) -> ToDevice(0);");
        let arp = PacketBuilder::arp_request(
            MacAddr::from_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let before = arp.clone();
        let out = r.push_external(
            0,
            Packet {
                data: arp,
                id: 0,
                born_ns: 0,
            },
            Time::ZERO,
        );
        assert_eq!(out.external[0].1.data, before);
    }

    #[test]
    fn factory_validation() {
        let reg = Registry::standard();
        assert!(Router::from_config("s :: SetIPDSCP(64);", &reg, 0).is_err());
        assert!(
            Router::from_config("e :: EtherEncap(zzzz, 0:0:0:0:0:1, 0:0:0:0:0:2);", &reg, 0)
                .is_err()
        );
        assert!(Router::from_config("e :: EtherEncap(0800);", &reg, 0).is_err());
    }
}
