//! Security VNF building blocks: the `IPFilter` firewall and the
//! `StringMatcher` DPI element.

use super::classify::IpExpr;
use crate::element::{ElemCtx, Element, HandlerError};
use crate::registry::Registry;
use escape_packet::{EtherType, EthernetFrame, FlowKey, IpProtocol, Ipv4Packet, Packet};

pub fn install(r: &mut Registry) {
    r.register("IPFilter", |a| {
        if a.is_empty() {
            return Err("needs at least one rule".into());
        }
        let rules = a
            .iter()
            .map(|r| FilterRule::parse(r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(IpFilter {
            rules,
            passed: 0,
            dropped: 0,
        }))
    });
    r.register("StringMatcher", |a| {
        let pat = a.first().ok_or("needs a pattern argument")?;
        let pat = pat.trim_matches('"').as_bytes().to_vec();
        if pat.is_empty() {
            return Err("pattern must be non-empty".into());
        }
        Ok(Box::new(StringMatcher {
            pattern: pat,
            matches: 0,
        }))
    });
}

/// One firewall rule: an action plus an [`IpExpr`] predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterRule {
    pub allow: bool,
    pub expr: IpExpr,
}

impl FilterRule {
    /// Parses `"allow <expr>"` or `"deny <expr>"` / `"drop <expr>"`.
    pub fn parse(s: &str) -> Result<FilterRule, String> {
        let s = s.trim();
        let (action, rest) = s
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("rule {s:?} must be 'allow/deny <expression>'"))?;
        let allow = match action {
            "allow" | "accept" | "pass" => true,
            "deny" | "drop" | "reject" => false,
            other => return Err(format!("unknown action {other:?}")),
        };
        Ok(FilterRule {
            allow,
            expr: IpExpr::parse(rest)?,
        })
    }
}

/// A stateless firewall: rules are evaluated in order, first match wins,
/// unmatched packets are dropped (like Click's `IPFilter` with no trailing
/// `allow all`). One output carries the survivors.
pub struct IpFilter {
    rules: Vec<FilterRule>,
    passed: u64,
    dropped: u64,
}

impl Element for IpFilter {
    fn class_name(&self) -> &'static str {
        "IPFilter"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        let verdict = FlowKey::extract(&pkt.data).ok().and_then(|key| {
            self.rules
                .iter()
                .find(|r| r.expr.matches(&key))
                .map(|r| r.allow)
        });
        if verdict == Some(true) {
            self.passed += 1;
            ctx.emit(0, pkt);
        } else {
            self.dropped += 1;
        }
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "passed" => Some(self.passed.to_string()),
            "dropped" => Some(self.dropped.to_string()),
            "rules" => Some(self.rules.len().to_string()),
            _ => None,
        }
    }
    fn write_handler(&mut self, name: &str, value: &str) -> Result<(), HandlerError> {
        match name {
            // Live reconfiguration: replace the whole rule set; rules are
            // newline-separated. This is how the NETCONF agent updates a
            // running firewall VNF.
            "rules" => {
                let rules = value
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .map(FilterRule::parse)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(HandlerError::BadValue)?;
                if rules.is_empty() {
                    return Err(HandlerError::BadValue("empty rule set".into()));
                }
                self.rules = rules;
                Ok(())
            }
            other => Err(HandlerError::NoSuchHandler(other.to_string())),
        }
    }
    fn cost_ns(&self) -> u64 {
        // Linear in rules: a bigger ruleset costs more CPU.
        100 + 20 * self.rules.len() as u64
    }
}

/// Naive DPI: scans the transport payload for a byte pattern. Matching
/// packets leave on output 0 ("suspicious"), the rest on output 1.
pub struct StringMatcher {
    pattern: Vec<u8>,
    matches: u64,
}

impl StringMatcher {
    fn payload_of(data: &[u8]) -> Option<bytes::Bytes> {
        let eth = EthernetFrame::decode(data).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::decode(&eth.payload).ok()?;
        match ip.protocol {
            // Transport payload offset: UDP header 8, TCP header from doff.
            IpProtocol::Udp if ip.payload.len() > 8 => Some(ip.payload.slice(8..)),
            IpProtocol::Tcp if ip.payload.len() > 20 => {
                let doff = ((ip.payload[12] >> 4) as usize) * 4;
                (ip.payload.len() > doff).then(|| ip.payload.slice(doff..))
            }
            _ => None,
        }
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }
}

impl Element for StringMatcher {
    fn class_name(&self) -> &'static str {
        "StringMatcher"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 2)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        let hit = Self::payload_of(&pkt.data)
            .map(|p| Self::contains(&p, &self.pattern))
            .unwrap_or(false);
        // DPI is expensive; charge CPU proportional to scanned bytes
        // (8 ns/byte models a naive byte-at-a-time scanner).
        ctx.charge_work(pkt.len() as u64 * 8);
        if hit {
            self.matches += 1;
            ctx.emit(0, pkt);
        } else {
            ctx.emit(1, pkt);
        }
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "matches" => Some(self.matches.to_string()),
            "pattern" => Some(String::from_utf8_lossy(&self.pattern).into_owned()),
            _ => None,
        }
    }
    fn write_handler(&mut self, name: &str, value: &str) -> Result<(), HandlerError> {
        match name {
            "pattern" => {
                if value.is_empty() {
                    return Err(HandlerError::BadValue("pattern must be non-empty".into()));
                }
                self.pattern = value.as_bytes().to_vec();
                Ok(())
            }
            other => Err(HandlerError::NoSuchHandler(other.to_string())),
        }
    }
    fn cost_ns(&self) -> u64 {
        150
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::router::Router;
    use bytes::Bytes;
    use escape_netem::Time;
    use escape_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn udp(dport: u16, payload: &'static [u8]) -> Packet {
        let data = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            999,
            dport,
            Bytes::from_static(payload),
        );
        Packet {
            data,
            id: 0,
            born_ns: 0,
        }
    }

    fn mk(cfg: &str) -> Router {
        Router::from_config(cfg, &Registry::standard(), 0).unwrap()
    }

    #[test]
    fn filter_rule_parsing() {
        let r = FilterRule::parse("allow udp and dst port 53").unwrap();
        assert!(r.allow);
        let r = FilterRule::parse("deny host 10.0.0.1").unwrap();
        assert!(!r.allow);
        assert!(FilterRule::parse("permit udp").is_err());
        assert!(FilterRule::parse("allow").is_err());
    }

    #[test]
    fn firewall_first_match_wins_default_deny() {
        let mut r =
            mk("FromDevice(0) -> f :: IPFilter(deny dst port 23, allow udp) -> ToDevice(0);");
        assert_eq!(
            r.push_external(0, udp(53, b"ok"), Time::ZERO)
                .external
                .len(),
            1
        );
        assert_eq!(
            r.push_external(0, udp(23, b"telnet"), Time::ZERO)
                .external
                .len(),
            0
        );
        // Unmatched (non-UDP e.g. ARP) -> default deny.
        let arp = PacketBuilder::arp_request(
            MacAddr::from_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        assert_eq!(
            r.push_external(
                0,
                Packet {
                    data: arp,
                    id: 0,
                    born_ns: 0
                },
                Time::ZERO
            )
            .external
            .len(),
            0
        );
        assert_eq!(r.read_handler("f.passed").unwrap(), "1");
        assert_eq!(r.read_handler("f.dropped").unwrap(), "2");
    }

    #[test]
    fn firewall_rules_can_be_rewritten_live() {
        let mut r = mk("FromDevice(0) -> f :: IPFilter(deny all) -> ToDevice(0);");
        assert_eq!(
            r.push_external(0, udp(80, b"x"), Time::ZERO).external.len(),
            0
        );
        r.write_handler("f.rules", "allow udp\ndeny all").unwrap();
        assert_eq!(
            r.push_external(0, udp(80, b"x"), Time::ZERO).external.len(),
            1
        );
        assert!(r.write_handler("f.rules", "garbage here").is_err());
        assert!(r.write_handler("f.rules", "").is_err());
    }

    #[test]
    fn dpi_splits_on_payload_pattern() {
        let mut r = mk(
            r#"FromDevice(0) -> m :: StringMatcher("attack"); m [0] -> ToDevice(1); m [1] -> ToDevice(0);"#,
        );
        let out = r.push_external(0, udp(80, b"an attack vector"), Time::ZERO);
        assert_eq!(out.external[0].0, 1);
        let out = r.push_external(0, udp(80, b"benign chatter"), Time::ZERO);
        assert_eq!(out.external[0].0, 0);
        assert_eq!(r.read_handler("m.matches").unwrap(), "1");
    }

    #[test]
    fn dpi_pattern_is_retunable() {
        let mut r = mk(
            r#"FromDevice(0) -> m :: StringMatcher("old"); m [0] -> ToDevice(1); m [1] -> ToDevice(0);"#,
        );
        r.write_handler("m.pattern", "fresh").unwrap();
        assert_eq!(r.read_handler("m.pattern").unwrap(), "fresh");
        let out = r.push_external(0, udp(80, b"very fresh bytes"), Time::ZERO);
        assert_eq!(out.external[0].0, 1);
    }

    #[test]
    fn non_ip_goes_to_clean_port() {
        let mut r = mk(
            r#"FromDevice(0) -> m :: StringMatcher("x"); m [0] -> ToDevice(1); m [1] -> ToDevice(0);"#,
        );
        let arp = PacketBuilder::arp_request(
            MacAddr::from_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let out = r.push_external(
            0,
            Packet {
                data: arp,
                id: 0,
                born_ns: 0,
            },
            Time::ZERO,
        );
        assert_eq!(out.external[0].0, 0);
    }
}
