//! Synthetic traffic generation inside a router (for element-level tests
//! and the dataplane throughput benches).

use super::args;
use crate::element::{ElemCtx, Element};
use crate::registry::Registry;
use escape_netem::Time;
use escape_packet::{MacAddr, PacketBuilder};
use std::net::Ipv4Addr;

pub fn install(r: &mut Registry) {
    r.register("RatedSource", |a| {
        args::max(a, 3)?;
        let len = args::opt::<usize>(a, 0, 64)?;
        if len < 42 {
            return Err("frame length must be >= 42".into());
        }
        let rate: u64 = args::opt(a, 1, 1000)?;
        if rate == 0 {
            return Err("rate must be positive".into());
        }
        let limit: u64 = args::opt(a, 2, u64::MAX)?;
        Ok(Box::new(RatedSource {
            len,
            interval_ns: 1_000_000_000 / rate,
            remaining: limit,
            next: Some(Time::ZERO),
            emitted: 0,
        }))
    });
}

/// Emits well-formed UDP frames of a fixed size at a fixed packet rate,
/// up to an optional limit. Arguments: `len, rate_pps, limit`.
pub struct RatedSource {
    len: usize,
    interval_ns: u64,
    remaining: u64,
    next: Option<Time>,
    emitted: u64,
}

impl Element for RatedSource {
    fn class_name(&self) -> &'static str {
        "RatedSource"
    }
    fn ports(&self) -> (usize, usize) {
        (0, 1)
    }
    fn tick(&mut self, ctx: &mut ElemCtx<'_>) {
        if self.remaining == 0 {
            self.next = None;
            return;
        }
        self.remaining -= 1;
        self.emitted += 1;
        let data = PacketBuilder::udp_with_len(
            MacAddr::from_id(0xbeef),
            MacAddr::from_id(0xcafe),
            Ipv4Addr::new(10, 255, 0, 1),
            Ipv4Addr::new(10, 255, 0, 2),
            7000,
            7001,
            self.len,
        );
        let pkt = escape_packet::Packet {
            data,
            id: self.emitted,
            born_ns: ctx.now().as_ns(),
        };
        ctx.emit(0, pkt);
        self.next = if self.remaining > 0 {
            Some(ctx.now().add_ns(self.interval_ns))
        } else {
            None
        };
    }
    fn next_wake(&self) -> Option<Time> {
        self.next
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.emitted.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        100
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;
    use crate::router::Router;

    #[test]
    fn source_emits_limit_packets_at_rate() {
        let mut r = Router::from_config(
            "RatedSource(64, 1000, 5) -> c :: Counter -> Discard;",
            &Registry::standard(),
            0,
        )
        .unwrap();
        let mut emissions = Vec::new();
        while let Some(w) = r.next_wake() {
            r.tick(w);
            emissions.push(w.as_ms());
        }
        assert_eq!(emissions, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.read_handler("c.count").unwrap(), "5");
        assert_eq!(r.read_handler("c.byte_count").unwrap(), "320");
    }

    #[test]
    fn source_frames_are_valid() {
        let mut r = Router::from_config(
            "RatedSource(128, 100, 1) -> chk :: CheckIPHeader -> Discard;",
            &Registry::standard(),
            0,
        )
        .unwrap();
        while let Some(w) = r.next_wake() {
            r.tick(w);
        }
        assert_eq!(r.read_handler("chk.drops").unwrap(), "0");
    }

    #[test]
    fn factory_validation() {
        let reg = Registry::standard();
        assert!(Router::from_config("s :: RatedSource(10);", &reg, 0).is_err()); // too short
        assert!(Router::from_config("s :: RatedSource(64, 0);", &reg, 0).is_err());
    }
}
