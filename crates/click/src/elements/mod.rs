//! The standard element library.
//!
//! Organized by concern:
//! * [`basic`] — device endpoints, counters, queues, tees, discard
//! * [`classify`] — `Classifier` (raw byte patterns) and `IPClassifier`
//!   (header expressions)
//! * [`headers`] — header surgery: strip/encap, TTL, DSCP, header checks
//! * [`security`] — `IPFilter` (firewall) and `StringMatcher` (DPI)
//! * [`nat`] — the stateful `IPRewriter`
//! * [`shaping`] — bandwidth/delay shapers and random sampling
//! * [`balance`] — round-robin and hash load spreading
//! * [`source`] — synthetic traffic generation

pub mod balance;
pub mod basic;
pub mod classify;
pub mod headers;
pub mod nat;
pub mod security;
pub mod shaping;
pub mod source;

use crate::registry::Registry;

/// Registers every standard element class.
pub fn install_standard(r: &mut Registry) {
    basic::install(r);
    classify::install(r);
    headers::install(r);
    security::install(r);
    nat::install(r);
    shaping::install(r);
    balance::install(r);
    source::install(r);
}

/// Shared argument parsing helpers for element factories.
pub(crate) mod args {
    /// Parses args[idx] as T, with a default when absent.
    pub fn opt<T: std::str::FromStr>(args: &[String], idx: usize, default: T) -> Result<T, String> {
        match args.get(idx) {
            None => Ok(default),
            Some(s) if s.is_empty() => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("bad argument {:?} at position {}", s, idx)),
        }
    }

    /// Parses required args[idx] as T.
    pub fn req<T: std::str::FromStr>(args: &[String], idx: usize, what: &str) -> Result<T, String> {
        args.get(idx)
            .ok_or_else(|| format!("missing argument {idx}: {what}"))?
            .parse()
            .map_err(|_| format!("bad {what}: {:?}", args[idx]))
    }

    /// Rejects extra arguments.
    pub fn max(args: &[String], n: usize) -> Result<(), String> {
        if args.len() > n {
            Err(format!(
                "expected at most {n} arguments, got {}",
                args.len()
            ))
        } else {
            Ok(())
        }
    }
}
