//! `IPRewriter`: a stateful source NAT.
//!
//! Input/output 0 carry the outbound (private→public) direction: the
//! source address is rewritten to the configured external IP and the
//! source port to an allocated external port. Input/output 1 carry the
//! inbound direction: destination address/port are mapped back. Checksums
//! (IP header and UDP/TCP pseudo-header) are recomputed by re-encoding the
//! affected layers.

use super::args;
use crate::element::{ElemCtx, Element};
use crate::registry::Registry;
use escape_packet::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, Packet, TcpSegment, UdpDatagram,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;

pub fn install(r: &mut Registry) {
    r.register("IPRewriter", |a| {
        args::max(a, 1)?;
        let external: Ipv4Addr = args::req(a, 0, "external IP")?;
        Ok(Box::new(IpRewriter::new(external)))
    });
}

type FlowId = (u8, Ipv4Addr, u16); // (proto, private ip, private port)

/// The NAT element. See the module docs.
pub struct IpRewriter {
    external: Ipv4Addr,
    forward: HashMap<FlowId, u16>,
    reverse: HashMap<(u8, u16), (Ipv4Addr, u16)>,
    next_port: u16,
    rewritten: u64,
    dropped: u64,
}

impl IpRewriter {
    fn new(external: Ipv4Addr) -> Self {
        IpRewriter {
            external,
            forward: HashMap::new(),
            reverse: HashMap::new(),
            next_port: 40_000,
            rewritten: 0,
            dropped: 0,
        }
    }

    fn alloc_port(&mut self, proto: u8, key: FlowId) -> u16 {
        if let Some(&p) = self.forward.get(&key) {
            return p;
        }
        let p = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(40_000);
        self.forward.insert(key, p);
        self.reverse.insert((proto, p), (key.1, key.2));
        p
    }

    /// Decodes a frame down to transport, applies `f` to rewrite
    /// addresses/ports, and re-encodes with fresh checksums. Returns `None`
    /// when the frame is not rewritable UDP/TCP-in-IPv4.
    fn rewrite(
        pkt: &Packet,
        f: impl FnOnce(&mut IpRewriter, &mut Ipv4Packet, &mut u16, &mut u16, bool) -> bool,
        this: &mut IpRewriter,
    ) -> Option<Packet> {
        let eth = EthernetFrame::decode(&pkt.data).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let mut ip = Ipv4Packet::decode(&eth.payload).ok()?;
        match ip.protocol {
            IpProtocol::Udp => {
                let mut udp = UdpDatagram::decode(&ip.payload, ip.src, ip.dst).ok()?;
                let (mut sp, mut dp) = (udp.src_port, udp.dst_port);
                if !f(this, &mut ip, &mut sp, &mut dp, false) {
                    return None;
                }
                udp.src_port = sp;
                udp.dst_port = dp;
                ip.payload = udp.encode(ip.src, ip.dst);
            }
            IpProtocol::Tcp => {
                let mut tcp = TcpSegment::decode(&ip.payload, ip.src, ip.dst).ok()?;
                let (mut sp, mut dp) = (tcp.src_port, tcp.dst_port);
                if !f(this, &mut ip, &mut sp, &mut dp, true) {
                    return None;
                }
                tcp.src_port = sp;
                tcp.dst_port = dp;
                ip.payload = tcp.encode(ip.src, ip.dst);
            }
            _ => return None,
        }
        let frame = EthernetFrame::new(eth.dst, eth.src, eth.ethertype, ip.encode());
        Some(Packet {
            data: frame.encode(),
            id: pkt.id,
            born_ns: pkt.born_ns,
        })
    }
}

impl Element for IpRewriter {
    fn class_name(&self) -> &'static str {
        "IPRewriter"
    }
    fn ports(&self) -> (usize, usize) {
        (2, 2)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, port: usize, pkt: Packet) {
        let out = match port {
            0 => Self::rewrite(
                &pkt,
                |nat, ip, sp, _dp, is_tcp| {
                    let proto = if is_tcp { 6 } else { 17 };
                    let ext_port = nat.alloc_port(proto, (proto, ip.src, *sp));
                    ip.src = nat.external;
                    *sp = ext_port;
                    true
                },
                self,
            ),
            1 => Self::rewrite(
                &pkt,
                |nat, ip, _sp, dp, is_tcp| {
                    let proto = if is_tcp { 6 } else { 17 };
                    match nat.reverse.get(&(proto, *dp)) {
                        Some(&(priv_ip, priv_port)) => {
                            ip.dst = priv_ip;
                            *dp = priv_port;
                            true
                        }
                        None => false, // unsolicited inbound: drop
                    }
                },
                self,
            ),
            _ => None,
        };
        match out {
            Some(p) => {
                self.rewritten += 1;
                ctx.emit(port, p);
            }
            None => self.dropped += 1,
        }
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "mappings" => Some(self.forward.len().to_string()),
            "rewritten" => Some(self.rewritten.to_string()),
            "dropped" => Some(self.dropped.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        200
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::router::Router;
    use bytes::Bytes;
    use escape_netem::Time;
    use escape_packet::{MacAddr, PacketBuilder};

    const PRIV: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const SRV: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
    const EXT: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

    fn mk() -> Router {
        Router::from_config(
            "FromDevice(0) -> [0] nat :: IPRewriter(203.0.113.1); nat [0] -> ToDevice(1);\n\
             FromDevice(1) -> [1] nat; nat [1] -> ToDevice(0);",
            &Registry::standard(),
            0,
        )
        .unwrap()
    }

    fn outbound(sport: u16) -> Packet {
        let data = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            PRIV,
            SRV,
            sport,
            53,
            Bytes::from_static(b"query"),
        );
        Packet {
            data,
            id: 0,
            born_ns: 0,
        }
    }

    fn parse_udp(p: &Packet) -> (Ipv4Addr, Ipv4Addr, u16, u16) {
        let eth = EthernetFrame::decode(&p.data).unwrap();
        let ip = Ipv4Packet::decode(&eth.payload).unwrap();
        let udp = UdpDatagram::decode(&ip.payload, ip.src, ip.dst).unwrap();
        (ip.src, ip.dst, udp.src_port, udp.dst_port)
    }

    #[test]
    fn outbound_is_source_rewritten() {
        let mut r = mk();
        let out = r.push_external(0, outbound(5555), Time::ZERO);
        assert_eq!(out.external.len(), 1);
        let (src, dst, sp, dp) = parse_udp(&out.external[0].1);
        assert_eq!(src, EXT);
        assert_eq!(dst, SRV);
        assert_eq!(sp, 40_000);
        assert_eq!(dp, 53);
        assert_eq!(r.read_handler("nat.mappings").unwrap(), "1");
    }

    #[test]
    fn inbound_reply_is_mapped_back() {
        let mut r = mk();
        r.push_external(0, outbound(5555), Time::ZERO);
        // The server replies to EXT:40000.
        let reply = PacketBuilder::udp(
            MacAddr::from_id(2),
            MacAddr::from_id(1),
            SRV,
            EXT,
            53,
            40_000,
            Bytes::from_static(b"answer"),
        );
        let out = r.push_external(
            1,
            Packet {
                data: reply,
                id: 0,
                born_ns: 0,
            },
            Time::ZERO,
        );
        assert_eq!(out.external.len(), 1);
        assert_eq!(out.external[0].0, 0);
        let (src, dst, sp, dp) = parse_udp(&out.external[0].1);
        assert_eq!(src, SRV);
        assert_eq!(dst, PRIV);
        assert_eq!(sp, 53);
        assert_eq!(dp, 5555);
    }

    #[test]
    fn same_flow_reuses_mapping() {
        let mut r = mk();
        r.push_external(0, outbound(7777), Time::ZERO);
        r.push_external(0, outbound(7777), Time::ZERO);
        assert_eq!(r.read_handler("nat.mappings").unwrap(), "1");
        r.push_external(0, outbound(7778), Time::ZERO);
        assert_eq!(r.read_handler("nat.mappings").unwrap(), "2");
    }

    #[test]
    fn unsolicited_inbound_is_dropped() {
        let mut r = mk();
        let stray = PacketBuilder::udp(
            MacAddr::from_id(2),
            MacAddr::from_id(1),
            SRV,
            EXT,
            53,
            41_234,
            Bytes::from_static(b"scan"),
        );
        let out = r.push_external(
            1,
            Packet {
                data: stray,
                id: 0,
                born_ns: 0,
            },
            Time::ZERO,
        );
        assert!(out.external.is_empty());
        assert_eq!(r.read_handler("nat.dropped").unwrap(), "1");
    }

    #[test]
    fn non_rewritable_frames_are_dropped() {
        let mut r = mk();
        let arp = PacketBuilder::arp_request(MacAddr::from_id(1), PRIV, SRV);
        let out = r.push_external(
            0,
            Packet {
                data: arp,
                id: 0,
                born_ns: 0,
            },
            Time::ZERO,
        );
        assert!(out.external.is_empty());
        assert_eq!(r.read_handler("nat.dropped").unwrap(), "1");
    }

    #[test]
    fn tcp_flows_are_translated_too() {
        let mut r = mk();
        let syn = PacketBuilder::tcp_syn(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            PRIV,
            SRV,
            6000,
            80,
        );
        let out = r.push_external(
            0,
            Packet {
                data: syn,
                id: 0,
                born_ns: 0,
            },
            Time::ZERO,
        );
        assert_eq!(out.external.len(), 1);
        let eth = EthernetFrame::decode(&out.external[0].1.data).unwrap();
        let ip = Ipv4Packet::decode(&eth.payload).unwrap();
        assert_eq!(ip.src, EXT);
        let tcp = TcpSegment::decode(&ip.payload, ip.src, ip.dst).unwrap();
        assert!(tcp.is_syn());
        assert_eq!(tcp.src_port, 40_000);
    }
}
