//! Traffic shaping: bandwidth and delay shapers, random sampling.

use super::args;
use crate::element::{ElemCtx, Element};
use crate::registry::Registry;
use escape_netem::Time;
use escape_packet::Packet;
use std::collections::VecDeque;

pub fn install(r: &mut Registry) {
    r.register("BandwidthShaper", |a| {
        args::max(a, 2)?;
        let rate_bps: u64 = args::req(a, 0, "rate in bits/s")?;
        if rate_bps == 0 {
            return Err("rate must be positive".into());
        }
        let cap = args::opt::<usize>(a, 1, 1000)?;
        Ok(Box::new(BandwidthShaper {
            rate_bps,
            cap,
            q: VecDeque::new(),
            next_release: None,
            drops: 0,
            shaped: 0,
        }))
    });
    r.register("DelayShaper", |a| {
        args::max(a, 1)?;
        let delay_us: u64 = args::req(a, 0, "delay in microseconds")?;
        Ok(Box::new(DelayShaper {
            delay: Time::from_us(delay_us),
            q: VecDeque::new(),
        }))
    });
    r.register("RandomSample", |a| {
        args::max(a, 1)?;
        let keep: f64 = args::req(a, 0, "keep probability")?;
        if !(0.0..=1.0).contains(&keep) {
            return Err("probability must be in [0,1]".into());
        }
        Ok(Box::new(RandomSample { keep, drops: 0 }))
    });
}

/// Token-bucket-style rate limiter: packets exit at `rate_bps`, excess is
/// buffered up to `cap` packets (then tail-dropped). This is the engine of
/// the catalog's rate-limiter VNF.
pub struct BandwidthShaper {
    rate_bps: u64,
    cap: usize,
    q: VecDeque<Packet>,
    next_release: Option<Time>,
    drops: u64,
    shaped: u64,
}

impl BandwidthShaper {
    fn tx_time(&self, len: usize) -> u64 {
        (len as u128 * 8 * 1_000_000_000 / self.rate_bps as u128) as u64
    }
}

impl Element for BandwidthShaper {
    fn class_name(&self) -> &'static str {
        "BandwidthShaper"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        if self.q.len() >= self.cap {
            self.drops += 1;
            return;
        }
        let idle = self.q.is_empty();
        if idle {
            // Head packet: released after its own serialization time.
            self.next_release = Some(ctx.now().add_ns(self.tx_time(pkt.len())));
        }
        self.q.push_back(pkt);
    }
    fn tick(&mut self, ctx: &mut ElemCtx<'_>) {
        if let Some(pkt) = self.q.pop_front() {
            self.shaped += 1;
            ctx.emit(0, pkt);
        }
        self.next_release = self
            .q
            .front()
            .map(|next| ctx.now().add_ns(self.tx_time(next.len())));
    }
    fn next_wake(&self) -> Option<Time> {
        self.next_release
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "rate" => Some(self.rate_bps.to_string()),
            "length" => Some(self.q.len().to_string()),
            "drops" => Some(self.drops.to_string()),
            "count" => Some(self.shaped.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        40
    }
}

/// Delays every packet by a fixed amount (an artificial-latency VNF).
pub struct DelayShaper {
    delay: Time,
    q: VecDeque<(Time, Packet)>,
}

impl Element for DelayShaper {
    fn class_name(&self) -> &'static str {
        "DelayShaper"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        // FIFO: arrival order is release order, so push_back keeps the
        // queue sorted by release time.
        self.q.push_back((ctx.now() + self.delay, pkt));
    }
    fn tick(&mut self, ctx: &mut ElemCtx<'_>) {
        while let Some((t, _)) = self.q.front() {
            if *t <= ctx.now() {
                let (_, pkt) = self.q.pop_front().unwrap();
                ctx.emit(0, pkt);
            } else {
                break;
            }
        }
    }
    fn next_wake(&self) -> Option<Time> {
        self.q.front().map(|(t, _)| *t)
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "delay_us" => Some(self.delay.as_us().to_string()),
            "length" => Some(self.q.len().to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        30
    }
}

/// Keeps each packet with probability `keep` (seeded by the router, so
/// deterministic per run); the rest are dropped and counted.
pub struct RandomSample {
    keep: f64,
    drops: u64,
}

impl Element for RandomSample {
    fn class_name(&self) -> &'static str {
        "RandomSample"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        if ctx.random_f64() < self.keep {
            ctx.emit(0, pkt);
        } else {
            self.drops += 1;
        }
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "drops" => Some(self.drops.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        25
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::router::Router;
    use bytes::Bytes;

    fn pkt(n: usize) -> Packet {
        Packet {
            data: Bytes::from(vec![0u8; n]),
            id: 0,
            born_ns: 0,
        }
    }

    fn mk(cfg: &str) -> Router {
        Router::from_config(cfg, &Registry::standard(), 42).unwrap()
    }

    #[test]
    fn bandwidth_shaper_paces_output() {
        // 1 Mbit/s; 125-byte packets = 1 ms each.
        let mut r = mk("FromDevice(0) -> s :: BandwidthShaper(1000000) -> ToDevice(0);");
        for _ in 0..3 {
            assert!(r.push_external(0, pkt(125), Time::ZERO).external.is_empty());
        }
        let mut release_times = Vec::new();
        while let Some(w) = r.next_wake() {
            let out = r.tick(w);
            for _ in out.external {
                release_times.push(w.as_ms());
            }
        }
        assert_eq!(release_times, vec![1, 2, 3]);
        assert_eq!(r.read_handler("s.count").unwrap(), "3");
    }

    #[test]
    fn bandwidth_shaper_tail_drops() {
        let mut r = mk("FromDevice(0) -> s :: BandwidthShaper(1000, 2) -> ToDevice(0);");
        for _ in 0..5 {
            r.push_external(0, pkt(100), Time::ZERO);
        }
        assert_eq!(r.read_handler("s.length").unwrap(), "2");
        assert_eq!(r.read_handler("s.drops").unwrap(), "3");
    }

    #[test]
    fn delay_shaper_holds_for_fixed_time() {
        let mut r = mk("FromDevice(0) -> d :: DelayShaper(500) -> ToDevice(0);");
        assert!(r
            .push_external(0, pkt(60), Time::from_us(100))
            .external
            .is_empty());
        assert_eq!(r.next_wake(), Some(Time::from_us(600)));
        let out = r.tick(Time::from_us(600));
        assert_eq!(out.external.len(), 1);
        assert!(r.next_wake().is_none());
    }

    #[test]
    fn delay_shaper_releases_in_arrival_order() {
        let mut r = mk("FromDevice(0) -> d :: DelayShaper(1000) -> ToDevice(0);");
        r.push_external(0, pkt(60), Time::from_us(0));
        r.push_external(0, pkt(61), Time::from_us(10));
        let out = r.tick(Time::from_us(1000));
        assert_eq!(out.external.len(), 1);
        assert_eq!(out.external[0].1.len(), 60);
        let out = r.tick(Time::from_us(1010));
        assert_eq!(out.external[0].1.len(), 61);
    }

    #[test]
    fn random_sample_is_statistical_and_seeded() {
        let run = || {
            let mut r = mk("FromDevice(0) -> s :: RandomSample(0.3) -> ToDevice(0);");
            let mut kept = 0;
            for _ in 0..1000 {
                kept += r.push_external(0, pkt(60), Time::ZERO).external.len();
            }
            kept
        };
        let k1 = run();
        assert!((200..400).contains(&k1), "kept {k1}, expected ~300");
        assert_eq!(k1, run(), "same seed must reproduce");
    }

    #[test]
    fn factory_validation() {
        let reg = Registry::standard();
        assert!(Router::from_config("s :: BandwidthShaper(0);", &reg, 0).is_err());
        assert!(Router::from_config("s :: RandomSample(1.5);", &reg, 0).is_err());
        assert!(Router::from_config("s :: DelayShaper(abc);", &reg, 0).is_err());
    }
}
