//! Load spreading: round-robin and flow-hash switches.

use super::args;
use crate::element::{ElemCtx, Element};
use crate::registry::Registry;
use escape_packet::{FlowKey, Packet};

pub fn install(r: &mut Registry) {
    r.register("RoundRobinSwitch", |a| {
        args::max(a, 1)?;
        let n = args::req::<usize>(a, 0, "output count")?;
        if n == 0 {
            return Err("needs at least one output".into());
        }
        Ok(Box::new(RoundRobinSwitch {
            n,
            next: 0,
            count: 0,
        }))
    });
    r.register("HashSwitch", |a| {
        args::max(a, 1)?;
        let n = args::req::<usize>(a, 0, "output count")?;
        if n == 0 {
            return Err("needs at least one output".into());
        }
        Ok(Box::new(HashSwitch { n, count: 0 }))
    });
}

/// Spreads packets over `n` outputs in rotation.
pub struct RoundRobinSwitch {
    n: usize,
    next: usize,
    count: u64,
}

impl Element for RoundRobinSwitch {
    fn class_name(&self) -> &'static str {
        "RoundRobinSwitch"
    }
    fn ports(&self) -> (usize, usize) {
        (1, self.n)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        let out = self.next;
        self.next = (self.next + 1) % self.n;
        self.count += 1;
        ctx.emit(out, pkt);
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.count.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        25
    }
}

/// Spreads packets over `n` outputs by a hash of the 5-tuple, keeping each
/// flow on one output (the property a stateful backend pool needs).
pub struct HashSwitch {
    n: usize,
    count: u64,
}

impl HashSwitch {
    fn hash_key(key: &FlowKey) -> u64 {
        // FNV-1a over the 5-tuple; simple and deterministic across runs.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in key.ip_src.map(|i| i.octets()).unwrap_or_default() {
            eat(b);
        }
        for b in key.ip_dst.map(|i| i.octets()).unwrap_or_default() {
            eat(b);
        }
        eat(key.ip_proto.unwrap_or(0));
        for b in key.tp_src.unwrap_or(0).to_be_bytes() {
            eat(b);
        }
        for b in key.tp_dst.unwrap_or(0).to_be_bytes() {
            eat(b);
        }
        h
    }
}

impl Element for HashSwitch {
    fn class_name(&self) -> &'static str {
        "HashSwitch"
    }
    fn ports(&self) -> (usize, usize) {
        (1, self.n)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        let out = match FlowKey::extract(&pkt.data) {
            Ok(key) => (Self::hash_key(&key) % self.n as u64) as usize,
            Err(_) => 0,
        };
        self.count += 1;
        ctx.emit(out, pkt);
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.count.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        60
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::router::Router;
    use bytes::Bytes;
    use escape_netem::Time;
    use escape_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn udp(sport: u16) -> Packet {
        let data = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            sport,
            80,
            Bytes::from_static(b"lb"),
        );
        Packet {
            data,
            id: 0,
            born_ns: 0,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut r = Router::from_config(
            "FromDevice(0) -> rr :: RoundRobinSwitch(3); rr [0] -> ToDevice(0); rr [1] -> ToDevice(1); rr [2] -> ToDevice(2);",
            &Registry::standard(),
            0,
        )
        .unwrap();
        let devs: Vec<u16> = (0..6)
            .map(|i| r.push_external(0, udp(i), Time::ZERO).external[0].0)
            .collect();
        assert_eq!(devs, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn hash_switch_keeps_flows_together() {
        let mut r = Router::from_config(
            "FromDevice(0) -> h :: HashSwitch(4); h [0] -> ToDevice(0); h [1] -> ToDevice(1); h [2] -> ToDevice(2); h [3] -> ToDevice(3);",
            &Registry::standard(),
            0,
        )
        .unwrap();
        // Same flow -> same output, every time.
        let first = r.push_external(0, udp(1234), Time::ZERO).external[0].0;
        for _ in 0..10 {
            assert_eq!(
                r.push_external(0, udp(1234), Time::ZERO).external[0].0,
                first
            );
        }
        // Many flows spread over more than one output.
        let mut used = std::collections::HashSet::new();
        for sp in 0..64 {
            used.insert(r.push_external(0, udp(sp), Time::ZERO).external[0].0);
        }
        assert!(used.len() >= 2, "hash never spread: {used:?}");
    }

    #[test]
    fn factories_reject_zero_outputs() {
        let reg = Registry::standard();
        assert!(Router::from_config("x :: RoundRobinSwitch(0);", &reg, 0).is_err());
        assert!(Router::from_config("x :: HashSwitch(0);", &reg, 0).is_err());
    }
}
