//! Packet classification: raw byte patterns and IP header expressions.

use crate::element::{ElemCtx, Element};
use crate::registry::Registry;
use escape_packet::{FlowKey, Packet};
use std::net::Ipv4Addr;

pub fn install(r: &mut Registry) {
    r.register("Classifier", |a| {
        if a.is_empty() {
            return Err("needs at least one pattern".into());
        }
        let patterns = a
            .iter()
            .map(|p| BytePattern::parse(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(Classifier { patterns, drops: 0 }))
    });
    r.register("IPClassifier", |a| {
        if a.is_empty() {
            return Err("needs at least one expression".into());
        }
        let exprs = a
            .iter()
            .map(|e| IpExpr::parse(e))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(IpClassifier { exprs, drops: 0 }))
    });
}

/// One Click classifier pattern: a conjunction of `offset/value[%mask]`
/// clauses in hex. `-` matches everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytePattern {
    clauses: Vec<(usize, Vec<u8>, Vec<u8>)>, // (offset, value, mask)
}

impl BytePattern {
    /// Parses e.g. `"12/0800 23/11"` or `"-"`.
    pub fn parse(s: &str) -> Result<BytePattern, String> {
        let s = s.trim();
        if s == "-" {
            return Ok(BytePattern {
                clauses: Vec::new(),
            });
        }
        let mut clauses = Vec::new();
        for part in s.split_whitespace() {
            let (off, rest) = part
                .split_once('/')
                .ok_or_else(|| format!("pattern clause {part:?} missing '/'"))?;
            let offset: usize = off.parse().map_err(|_| format!("bad offset {off:?}"))?;
            let (val_hex, mask_hex) = match rest.split_once('%') {
                Some((v, m)) => (v, Some(m)),
                None => (rest, None),
            };
            let value = hex_bytes(val_hex)?;
            let mask = match mask_hex {
                Some(m) => {
                    let mk = hex_bytes(m)?;
                    if mk.len() != value.len() {
                        return Err(format!("mask length mismatch in {part:?}"));
                    }
                    mk
                }
                None => vec![0xff; value.len()],
            };
            clauses.push((offset, value, mask));
        }
        Ok(BytePattern { clauses })
    }

    /// True if `data` satisfies every clause.
    pub fn matches(&self, data: &[u8]) -> bool {
        self.clauses.iter().all(|(off, val, mask)| {
            data.len() >= off + val.len()
                && val
                    .iter()
                    .zip(mask)
                    .zip(&data[*off..off + val.len()])
                    .all(|((v, m), d)| d & m == v & m)
        })
    }
}

fn hex_bytes(s: &str) -> Result<Vec<u8>, String> {
    if s.is_empty() || !s.len().is_multiple_of(2) {
        return Err(format!("hex string {s:?} must have even length"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex {s:?}")))
        .collect()
}

/// Click's `Classifier`: the packet goes to the first output whose byte
/// pattern matches; unmatched packets are dropped.
pub struct Classifier {
    patterns: Vec<BytePattern>,
    drops: u64,
}

impl Element for Classifier {
    fn class_name(&self) -> &'static str {
        "Classifier"
    }
    fn ports(&self) -> (usize, usize) {
        (1, self.patterns.len())
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        for (i, p) in self.patterns.iter().enumerate() {
            if p.matches(&pkt.data) {
                ctx.emit(i, pkt);
                return;
            }
        }
        self.drops += 1;
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "drops" => Some(self.drops.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        60
    }
}

/// A primitive predicate over a [`FlowKey`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum IpTerm {
    Any,
    Proto(&'static str), // "ip" | "arp" | "udp" | "tcp" | "icmp"
    SrcHost(Ipv4Addr),
    DstHost(Ipv4Addr),
    Host(Ipv4Addr),
    SrcNet(Ipv4Addr, u8),
    DstNet(Ipv4Addr, u8),
    SrcPort(u16),
    DstPort(u16),
    Port(u16),
    Dscp(u8),
}

impl IpTerm {
    fn eval(&self, k: &FlowKey) -> bool {
        let in_net = |ip: Option<Ipv4Addr>, net: Ipv4Addr, len: u8| {
            ip.is_some_and(|ip| {
                let mask = if len == 0 {
                    0
                } else {
                    u32::MAX << (32 - len as u32)
                };
                u32::from(ip) & mask == u32::from(net) & mask
            })
        };
        match *self {
            IpTerm::Any => true,
            IpTerm::Proto("ip") => k.eth_type == 0x0800,
            IpTerm::Proto("arp") => k.eth_type == 0x0806,
            IpTerm::Proto("udp") => k.ip_proto == Some(17),
            IpTerm::Proto("tcp") => k.ip_proto == Some(6),
            IpTerm::Proto("icmp") => k.ip_proto == Some(1),
            IpTerm::Proto(_) => false,
            IpTerm::SrcHost(a) => k.ip_src == Some(a),
            IpTerm::DstHost(a) => k.ip_dst == Some(a),
            IpTerm::Host(a) => k.ip_src == Some(a) || k.ip_dst == Some(a),
            IpTerm::SrcNet(n, l) => in_net(k.ip_src, n, l),
            IpTerm::DstNet(n, l) => in_net(k.ip_dst, n, l),
            IpTerm::SrcPort(p) => k.tp_src == Some(p),
            IpTerm::DstPort(p) => k.tp_dst == Some(p),
            IpTerm::Port(p) => k.tp_src == Some(p) || k.tp_dst == Some(p),
            IpTerm::Dscp(d) => k.ip_dscp == Some(d),
        }
    }
}

/// A conjunction of primitive predicates — the expression language of
/// `IPClassifier` and `IPFilter` (a practical subset of Click's: terms
/// joined by `and`; no `or`, no negation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpExpr {
    terms: Vec<IpTerm>,
}

impl IpExpr {
    /// Parses e.g. `"udp and dst port 53"`, `"src host 10.0.0.1"`, `"-"`.
    pub fn parse(s: &str) -> Result<IpExpr, String> {
        let s = s.trim();
        if s == "-" || s.eq_ignore_ascii_case("any") || s.eq_ignore_ascii_case("all") {
            return Ok(IpExpr {
                terms: vec![IpTerm::Any],
            });
        }
        let mut terms = Vec::new();
        for clause in s.split(" and ") {
            let toks: Vec<&str> = clause.split_whitespace().collect();
            let term = match toks.as_slice() {
                ["ip"] => IpTerm::Proto("ip"),
                ["arp"] => IpTerm::Proto("arp"),
                ["udp"] => IpTerm::Proto("udp"),
                ["tcp"] => IpTerm::Proto("tcp"),
                ["icmp"] => IpTerm::Proto("icmp"),
                ["src", "host", a] => IpTerm::SrcHost(parse_ip(a)?),
                ["dst", "host", a] => IpTerm::DstHost(parse_ip(a)?),
                ["host", a] => IpTerm::Host(parse_ip(a)?),
                ["src", "net", n] => {
                    let (a, l) = parse_net(n)?;
                    IpTerm::SrcNet(a, l)
                }
                ["dst", "net", n] => {
                    let (a, l) = parse_net(n)?;
                    IpTerm::DstNet(a, l)
                }
                ["src", "port", p] => IpTerm::SrcPort(parse_port(p)?),
                ["dst", "port", p] => IpTerm::DstPort(parse_port(p)?),
                ["port", p] => IpTerm::Port(parse_port(p)?),
                ["dscp", d] => IpTerm::Dscp(d.parse().map_err(|_| format!("bad dscp {d:?}"))?),
                _ => return Err(format!("cannot parse expression clause {clause:?}")),
            };
            terms.push(term);
        }
        Ok(IpExpr { terms })
    }

    /// Evaluates the conjunction against a flow key.
    pub fn matches(&self, key: &FlowKey) -> bool {
        self.terms.iter().all(|t| t.eval(key))
    }
}

fn parse_ip(s: &str) -> Result<Ipv4Addr, String> {
    s.parse().map_err(|_| format!("bad IPv4 address {s:?}"))
}

fn parse_port(s: &str) -> Result<u16, String> {
    s.parse().map_err(|_| format!("bad port {s:?}"))
}

fn parse_net(s: &str) -> Result<(Ipv4Addr, u8), String> {
    let (a, l) = s
        .split_once('/')
        .ok_or_else(|| format!("bad network {s:?}, expected A.B.C.D/len"))?;
    let len: u8 = l.parse().map_err(|_| format!("bad prefix length {l:?}"))?;
    if len > 32 {
        return Err(format!("prefix length {len} > 32"));
    }
    Ok((parse_ip(a)?, len))
}

/// Click's `IPClassifier`: first matching expression wins; unmatched
/// packets (including non-IP frames against IP expressions) are dropped.
pub struct IpClassifier {
    exprs: Vec<IpExpr>,
    drops: u64,
}

impl Element for IpClassifier {
    fn class_name(&self) -> &'static str {
        "IPClassifier"
    }
    fn ports(&self) -> (usize, usize) {
        (1, self.exprs.len())
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        if let Ok(key) = FlowKey::extract(&pkt.data) {
            for (i, e) in self.exprs.iter().enumerate() {
                if e.matches(&key) {
                    ctx.emit(i, pkt);
                    return;
                }
            }
        }
        self.drops += 1;
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "drops" => Some(self.drops.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        90
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::router::Router;
    use bytes::Bytes;
    use escape_netem::Time;
    use escape_packet::{MacAddr, PacketBuilder};

    fn udp_frame(dport: u16) -> Packet {
        let data = PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4444,
            dport,
            Bytes::from_static(b"x"),
        );
        Packet {
            data,
            id: 0,
            born_ns: 0,
        }
    }

    fn arp_frame() -> Packet {
        let data = PacketBuilder::arp_request(
            MacAddr::from_id(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        Packet {
            data,
            id: 0,
            born_ns: 0,
        }
    }

    #[test]
    fn byte_pattern_parsing_and_matching() {
        let p = BytePattern::parse("12/0800").unwrap();
        assert!(p.matches(&udp_frame(53).data));
        assert!(!p.matches(&arp_frame().data));
        let any = BytePattern::parse("-").unwrap();
        assert!(any.matches(&[]));
        // Mask: match on high nibble only.
        let m = BytePattern::parse("0/a0%f0").unwrap();
        assert!(m.matches(&[0xab]));
        assert!(!m.matches(&[0xbb]));
    }

    #[test]
    fn byte_pattern_errors() {
        assert!(BytePattern::parse("12").is_err());
        assert!(BytePattern::parse("x/08").is_err());
        assert!(BytePattern::parse("0/123").is_err()); // odd hex
        assert!(BytePattern::parse("0/aa%ffff").is_err()); // mask len
    }

    #[test]
    fn classifier_routes_by_ethertype() {
        let mut r = Router::from_config(
            "FromDevice(0) -> c :: Classifier(12/0800, 12/0806); c [0] -> ToDevice(0); c [1] -> ToDevice(1);",
            &Registry::standard(),
            0,
        )
        .unwrap();
        let out = r.push_external(0, udp_frame(53), Time::ZERO);
        assert_eq!(out.external[0].0, 0);
        let out = r.push_external(0, arp_frame(), Time::ZERO);
        assert_eq!(out.external[0].0, 1);
    }

    #[test]
    fn classifier_drops_unmatched() {
        let mut r = Router::from_config(
            "FromDevice(0) -> c :: Classifier(12/86dd); c -> ToDevice(0);",
            &Registry::standard(),
            0,
        )
        .unwrap();
        let out = r.push_external(0, udp_frame(53), Time::ZERO);
        assert!(out.external.is_empty());
        assert_eq!(r.read_handler("c.drops").unwrap(), "1");
    }

    #[test]
    fn ip_expr_conjunctions() {
        let e = IpExpr::parse("udp and dst port 53").unwrap();
        assert!(e.matches(&udp_frame(53).flow_key().unwrap()));
        assert!(!e.matches(&udp_frame(80).flow_key().unwrap()));
        let e = IpExpr::parse("src host 10.0.0.1").unwrap();
        assert!(e.matches(&udp_frame(1).flow_key().unwrap()));
        let e = IpExpr::parse("host 10.0.0.2 and tcp").unwrap();
        assert!(!e.matches(&udp_frame(1).flow_key().unwrap()));
        let e = IpExpr::parse("dst net 10.0.0.0/8").unwrap();
        assert!(e.matches(&udp_frame(1).flow_key().unwrap()));
        let e = IpExpr::parse("dst net 11.0.0.0/8").unwrap();
        assert!(!e.matches(&udp_frame(1).flow_key().unwrap()));
        assert!(IpExpr::parse("port 4444")
            .unwrap()
            .matches(&udp_frame(1).flow_key().unwrap()));
    }

    #[test]
    fn ip_expr_errors() {
        assert!(IpExpr::parse("quic").is_err());
        assert!(IpExpr::parse("src host nothost").is_err());
        assert!(IpExpr::parse("dst net 10.0.0.0/40").is_err());
        assert!(IpExpr::parse("port many").is_err());
    }

    #[test]
    fn ip_classifier_routes_and_drops() {
        let mut r = Router::from_config(
            "FromDevice(0) -> c :: IPClassifier(udp and dst port 53, -); c [0] -> ToDevice(0); c [1] -> ToDevice(1);",
            &Registry::standard(),
            0,
        )
        .unwrap();
        assert_eq!(
            r.push_external(0, udp_frame(53), Time::ZERO).external[0].0,
            0
        );
        assert_eq!(
            r.push_external(0, udp_frame(80), Time::ZERO).external[0].0,
            1
        );
        assert_eq!(r.push_external(0, arp_frame(), Time::ZERO).external[0].0, 1);
        // catch-all
    }
}
