//! Device endpoints, counters, queues, tees, discard.

use super::args;
use crate::element::{ElemCtx, Element, HandlerError};
use crate::registry::Registry;
use escape_netem::Time;
use escape_packet::Packet;
use std::collections::VecDeque;

pub fn install(r: &mut Registry) {
    r.register("FromDevice", |a| {
        args::max(a, 1)?;
        let dev = args::req::<u16>(a, 0, "device number")?;
        Ok(Box::new(FromDevice { dev }))
    });
    r.register("ToDevice", |a| {
        args::max(a, 1)?;
        let dev = args::req::<u16>(a, 0, "device number")?;
        Ok(Box::new(ToDevice { dev, count: 0 }))
    });
    r.register("Counter", |a| {
        args::max(a, 0)?;
        Ok(Box::new(Counter::default()))
    });
    r.register("Discard", |a| {
        args::max(a, 0)?;
        Ok(Box::new(Discard { count: 0 }))
    });
    r.register("Tee", |a| {
        args::max(a, 1)?;
        let n = args::opt::<usize>(a, 0, 2)?;
        if n == 0 {
            return Err("Tee needs at least one output".into());
        }
        Ok(Box::new(Tee { n }))
    });
    r.register("Queue", |a| {
        args::max(a, 1)?;
        let cap = args::opt::<usize>(a, 0, 1000)?;
        if cap == 0 {
            return Err("capacity must be positive".into());
        }
        Ok(Box::new(Queue::new(cap)))
    });
    r.register("Unqueue", |a| {
        args::max(a, 1)?;
        let burst = args::opt::<usize>(a, 0, usize::MAX)?;
        Ok(Box::new(Unqueue { burst, moved: 0 }))
    });
    r.register("RatedUnqueue", |a| {
        args::max(a, 1)?;
        let rate: u64 = args::req(a, 0, "rate in packets/s")?;
        if rate == 0 {
            return Err("rate must be positive".into());
        }
        Ok(Box::new(RatedUnqueue {
            interval_ns: 1_000_000_000 / rate,
            next: None,
            moved: 0,
        }))
    });
}

/// Entry point for frames arriving on VNF device `dev`. The router feeds
/// arriving frames directly out of this element's single output.
pub struct FromDevice {
    pub dev: u16,
}

impl Element for FromDevice {
    fn class_name(&self) -> &'static str {
        "FromDevice"
    }
    fn ports(&self) -> (usize, usize) {
        (0, 1)
    }
    fn cost_ns(&self) -> u64 {
        30
    }
}

/// Exit point: pushes its input out of the VNF on device `dev`.
pub struct ToDevice {
    pub dev: u16,
    count: u64,
}

impl Element for ToDevice {
    fn class_name(&self) -> &'static str {
        "ToDevice"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 0)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        self.count += 1;
        ctx.emit_external(self.dev, pkt);
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.count.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        30
    }
}

/// Transparent packet/byte counter with a rate estimate.
#[derive(Default)]
pub struct Counter {
    count: u64,
    byte_count: u64,
    first: Option<Time>,
    last: Option<Time>,
}

impl Element for Counter {
    fn class_name(&self) -> &'static str {
        "Counter"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        self.count += 1;
        self.byte_count += pkt.len() as u64;
        let now = ctx.now();
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = Some(now);
        ctx.emit(0, pkt);
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.count.to_string()),
            "byte_count" => Some(self.byte_count.to_string()),
            "rate" => {
                // Mean packets/s between first and last packet.
                let (f, l) = (self.first?, self.last?);
                let span = l.since(f);
                if span == 0 || self.count < 2 {
                    Some("0".to_string())
                } else {
                    Some(format!(
                        "{:.1}",
                        (self.count - 1) as f64 * 1e9 / span as f64
                    ))
                }
            }
            "bit_rate" => {
                let (f, l) = (self.first?, self.last?);
                let span = l.since(f);
                if span == 0 || self.count < 2 {
                    Some("0".to_string())
                } else {
                    Some(format!(
                        "{:.0}",
                        self.byte_count as f64 * 8.0 * 1e9 / span as f64
                    ))
                }
            }
            _ => None,
        }
    }
    fn write_handler(&mut self, name: &str, _value: &str) -> Result<(), HandlerError> {
        match name {
            "reset" => {
                *self = Counter::default();
                Ok(())
            }
            other => Err(HandlerError::NoSuchHandler(other.to_string())),
        }
    }
    fn cost_ns(&self) -> u64 {
        20
    }
}

/// Drops everything, counting.
pub struct Discard {
    count: u64,
}

impl Element for Discard {
    fn class_name(&self) -> &'static str {
        "Discard"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 0)
    }
    fn push(&mut self, _ctx: &mut ElemCtx<'_>, _port: usize, _pkt: Packet) {
        self.count += 1;
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.count.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        10
    }
}

/// Duplicates each input packet to every output.
pub struct Tee {
    n: usize,
}

impl Element for Tee {
    fn class_name(&self) -> &'static str {
        "Tee"
    }
    fn ports(&self) -> (usize, usize) {
        (1, self.n)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        for out in 1..self.n {
            ctx.emit(out, pkt.clone());
        }
        ctx.emit(0, pkt);
    }
    fn cost_ns(&self) -> u64 {
        40
    }
}

/// A FIFO with a pull output and drop-tail semantics.
pub struct Queue {
    q: VecDeque<Packet>,
    cap: usize,
    drops: u64,
    highwater: usize,
}

impl Queue {
    fn new(cap: usize) -> Self {
        Queue {
            q: VecDeque::new(),
            cap,
            drops: 0,
            highwater: 0,
        }
    }
}

impl Element for Queue {
    fn class_name(&self) -> &'static str {
        "Queue"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn push(&mut self, ctx: &mut ElemCtx<'_>, _port: usize, pkt: Packet) {
        if self.q.len() >= self.cap {
            self.drops += 1;
            return;
        }
        let was_empty = self.q.is_empty();
        self.q.push_back(pkt);
        self.highwater = self.highwater.max(self.q.len());
        if was_empty {
            ctx.kick(0); // wake a dormant puller downstream
        }
    }
    fn pull(&mut self, _ctx: &mut ElemCtx<'_>, _port: usize) -> Option<Packet> {
        self.q.pop_front()
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "length" => Some(self.q.len().to_string()),
            "capacity" => Some(self.cap.to_string()),
            "drops" => Some(self.drops.to_string()),
            "highwater" => Some(self.highwater.to_string()),
            _ => None,
        }
    }
    fn write_handler(&mut self, name: &str, _value: &str) -> Result<(), HandlerError> {
        match name {
            "reset" => {
                self.q.clear();
                self.drops = 0;
                self.highwater = 0;
                Ok(())
            }
            other => Err(HandlerError::NoSuchHandler(other.to_string())),
        }
    }
    fn cost_ns(&self) -> u64 {
        25
    }
}

/// Moves packets from its pull input to its push output as soon as data is
/// available (woken by the upstream queue's notifier), up to `burst` per
/// wake.
pub struct Unqueue {
    burst: usize,
    moved: u64,
}

impl Unqueue {
    fn drain(&mut self, ctx: &mut ElemCtx<'_>) {
        for _ in 0..self.burst {
            match ctx.pull_from(0) {
                Some(pkt) => {
                    self.moved += 1;
                    ctx.emit(0, pkt);
                }
                None => break,
            }
        }
    }
}

impl Element for Unqueue {
    fn class_name(&self) -> &'static str {
        "Unqueue"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn notify(&mut self, ctx: &mut ElemCtx<'_>, _port: usize) {
        self.drain(ctx);
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.moved.to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        20
    }
}

/// Pulls one packet every `1/rate` seconds while the upstream has data;
/// goes dormant when a pull comes back empty and is re-armed by the
/// upstream queue's notifier.
pub struct RatedUnqueue {
    interval_ns: u64,
    next: Option<Time>,
    moved: u64,
}

impl Element for RatedUnqueue {
    fn class_name(&self) -> &'static str {
        "RatedUnqueue"
    }
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }
    fn notify(&mut self, ctx: &mut ElemCtx<'_>, _port: usize) {
        if self.next.is_none() {
            self.next = Some(ctx.now().add_ns(self.interval_ns));
        }
    }
    fn tick(&mut self, ctx: &mut ElemCtx<'_>) {
        match ctx.pull_from(0) {
            Some(pkt) => {
                self.moved += 1;
                ctx.emit(0, pkt);
                self.next = Some(ctx.now().add_ns(self.interval_ns));
            }
            None => self.next = None, // dormant until the queue kicks us
        }
    }
    fn next_wake(&self) -> Option<Time> {
        self.next
    }
    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.moved.to_string()),
            "rate" => Some((1_000_000_000 / self.interval_ns).to_string()),
            _ => None,
        }
    }
    fn cost_ns(&self) -> u64 {
        30
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;
    use crate::router::Router;
    use bytes::Bytes;
    use escape_netem::Time;
    use escape_packet::Packet;

    fn pkt(n: usize) -> Packet {
        Packet {
            data: Bytes::from(vec![0xaau8; n]),
            id: 0,
            born_ns: 0,
        }
    }

    fn mk(cfg: &str) -> Router {
        Router::from_config(cfg, &Registry::standard(), 0).unwrap()
    }

    #[test]
    fn counter_tracks_bytes_and_rate() {
        let mut r = mk("FromDevice(0) -> c :: Counter -> ToDevice(0);");
        r.push_external(0, pkt(100), Time::ZERO);
        r.push_external(0, pkt(100), Time::from_secs(1));
        assert_eq!(r.read_handler("c.count").unwrap(), "2");
        assert_eq!(r.read_handler("c.byte_count").unwrap(), "200");
        assert_eq!(r.read_handler("c.rate").unwrap(), "1.0");
        assert_eq!(r.read_handler("c.bit_rate").unwrap(), "1600");
    }

    #[test]
    fn queue_drops_when_full_and_reports() {
        let mut r = mk("FromDevice(0) -> q :: Queue(2); q -> Unqueue -> ToDevice(0);");
        // Unqueue drains immediately on each kick, so block it by pushing
        // before... Unqueue is eager: each push is drained at once.
        let out = r.push_external(0, pkt(10), Time::ZERO);
        assert_eq!(out.external.len(), 1, "eager unqueue forwards immediately");
    }

    #[test]
    fn queue_without_drainer_overflows() {
        // Queue pull output must be connected; use RatedUnqueue with a very
        // slow rate so nothing drains at t=0.
        let mut r = mk("FromDevice(0) -> q :: Queue(2); q -> RatedUnqueue(1) -> ToDevice(0);");
        for _ in 0..5 {
            r.push_external(0, pkt(10), Time::ZERO);
        }
        assert_eq!(r.read_handler("q.length").unwrap(), "2");
        assert_eq!(r.read_handler("q.drops").unwrap(), "3");
        assert_eq!(r.read_handler("q.highwater").unwrap(), "2");
    }

    #[test]
    fn rated_unqueue_paces_and_goes_dormant() {
        let mut r =
            mk("FromDevice(0) -> q :: Queue(10); q -> u :: RatedUnqueue(1000) -> ToDevice(0);");
        for _ in 0..3 {
            r.push_external(0, pkt(10), Time::ZERO);
        }
        // Drain: wakes at 1 ms, 2 ms, 3 ms; dormant check at 4 ms.
        let mut emitted = 0;
        while let Some(w) = r.next_wake() {
            emitted += r.tick(w).external.len();
        }
        assert_eq!(emitted, 3);
        assert!(r.next_wake().is_none(), "dormant after drain");
        // New arrival re-arms via the queue notifier.
        r.push_external(0, pkt(10), Time::from_ms(10));
        assert_eq!(r.next_wake(), Some(Time::from_ms(11)));
    }

    #[test]
    fn tee_clones_preserve_content() {
        let mut r = mk(
            "FromDevice(0) -> t :: Tee(3); t [0] -> ToDevice(0); t [1] -> ToDevice(1); t [2] -> d :: Discard;",
        );
        let out = r.push_external(0, pkt(10), Time::ZERO);
        assert_eq!(out.external.len(), 2);
        assert_eq!(r.read_handler("d.count").unwrap(), "1");
    }

    #[test]
    fn discard_counts() {
        let mut r = mk("FromDevice(0) -> d :: Discard;");
        for _ in 0..7 {
            r.push_external(0, pkt(10), Time::ZERO);
        }
        assert_eq!(r.read_handler("d.count").unwrap(), "7");
    }

    #[test]
    fn unqueue_burst_limits_per_wake() {
        let mut r = mk("FromDevice(0) -> q :: Queue(10); q -> u :: Unqueue(1) -> ToDevice(0);");
        // Each push kicks only on empty->nonempty; with burst 1 the queue
        // retains the backlog.
        let o1 = r.push_external(0, pkt(10), Time::ZERO);
        assert_eq!(o1.external.len(), 1);
        let o2 = r.push_external(0, pkt(10), Time::ZERO);
        // Queue was empty again (drained), so this also forwards.
        assert_eq!(o2.external.len(), 1);
    }

    #[test]
    fn bad_factory_args_are_errors() {
        let reg = Registry::standard();
        assert!(Router::from_config(
            "q :: Queue(0); FromDevice(0) -> q; q -> Unqueue -> ToDevice(0);",
            &reg,
            0
        )
        .is_err());
        assert!(Router::from_config("u :: RatedUnqueue(0);", &reg, 0).is_err());
        assert!(Router::from_config("t :: Tee(0);", &reg, 0).is_err());
        assert!(Router::from_config("f :: FromDevice(notanumber);", &reg, 0).is_err());
    }
}
