//! The compiled router: elements wired per a parsed configuration.

use crate::element::{Effect, ElemCtx, Element};
use crate::lang::{parse_config, ConfigError, ParsedConfig};
use crate::registry::Registry;
use escape_netem::Time;
use escape_packet::Packet;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Result of feeding work into a router: frames leaving the VNF and the
/// CPU nanoseconds the processing consumed.
#[derive(Debug, Default)]
pub struct RouterOutput {
    /// Frames emitted by `ToDevice(dev)` elements, in emission order.
    pub external: Vec<(u16, Packet)>,
    /// CPU cost of this processing step.
    pub work_ns: u64,
    /// Element names traversed by pushed frames, in traversal order.
    /// Populated only when [`Router::trace_paths`] is set; pull-side
    /// traversal (e.g. `RatedUnqueue` draining a `Queue`) is not
    /// recorded.
    pub path: Vec<String>,
}

/// A running Click router (one VNF instance).
pub struct Router {
    names: Vec<String>,
    classes: Vec<String>,
    pub(crate) elements: Vec<Option<Box<dyn Element>>>,
    /// `out_conns[e][p]` = the (element, input port) that output `p` of
    /// element `e` feeds.
    out_conns: Vec<Vec<Option<(usize, usize)>>>,
    /// `in_conns[e][p]` = the (element, output port) feeding input `p` of
    /// element `e` (for pull resolution; last connection wins).
    in_conns: Vec<Vec<Option<(usize, usize)>>>,
    /// Device number -> FromDevice element index.
    from_device: HashMap<u16, usize>,
    name_index: HashMap<String, usize>,
    pub(crate) pending: VecDeque<Effect>,
    pub(crate) rng: SmallRng,
    pub(crate) work_acc: u64,
    now: Time,
    /// Packets dropped because they reached an unconnected output port.
    pub dead_ends: u64,
    /// When set, [`RouterOutput::path`] lists the elements each call
    /// pushed frames through — the flight recorder's per-element view.
    pub trace_paths: bool,
}

/// Hard cap on effects processed per external call; a mis-configured push
/// loop terminates instead of spinning forever.
const MAX_EFFECTS_PER_CALL: usize = 100_000;

impl Router {
    /// Parses `config` and compiles it against `registry`.
    pub fn from_config(
        config: &str,
        registry: &Registry,
        seed: u64,
    ) -> Result<Router, ConfigError> {
        let parsed = parse_config(config)?;
        Self::from_parsed(&parsed, registry, seed)
    }

    /// Compiles an already-parsed configuration.
    pub fn from_parsed(
        parsed: &ParsedConfig,
        registry: &Registry,
        seed: u64,
    ) -> Result<Router, ConfigError> {
        let mut names = Vec::new();
        let mut classes = Vec::new();
        let mut elements: Vec<Option<Box<dyn Element>>> = Vec::new();
        let mut name_index = HashMap::new();
        let mut from_device = HashMap::new();
        for d in &parsed.decls {
            let elem = registry.build(&d.class, &d.args, d.line)?;
            let idx = elements.len();
            if d.class == "FromDevice" {
                let dev: u16 = d
                    .args
                    .first()
                    .and_then(|a| a.parse().ok())
                    .ok_or(ConfigError {
                        line: d.line,
                        message: "FromDevice requires a device number".into(),
                    })?;
                if from_device.insert(dev, idx).is_some() {
                    return Err(ConfigError {
                        line: d.line,
                        message: format!("duplicate FromDevice({dev})"),
                    });
                }
            }
            name_index.insert(d.name.clone(), idx);
            names.push(d.name.clone());
            classes.push(d.class.clone());
            elements.push(Some(elem));
        }

        let mut out_conns: Vec<Vec<Option<(usize, usize)>>> = elements
            .iter()
            .map(|e| vec![None; e.as_deref().unwrap().ports().1])
            .collect();
        let mut in_conns: Vec<Vec<Option<(usize, usize)>>> = elements
            .iter()
            .map(|e| vec![None; e.as_deref().unwrap().ports().0])
            .collect();

        for c in &parsed.conns {
            let from = *name_index.get(&c.from).ok_or_else(|| ConfigError {
                line: c.line,
                message: format!("unknown element '{}'", c.from),
            })?;
            let to = *name_index.get(&c.to).ok_or_else(|| ConfigError {
                line: c.line,
                message: format!("unknown element '{}'", c.to),
            })?;
            let out_slot = out_conns[from]
                .get_mut(c.from_port)
                .ok_or_else(|| ConfigError {
                    line: c.line,
                    message: format!("'{}' has no output port {}", c.from, c.from_port),
                })?;
            if out_slot.is_some() {
                return Err(ConfigError {
                    line: c.line,
                    message: format!("output port {}[{}] connected twice", c.from, c.from_port),
                });
            }
            *out_slot = Some((to, c.to_port));
            let in_slot = in_conns[to].get_mut(c.to_port).ok_or_else(|| ConfigError {
                line: c.line,
                message: format!("'{}' has no input port {}", c.to, c.to_port),
            })?;
            *in_slot = Some((from, c.from_port));
        }

        // Every output port must be wired — Click errors on dangling
        // outputs, and so do we (a silent drop hides config bugs).
        for (e, conns) in out_conns.iter().enumerate() {
            for (p, slot) in conns.iter().enumerate() {
                if slot.is_none() {
                    return Err(ConfigError {
                        line: 0,
                        message: format!("output port {}[{}] is unconnected", names[e], p),
                    });
                }
            }
        }

        Ok(Router {
            names,
            classes,
            elements,
            out_conns,
            in_conns,
            from_device,
            name_index,
            pending: VecDeque::new(),
            rng: SmallRng::seed_from_u64(seed),
            work_acc: 0,
            now: Time::ZERO,
            dead_ends: 0,
            trace_paths: false,
        })
    }

    /// Current virtual time as last told to the router.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Element names in declaration order.
    pub fn element_names(&self) -> &[String] {
        &self.names
    }

    /// Class of a named element.
    pub fn class_of(&self, name: &str) -> Option<&str> {
        self.name_index.get(name).map(|&i| self.classes[i].as_str())
    }

    /// Devices with a `FromDevice` entry point.
    pub fn input_devices(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.from_device.keys().copied().collect();
        v.sort_unstable();
        v
    }

    pub(crate) fn upstream_of(&self, elem: usize, in_port: usize) -> Option<(usize, usize)> {
        self.in_conns.get(elem)?.get(in_port).copied().flatten()
    }

    /// Feeds a frame that arrived on VNF device `dev` into the
    /// configuration at virtual time `now`.
    pub fn push_external(&mut self, dev: u16, pkt: Packet, now: Time) -> RouterOutput {
        self.now = now;
        self.work_acc = 0;
        let mut out = RouterOutput::default();
        let Some(&entry) = self.from_device.get(&dev) else {
            // Frame to a device with no FromDevice: dropped, like a NIC
            // with no reader.
            self.dead_ends += 1;
            return out;
        };
        // FromDevice immediately forwards out of its single output.
        self.work_acc += self.elements[entry].as_deref().map_or(0, |e| e.cost_ns());
        if self.trace_paths {
            out.path.push(self.names[entry].clone());
        }
        self.pending.push_back(Effect::Downstream {
            from_elem: entry,
            from_port: 0,
            pkt,
        });
        self.drain(&mut out);
        out.work_ns = self.work_acc;
        out
    }

    /// Advances time and runs every element whose wake time has arrived.
    pub fn tick(&mut self, now: Time) -> RouterOutput {
        self.now = now;
        self.work_acc = 0;
        let mut out = RouterOutput::default();
        for idx in 0..self.elements.len() {
            let due = self.elements[idx]
                .as_deref()
                .and_then(|e| e.next_wake())
                .is_some_and(|t| t <= now);
            if due {
                self.with_element(idx, 0, |e, ctx| e.tick(ctx));
            }
        }
        self.drain(&mut out);
        out.work_ns = self.work_acc;
        out
    }

    /// The earliest wake time any element wants, if any.
    pub fn next_wake(&self) -> Option<Time> {
        self.elements
            .iter()
            .filter_map(|e| e.as_deref().and_then(|e| e.next_wake()))
            .min()
    }

    /// Runs one element via the take-out pattern.
    fn with_element<R>(
        &mut self,
        idx: usize,
        depth: usize,
        f: impl FnOnce(&mut Box<dyn Element>, &mut ElemCtx<'_>) -> R,
    ) -> Option<R> {
        let mut e = self.elements[idx].take()?;
        let mut ctx = ElemCtx {
            router: self,
            elem_idx: idx,
            depth,
        };
        let r = f(&mut e, &mut ctx);
        self.elements[idx] = Some(e);
        Some(r)
    }

    pub(crate) fn pull_at(&mut self, elem: usize, out_port: usize, depth: usize) -> Option<Packet> {
        let cost = self.elements[elem].as_deref().map_or(0, |e| e.cost_ns());
        let pkt = self.with_element(elem, depth, |e, ctx| e.pull(ctx, out_port))??;
        self.work_acc += cost;
        Some(pkt)
    }

    fn drain(&mut self, out: &mut RouterOutput) {
        let mut budget = MAX_EFFECTS_PER_CALL;
        while let Some(effect) = self.pending.pop_front() {
            if budget == 0 {
                // Runaway loop: drop the remaining work.
                self.pending.clear();
                break;
            }
            budget -= 1;
            match effect {
                Effect::External { dev, pkt } => out.external.push((dev, pkt)),
                Effect::Downstream {
                    from_elem,
                    from_port,
                    pkt,
                } => {
                    let Some(&Some((dst, dport))) =
                        self.out_conns.get(from_elem).and_then(|c| c.get(from_port))
                    else {
                        self.dead_ends += 1;
                        continue;
                    };
                    let cost = self.elements[dst].as_deref().map_or(0, |e| e.cost_ns());
                    self.work_acc += cost;
                    if self.trace_paths {
                        out.path.push(self.names[dst].clone());
                    }
                    self.with_element(dst, 0, |e, ctx| e.push(ctx, dport, pkt));
                }
                Effect::Notify {
                    from_elem,
                    from_port,
                } => {
                    let Some(&Some((dst, dport))) =
                        self.out_conns.get(from_elem).and_then(|c| c.get(from_port))
                    else {
                        continue;
                    };
                    self.with_element(dst, 0, |e, ctx| e.notify(ctx, dport));
                }
            }
        }
    }

    /// Reads handler `spec` of the form `element.handler`.
    pub fn read_handler(&self, spec: &str) -> Option<String> {
        let (name, handler) = spec.split_once('.')?;
        let &idx = self.name_index.get(name)?;
        self.elements[idx].as_deref()?.read_handler(handler)
    }

    /// Writes handler `spec` of the form `element.handler`.
    pub fn write_handler(&mut self, spec: &str, value: &str) -> Result<(), String> {
        let (name, handler) = spec
            .split_once('.')
            .ok_or("handler spec must be element.handler")?;
        let &idx = self
            .name_index
            .get(name)
            .ok_or_else(|| format!("no element '{name}'"))?;
        self.elements[idx]
            .as_deref_mut()
            .ok_or("element busy")?
            .write_handler(handler, value)
            .map_err(|e| e.to_string())
    }

    /// Lists `element.handler` pairs that currently read as non-None, with
    /// their values — the "Clicky" live view of a VNF.
    pub fn snapshot_handlers(&self, handlers: &[&str]) -> Vec<(String, String)> {
        let mut v = Vec::new();
        for (i, e) in self.elements.iter().enumerate() {
            let Some(e) = e.as_deref() else { continue };
            for h in handlers {
                if let Some(val) = e.read_handler(h) {
                    v.push((format!("{}.{}", self.names[i], h), val));
                }
            }
        }
        v
    }

    /// Typed access to a named element (e.g. for tests).
    pub fn element_as<T: Element + 'static>(&self, name: &str) -> Option<&T> {
        let &idx = self.name_index.get(name)?;
        self.elements[idx].as_deref()?.as_any().downcast_ref::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt(n: usize) -> Packet {
        Packet {
            data: Bytes::from(vec![0u8; n]),
            id: 1,
            born_ns: 0,
        }
    }

    fn mk(cfg: &str) -> Router {
        Router::from_config(cfg, &Registry::standard(), 1).unwrap()
    }

    #[test]
    fn passthrough_config_forwards() {
        let mut r = mk("FromDevice(0) -> cnt :: Counter -> ToDevice(1);");
        let out = r.push_external(0, pkt(100), Time::ZERO);
        assert_eq!(out.external.len(), 1);
        assert_eq!(out.external[0].0, 1);
        assert_eq!(r.read_handler("cnt.count").unwrap(), "1");
        assert!(out.work_ns > 0);
    }

    #[test]
    fn frame_to_unknown_device_is_dropped() {
        let mut r = mk("FromDevice(0) -> ToDevice(0);");
        let out = r.push_external(7, pkt(100), Time::ZERO);
        assert!(out.external.is_empty());
        assert_eq!(r.dead_ends, 1);
    }

    #[test]
    fn unconnected_output_port_is_a_config_error() {
        let err = Router::from_config("c :: Counter;", &Registry::standard(), 0)
            .err()
            .unwrap();
        assert!(err.message.contains("unconnected"), "{}", err.message);
    }

    #[test]
    fn unknown_class_is_a_config_error() {
        let err = Router::from_config("x :: NoSuchThing; x -> x;", &Registry::standard(), 0)
            .err()
            .unwrap();
        assert!(err.message.contains("NoSuchThing"));
    }

    #[test]
    fn double_connected_output_is_rejected() {
        let err = Router::from_config(
            "f :: FromDevice(0); a :: Discard; b :: Discard; f -> a; f -> b;",
            &Registry::standard(),
            0,
        )
        .err()
        .unwrap();
        assert!(err.message.contains("connected twice"));
    }

    #[test]
    fn tee_duplicates_to_both_devices() {
        let mut r = mk("FromDevice(0) -> t :: Tee(2); t [0] -> ToDevice(0); t [1] -> ToDevice(1);");
        let out = r.push_external(0, pkt(60), Time::ZERO);
        let mut devs: Vec<u16> = out.external.iter().map(|(d, _)| *d).collect();
        devs.sort_unstable();
        assert_eq!(devs, vec![0, 1]);
    }

    #[test]
    fn queue_holds_until_unqueue_ticks() {
        let mut r =
            mk("FromDevice(0) -> q :: Queue(10); q -> u :: RatedUnqueue(1000); u -> ToDevice(0);");
        let out = r.push_external(0, pkt(60), Time::ZERO);
        assert!(out.external.is_empty(), "queued, not forwarded");
        assert_eq!(r.read_handler("q.length").unwrap(), "1");
        // RatedUnqueue at 1000 pps wakes every 1 ms.
        let wake = r.next_wake().unwrap();
        assert_eq!(wake, Time::from_ms(1));
        let out = r.tick(wake);
        assert_eq!(out.external.len(), 1);
        assert_eq!(r.read_handler("q.length").unwrap(), "0");
    }

    #[test]
    fn handler_snapshot_lists_counters() {
        let mut r = mk("FromDevice(0) -> a :: Counter -> b :: Counter -> ToDevice(0);");
        r.push_external(0, pkt(60), Time::ZERO);
        let snap = r.snapshot_handlers(&["count"]);
        assert!(snap.contains(&("a.count".to_string(), "1".to_string())));
        assert!(snap.contains(&("b.count".to_string(), "1".to_string())));
    }

    #[test]
    fn write_handler_resets_counter() {
        let mut r = mk("FromDevice(0) -> c :: Counter -> ToDevice(0);");
        r.push_external(0, pkt(60), Time::ZERO);
        assert_eq!(r.read_handler("c.count").unwrap(), "1");
        r.write_handler("c.reset", "").unwrap();
        assert_eq!(r.read_handler("c.count").unwrap(), "0");
    }

    #[test]
    fn trace_paths_records_element_traversal_order() {
        let mut r = mk("FromDevice(0) -> a :: Counter -> b :: Counter -> ToDevice(1);");
        r.trace_paths = true;
        let out = r.push_external(0, pkt(60), Time::ZERO);
        // Anonymous FromDevice/ToDevice get generated names; the named
        // counters must appear in push order between them.
        let named: Vec<&str> = out
            .path
            .iter()
            .map(|s| s.as_str())
            .filter(|s| *s == "a" || *s == "b")
            .collect();
        assert_eq!(named, vec!["a", "b"]);
        assert_eq!(out.external.len(), 1);
        // Off by default: no path collection.
        r.trace_paths = false;
        let out = r.push_external(0, pkt(60), Time::ZERO);
        assert!(out.path.is_empty());
    }

    #[test]
    fn input_devices_are_listed() {
        let r = mk("FromDevice(2) -> ToDevice(0); FromDevice(5) -> ToDevice(1);");
        assert_eq!(r.input_devices(), vec![2, 5]);
    }

    #[test]
    fn duplicate_from_device_rejected() {
        let err = Router::from_config(
            "FromDevice(0) -> Discard; FromDevice(0) -> Discard;",
            &Registry::standard(),
            0,
        )
        .err()
        .unwrap();
        assert!(err.message.contains("duplicate FromDevice"));
    }
}
