//! The Click configuration language.
//!
//! Supported syntax (the subset real-world simple configs use, which is
//! what ESCAPE's VNF catalog needs):
//!
//! ```text
//! // comment        /* block comment */
//! src :: FromDevice(0);          // declaration
//! cnt :: Counter;                // declaration without arguments
//! src -> cnt -> ToDevice(0);     // chain with an anonymous element
//! cls [1] -> [0] q;              // explicit output and input ports
//! ```
//!
//! Rules, matching Click:
//! * `name :: Class(args)` declares an element; arguments are split on
//!   top-level commas (quotes and nested parentheses are respected);
//! * in a connection chain, `[n]` *after* an element selects its output
//!   port and `[n]` *before* an element selects its input port (default 0);
//! * a chain may instantiate elements inline — `Class(args)` or a bare
//!   capitalized class name — which get generated names `Class@k`;
//! * every output port must be connected exactly once.

/// A parse or elaboration error, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A declared element instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    pub name: String,
    pub class: String,
    pub args: Vec<String>,
    pub line: usize,
}

/// A directed connection between element ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conn {
    pub from: String,
    pub from_port: usize,
    pub to: String,
    pub to_port: usize,
    pub line: usize,
}

/// The result of parsing: declarations (including generated anonymous
/// ones) plus connections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedConfig {
    pub decls: Vec<Decl>,
    pub conns: Vec<Conn>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(usize),
    Args(Vec<String>), // parenthesized argument list
    ColonColon,
    Arrow,
    LBracket,
    RBracket,
    Semi,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ConfigError {
        ConfigError {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if c == Some(b'\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), ConfigError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Reads a balanced parenthesized argument list, starting after `(`.
    /// Splits on top-level commas; respects quotes and nesting.
    fn read_args(&mut self) -> Result<Vec<String>, ConfigError> {
        let mut args = Vec::new();
        let mut cur = String::new();
        let mut depth = 1usize;
        let mut in_quote = false;
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated argument list"));
            };
            match c {
                b'"' => {
                    in_quote = !in_quote;
                    cur.push('"');
                }
                b'(' if !in_quote => {
                    depth += 1;
                    cur.push('(');
                }
                b')' if !in_quote => {
                    depth -= 1;
                    if depth == 0 {
                        let t = cur.trim().to_string();
                        if !t.is_empty() || !args.is_empty() {
                            args.push(t);
                        }
                        // An empty "()" yields no arguments at all.
                        if args.len() == 1 && args[0].is_empty() {
                            args.clear();
                        }
                        return Ok(args);
                    }
                    cur.push(')');
                }
                b',' if !in_quote && depth == 1 => {
                    args.push(cur.trim().to_string());
                    cur.clear();
                }
                _ => cur.push(c as char),
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>, ConfigError> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b':' if self.peek2() == Some(b':') => {
                self.bump();
                self.bump();
                Tok::ColonColon
            }
            b'-' if self.peek2() == Some(b'>') => {
                self.bump();
                self.bump();
                Tok::Arrow
            }
            b'[' => {
                self.bump();
                Tok::LBracket
            }
            b']' => {
                self.bump();
                Tok::RBracket
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'(' => {
                self.bump();
                Tok::Args(self.read_args()?)
            }
            b'0'..=b'9' => {
                let mut n = 0usize;
                while let Some(d) = self.peek() {
                    if d.is_ascii_digit() {
                        n = n * 10 + (d - b'0') as usize;
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Num(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(d) = self.peek() {
                    if d.is_ascii_alphanumeric() || d == b'_' || d == b'@' {
                        s.push(d as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some((tok, line)))
    }
}

/// One endpoint of a connection as written in the source.
struct Endpoint {
    in_port: usize,
    name: String,
    out_port: usize,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    cfg: ParsedConfig,
    anon_counter: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ConfigError {
        ConfigError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn is_declared(&self, name: &str) -> bool {
        self.cfg.decls.iter().any(|d| d.name == name)
    }

    /// Parses one endpoint; declares anonymous/inline elements as needed.
    fn endpoint(&mut self) -> Result<Endpoint, ConfigError> {
        let line = self.line();
        let mut in_port = 0usize;
        if matches!(self.peek(), Some(Tok::LBracket)) {
            self.bump();
            let Some(Tok::Num(n)) = self.bump() else {
                return Err(self.err("expected port number after '['"));
            };
            let Some(Tok::RBracket) = self.bump() else {
                return Err(self.err("expected ']'"));
            };
            in_port = n;
        }
        let Some(Tok::Ident(first)) = self.bump() else {
            return Err(self.err("expected element name or class"));
        };
        let name;
        // `first :: Class(args)` inline declaration?
        if matches!(self.peek(), Some(Tok::ColonColon)) {
            self.bump();
            let Some(Tok::Ident(class)) = self.bump() else {
                return Err(self.err("expected class name after '::'"));
            };
            let args = if let Some(Tok::Args(_)) = self.peek() {
                match self.bump() {
                    Some(Tok::Args(a)) => a,
                    _ => unreachable!(),
                }
            } else {
                Vec::new()
            };
            if self.is_declared(&first) {
                return Err(self.err(format!("duplicate element name '{first}'")));
            }
            self.cfg.decls.push(Decl {
                name: first.clone(),
                class,
                args,
                line,
            });
            name = first;
        } else if let Some(Tok::Args(_)) = self.peek() {
            // Anonymous `Class(args)`.
            let args = match self.bump() {
                Some(Tok::Args(a)) => a,
                _ => unreachable!(),
            };
            let gen = format!("{}@{}", first, self.anon_counter);
            self.anon_counter += 1;
            self.cfg.decls.push(Decl {
                name: gen.clone(),
                class: first,
                args,
                line,
            });
            name = gen;
        } else if self.is_declared(&first) {
            name = first;
        } else {
            // Bare capitalized identifier: anonymous element with no args.
            let gen = format!("{}@{}", first, self.anon_counter);
            self.anon_counter += 1;
            self.cfg.decls.push(Decl {
                name: gen.clone(),
                class: first,
                args: Vec::new(),
                line,
            });
            name = gen;
        }
        let mut out_port = 0usize;
        if matches!(self.peek(), Some(Tok::LBracket)) {
            self.bump();
            let Some(Tok::Num(n)) = self.bump() else {
                return Err(self.err("expected port number after '['"));
            };
            let Some(Tok::RBracket) = self.bump() else {
                return Err(self.err("expected ']'"));
            };
            out_port = n;
        }
        Ok(Endpoint {
            in_port,
            name,
            out_port,
        })
    }

    fn statement(&mut self) -> Result<(), ConfigError> {
        let line = self.line();
        let first = self.endpoint()?;
        match self.peek() {
            Some(Tok::Semi) => {
                // Pure declaration statement.
                self.bump();
                Ok(())
            }
            Some(Tok::Arrow) => {
                let mut prev = first;
                while matches!(self.peek(), Some(Tok::Arrow)) {
                    self.bump();
                    let next = self.endpoint()?;
                    self.cfg.conns.push(Conn {
                        from: prev.name.clone(),
                        from_port: prev.out_port,
                        to: next.name.clone(),
                        to_port: next.in_port,
                        line,
                    });
                    prev = next;
                }
                match self.bump() {
                    Some(Tok::Semi) => Ok(()),
                    _ => Err(self.err("expected ';' after connection")),
                }
            }
            _ => Err(self.err("expected '->' or ';'")),
        }
    }
}

/// Parses a Click configuration into declarations and connections.
pub fn parse_config(src: &str) -> Result<ParsedConfig, ConfigError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lx.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser {
        toks,
        pos: 0,
        cfg: ParsedConfig::default(),
        anon_counter: 0,
    };
    while p.peek().is_some() {
        p.statement()?;
    }
    Ok(p.cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_and_chain() {
        let cfg = parse_config(
            "// demo\n\
             src :: FromDevice(0);\n\
             cnt :: Counter;\n\
             src -> cnt -> ToDevice(0);\n",
        )
        .unwrap();
        assert_eq!(cfg.decls.len(), 3); // src, cnt, anonymous ToDevice
        assert_eq!(cfg.decls[0].class, "FromDevice");
        assert_eq!(cfg.decls[0].args, vec!["0"]);
        assert_eq!(cfg.conns.len(), 2);
        assert_eq!(cfg.conns[0].from, "src");
        assert_eq!(cfg.conns[1].to, "ToDevice@0");
    }

    #[test]
    fn explicit_ports() {
        let cfg = parse_config(
            "c :: Classifier(12/0800, 12/0806, -);\n\
             a :: Discard; b :: Discard; d :: Discard;\n\
             c [0] -> a; c [1] -> b; c [2] -> d;\n",
        )
        .unwrap();
        assert_eq!(cfg.conns[1].from_port, 1);
        assert_eq!(cfg.conns[2].from_port, 2);
        // Args with '/' content survive as raw strings.
        assert_eq!(cfg.decls[0].args, vec!["12/0800", "12/0806", "-"]);
    }

    #[test]
    fn input_ports_before_names() {
        let cfg = parse_config("a :: Tee(2); b :: Join2; a [0] -> [0] b; a [1] -> [1] b;").unwrap();
        assert_eq!(cfg.conns[0].to_port, 0);
        assert_eq!(cfg.conns[1].to_port, 1);
    }

    #[test]
    fn inline_declaration_in_chain() {
        let cfg =
            parse_config("FromDevice(0) -> q :: Queue(100) -> Unqueue -> ToDevice(0);").unwrap();
        assert!(cfg
            .decls
            .iter()
            .any(|d| d.name == "q" && d.class == "Queue"));
        assert!(cfg.decls.iter().any(|d| d.class == "Unqueue"));
        assert_eq!(cfg.conns.len(), 3);
    }

    #[test]
    fn quoted_and_nested_args() {
        let cfg =
            parse_config(r#"m :: StringMatcher("attack, or not", 7); m -> Discard;"#).unwrap();
        assert_eq!(cfg.decls[0].args[0], r#""attack, or not""#);
        assert_eq!(cfg.decls[0].args[1], "7");
    }

    #[test]
    fn block_comments_are_skipped() {
        let cfg = parse_config("/* a -> b; */ x :: Discard;").unwrap();
        assert_eq!(cfg.decls.len(), 1);
        assert!(cfg.conns.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = parse_config("a :: Discard; a :: Counter;").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse_config("a :: Discard;\n%%%").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unterminated_args_rejected() {
        assert!(parse_config("a :: Foo(1, 2").is_err());
        assert!(parse_config("/* never closed").is_err());
    }

    #[test]
    fn missing_semicolon_rejected() {
        assert!(parse_config("a :: Discard").is_err());
        assert!(parse_config("a :: Discard; b :: Discard; a -> b").is_err());
    }

    #[test]
    fn empty_config_is_ok() {
        let cfg = parse_config("  \n// nothing\n").unwrap();
        assert!(cfg.decls.is_empty() && cfg.conns.is_empty());
    }

    #[test]
    fn reuse_of_declared_name_does_not_redeclare() {
        let cfg = parse_config("a :: Counter; b :: Discard; a -> b; a -> b;").unwrap();
        assert_eq!(cfg.decls.len(), 2);
        assert_eq!(cfg.conns.len(), 2);
    }
}
