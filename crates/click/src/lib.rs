//! # escape-click
//!
//! A Click modular router engine — the VNF substrate of ESCAPE-RS.
//!
//! In the paper, VNFs are Click configurations: graphs of small packet
//! processing elements wired together by the Click language and managed
//! through read/write handlers. This crate reimplements that model:
//!
//! * the [`element::Element`] trait: push/pull ports, handlers, scheduled
//!   tasks and a per-packet CPU cost (fed into the emulator's cgroup
//!   model);
//! * the Click configuration language ([`lang`]): `name :: Class(args);`
//!   declarations, `a [1] -> [0] b` connections with implicit ports,
//!   anonymous elements in chains, comments;
//! * a [`router::Router`] that compiles a parsed config against an element
//!   [`registry::Registry`] and processes packets deterministically;
//! * a standard element library ([`elements`]) sufficient to express the
//!   VNF catalog: classifiers, queues, rate limiters, NAT, firewall
//!   filters, DPI string matching, counters, sources and sinks;
//! * read/write handlers addressed as `element.handler` — the mechanism
//!   behind the paper's "monitor the VNFs with Clicky" demo step.
//!
//! Packets enter a router through `FromDevice(N)` elements and leave
//! through `ToDevice(N)` elements; the integer `N` is the VNF container
//! port the frame arrived on / departs from.

pub mod element;
pub mod elements;
pub mod lang;
pub mod registry;
pub mod router;

pub use element::{ElemCtx, Element, HandlerError};
pub use lang::{parse_config, ConfigError, ParsedConfig};
pub use registry::Registry;
pub use router::Router;
