//! Property tests for the Click engine: parser robustness, generated
//! config round trips, classifier semantics, element invariants.

use escape_click::{parse_config, Registry, Router};
use escape_netem::Time;
use escape_packet::Packet;
use proptest::prelude::*;

/// Generates syntactically valid Click configs: a random linear pipeline
/// of transparent elements between FromDevice(0) and ToDevice(0).
fn arb_pipeline() -> impl Strategy<Value = String> {
    let stage = prop_oneof![
        Just("Counter".to_string()),
        Just("Tee(1)".to_string()),
        (1u32..64).prop_map(|n| format!("Queue({n}) -> Unqueue")),
        Just("CheckIPHeader".to_string()),
        Just("DecIPTTL".to_string()),
        (0u8..64).prop_map(|d| format!("SetIPDSCP({d})")),
        Just("RandomSample(1.0)".to_string()),
    ];
    proptest::collection::vec(stage, 0..6).prop_map(|stages| {
        let mut cfg = String::from("FromDevice(0)");
        for s in &stages {
            cfg.push_str(" -> ");
            cfg.push_str(s);
        }
        cfg.push_str(" -> ToDevice(0);");
        cfg
    })
}

fn udp_packet() -> Packet {
    let data = escape_packet::PacketBuilder::udp(
        escape_packet::MacAddr::from_id(1),
        escape_packet::MacAddr::from_id(2),
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        std::net::Ipv4Addr::new(10, 0, 0, 2),
        100,
        200,
        bytes::Bytes::from_static(b"prop"),
    );
    Packet {
        data,
        id: 1,
        born_ns: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse_config(&src);
    }

    /// The parser never panics on inputs biased toward Click syntax.
    #[test]
    fn parser_never_panics_clicky(src in "[a-zA-Z0-9_:;()\\[\\]>, \\n/*-]{0,200}") {
        let _ = parse_config(&src);
    }

    /// Every generated pipeline compiles, and a valid UDP frame pushed
    /// in either exits exactly once on device 0 or is absorbed by a
    /// pacing element — never duplicated.
    #[test]
    fn pipelines_conserve_packets(cfg in arb_pipeline()) {
        let mut r = Router::from_config(&cfg, &Registry::standard(), 1).unwrap();
        let mut emitted = r.push_external(0, udp_packet(), Time::ZERO).external.len();
        // Drain any pacing elements.
        let mut guard = 0;
        while let Some(w) = r.next_wake() {
            emitted += r.tick(w).external.len();
            guard += 1;
            if guard > 100 { break; }
        }
        prop_assert!(emitted <= 1, "duplicated packet in {cfg}");
        // With all-transparent stages (our generator picks only pass
        // elements and RandomSample(1.0)), it must come out.
        prop_assert_eq!(emitted, 1, "lost packet in {}", cfg);
    }

    /// A parsed config's connections only reference declared elements.
    #[test]
    fn parsed_connections_are_closed(cfg in arb_pipeline()) {
        let parsed = parse_config(&cfg).unwrap();
        for c in &parsed.conns {
            prop_assert!(parsed.decls.iter().any(|d| d.name == c.from));
            prop_assert!(parsed.decls.iter().any(|d| d.name == c.to));
        }
    }

    /// Counter's byte_count equals packets * frame length for uniform
    /// traffic, regardless of count.
    #[test]
    fn counter_arithmetic(n in 1usize..50) {
        let mut r = Router::from_config(
            "FromDevice(0) -> c :: Counter -> ToDevice(0);",
            &Registry::standard(),
            0,
        )
        .unwrap();
        let pkt = udp_packet();
        let len = pkt.len();
        for _ in 0..n {
            r.push_external(0, pkt.clone(), Time::ZERO);
        }
        prop_assert_eq!(r.read_handler("c.count").unwrap(), n.to_string());
        prop_assert_eq!(r.read_handler("c.byte_count").unwrap(), (n * len).to_string());
    }

    /// Queue never exceeds its capacity and never loses count of drops.
    #[test]
    fn queue_capacity_invariant(cap in 1usize..32, n in 1usize..100) {
        let mut r = Router::from_config(
            &format!("FromDevice(0) -> q :: Queue({cap}); q -> RatedUnqueue(1) -> ToDevice(0);"),
            &Registry::standard(),
            0,
        )
        .unwrap();
        for _ in 0..n {
            r.push_external(0, udp_packet(), Time::ZERO);
        }
        let len: usize = r.read_handler("q.length").unwrap().parse().unwrap();
        let drops: usize = r.read_handler("q.drops").unwrap().parse().unwrap();
        prop_assert!(len <= cap);
        prop_assert_eq!(len + drops, n);
    }
}
