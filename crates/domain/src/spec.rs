//! Domain specifications: the operator-supplied assignment of topology
//! nodes to named administrative domains.
//!
//! The JSON form mirrors what `escape run --domains <spec.json>` accepts:
//!
//! ```json
//! {
//!   "domains": [
//!     { "name": "edge",  "nodes": ["sap0", "sw0", "c0"] },
//!     { "name": "core",  "nodes": ["sw1", "c1"] }
//!   ]
//! }
//! ```
//!
//! Every node of the target [`ResourceTopology`] must belong to exactly
//! one domain; links whose endpoints land in different domains become
//! gateway links during [`crate::partition::partition`].

use escape_json::Value;
use escape_sg::{ResourceTopology, TopoNodeKind};

/// One named domain: a set of topology node names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainDef {
    pub name: String,
    pub nodes: Vec<String>,
}

/// A full partitioning of a topology into domains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainSpec {
    pub domains: Vec<DomainDef>,
}

impl DomainSpec {
    /// An empty spec.
    pub fn new() -> DomainSpec {
        DomainSpec::default()
    }

    /// Builder-style: appends a domain.
    pub fn domain(mut self, name: &str, nodes: &[&str]) -> DomainSpec {
        self.domains.push(DomainDef {
            name: name.to_string(),
            nodes: nodes.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Which domain a node belongs to.
    pub fn domain_of(&self, node: &str) -> Option<&str> {
        self.domains
            .iter()
            .find(|d| d.nodes.iter().any(|n| n == node))
            .map(|d| d.name.as_str())
    }

    /// Parses the JSON form shown in the module docs.
    pub fn from_json(src: &str) -> Result<DomainSpec, String> {
        let v = Value::parse(src)?;
        let domains = v
            .get("domains")
            .and_then(Value::as_arr)
            .ok_or("domain spec: missing \"domains\" array")?;
        let mut spec = DomainSpec::new();
        for d in domains {
            let name = d
                .get("name")
                .and_then(Value::as_str)
                .ok_or("domain spec: domain missing \"name\"")?
                .to_string();
            let nodes = d
                .get("nodes")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("domain spec: domain {name:?} missing \"nodes\" array"))?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("domain spec: non-string node in domain {name:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            spec.domains.push(DomainDef { name, nodes });
        }
        Ok(spec)
    }

    /// Renders the spec back to its JSON form.
    pub fn to_json(&self) -> String {
        let domains: Vec<Value> = self
            .domains
            .iter()
            .map(|d| {
                Value::obj()
                    .set("name", d.name.as_str())
                    .set("nodes", d.nodes.clone())
            })
            .collect();
        Value::obj().set("domains", domains).to_string_pretty()
    }

    /// Checks the spec against a topology: at least one domain, unique
    /// non-empty domain names, every topology node covered exactly once,
    /// no unknown nodes, and every cross-domain link running
    /// switch-to-switch (gateway SAPs attach to switches, so partitioning
    /// a link whose endpoint is a container or SAP has no stitch point).
    pub fn validate(&self, topo: &ResourceTopology) -> Result<(), String> {
        if self.domains.is_empty() {
            return Err("domain spec: no domains defined".into());
        }
        let mut owner: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for d in &self.domains {
            if d.name.is_empty() {
                return Err("domain spec: empty domain name".into());
            }
            if self.domains.iter().filter(|o| o.name == d.name).count() > 1 {
                return Err(format!("domain spec: duplicate domain name {:?}", d.name));
            }
            if d.nodes.is_empty() {
                return Err(format!("domain spec: domain {:?} has no nodes", d.name));
            }
            for n in &d.nodes {
                if topo.node(n).is_none() {
                    return Err(format!(
                        "domain spec: domain {:?} lists unknown node {n:?}",
                        d.name
                    ));
                }
                if let Some(prev) = owner.insert(n.as_str(), d.name.as_str()) {
                    return Err(format!(
                        "domain spec: node {n:?} assigned to both {prev:?} and {:?}",
                        d.name
                    ));
                }
            }
        }
        for n in &topo.nodes {
            if !owner.contains_key(n.name.as_str()) {
                return Err(format!(
                    "domain spec: topology node {:?} not assigned to any domain",
                    n.name
                ));
            }
        }
        for l in &topo.links {
            let (da, db) = (owner[l.a.as_str()], owner[l.b.as_str()]);
            if da != db {
                for end in [&l.a, &l.b] {
                    let kind = &topo.node(end).unwrap().kind;
                    if !matches!(kind, TopoNodeKind::Switch) {
                        return Err(format!(
                            "domain spec: cross-domain link {:?} -- {:?} must join \
                             switches, but {end:?} is not a switch",
                            l.a, l.b
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_domain_topo() -> ResourceTopology {
        let mut t = ResourceTopology::new();
        t.add_sap("sap0")
            .add_switch("sw0")
            .add_container("c0", 4.0, 512)
            .add_switch("sw1")
            .add_container("c1", 4.0, 512)
            .add_sap("sap1")
            .add_link("sap0", "sw0", 1000.0, 10)
            .add_link("c0", "sw0", 1000.0, 10)
            .add_link("sw0", "sw1", 100.0, 500)
            .add_link("c1", "sw1", 1000.0, 10)
            .add_link("sap1", "sw1", 1000.0, 10);
        t
    }

    fn two_domain_spec() -> DomainSpec {
        DomainSpec::new()
            .domain("left", &["sap0", "sw0", "c0"])
            .domain("right", &["sw1", "c1", "sap1"])
    }

    #[test]
    fn json_round_trip() {
        let spec = two_domain_spec();
        let back = DomainSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn validate_accepts_full_cover() {
        two_domain_spec().validate(&two_domain_topo()).unwrap();
    }

    #[test]
    fn validate_rejects_missing_and_duplicate_nodes() {
        let topo = two_domain_topo();
        let missing = DomainSpec::new()
            .domain("left", &["sap0", "sw0", "c0"])
            .domain("right", &["sw1", "c1"]); // sap1 unassigned
        assert!(missing.validate(&topo).unwrap_err().contains("sap1"));

        let dup = DomainSpec::new()
            .domain("left", &["sap0", "sw0", "c0", "sw1"])
            .domain("right", &["sw1", "c1", "sap1"]);
        assert!(dup.validate(&topo).unwrap_err().contains("both"));
    }

    #[test]
    fn validate_rejects_non_switch_boundary() {
        let topo = two_domain_topo();
        // Cut through the c1--sw1 link instead of the switch trunk.
        let spec = DomainSpec::new()
            .domain("left", &["sap0", "sw0", "c0", "sw1", "sap1"])
            .domain("right", &["c1"]);
        assert!(spec.validate(&topo).unwrap_err().contains("switch"));
    }

    #[test]
    fn from_json_reports_shape_errors() {
        assert!(DomainSpec::from_json("{}").is_err());
        assert!(DomainSpec::from_json(r#"{"domains": [{"name": "a"}]}"#).is_err());
    }
}
