//! Carving one [`ResourceTopology`] into per-domain local topologies.
//!
//! Each cross-domain link `(a in A) -- (b in B)` with delay `d` becomes a
//! [`GatewayLink`]: domain A gains a *gateway SAP* attached to `a` with
//! delay `d/2`, domain B gains one attached to `b` with the remaining
//! `d - d/2`, so a packet crossing both halves plus the coordinator
//! handoff experiences the original link delay split across the two
//! simulators. Gateway SAPs are ordinary SAPs from the local
//! orchestrator's point of view — chain legs terminate on them and the
//! multi-domain runtime ferries payloads between the paired SAPs.

use crate::spec::DomainSpec;
use escape_sg::{ResourceTopology, TopoNodeKind};

/// Prefix of generated gateway SAP names (`gw{id}_{domain}`).
pub const GATEWAY_PREFIX: &str = "gw";

/// One inter-domain adjacency derived from a cross-domain topology link.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayLink {
    /// Index into [`Partition::gateways`]; also baked into SAP names.
    pub id: usize,
    pub a_domain: String,
    /// Boundary switch on the A side (a node of the original topology).
    pub a_switch: String,
    /// Generated gateway SAP inside the A-side local topology.
    pub a_sap: String,
    pub b_domain: String,
    pub b_switch: String,
    pub b_sap: String,
    pub bandwidth_mbps: f64,
    /// Full inter-domain delay of the original link (before halving).
    pub delay_us: u64,
}

impl GatewayLink {
    /// True if this gateway touches the named domain.
    pub fn touches(&self, domain: &str) -> bool {
        self.a_domain == domain || self.b_domain == domain
    }

    /// The domain on the far side, if `domain` is one of the two ends.
    pub fn peer_of(&self, domain: &str) -> Option<&str> {
        if self.a_domain == domain {
            Some(&self.b_domain)
        } else if self.b_domain == domain {
            Some(&self.a_domain)
        } else {
            None
        }
    }

    /// The gateway SAP name living inside the named domain.
    pub fn sap_in(&self, domain: &str) -> Option<&str> {
        if self.a_domain == domain {
            Some(&self.a_sap)
        } else if self.b_domain == domain {
            Some(&self.b_sap)
        } else {
            None
        }
    }
}

/// The aggregated resource view the global orchestrator sees for one
/// domain — capacity totals, not the detailed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainView {
    pub name: String,
    /// Sum of container CPU shares.
    pub total_cpu: f64,
    /// Sum of container memory.
    pub total_mem_mb: u64,
    /// Number of VNF containers.
    pub containers: usize,
    /// Real (user-facing) SAPs — gateway SAPs are excluded.
    pub saps: Vec<String>,
}

/// One domain after partitioning: its local topology (including generated
/// gateway SAPs) plus the aggregate view exported upward.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDomain {
    pub name: String,
    pub topo: ResourceTopology,
    pub view: DomainView,
}

/// The result of partitioning: local domains plus the gateway links that
/// join them.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    pub domains: Vec<LocalDomain>,
    pub gateways: Vec<GatewayLink>,
}

impl Partition {
    /// Finds a domain by name.
    pub fn domain(&self, name: &str) -> Option<&LocalDomain> {
        self.domains.iter().find(|d| d.name == name)
    }

    /// Index of a domain by name.
    pub fn domain_index(&self, name: &str) -> Option<usize> {
        self.domains.iter().position(|d| d.name == name)
    }

    /// Which domain an *original* topology node ended up in. Gateway SAPs
    /// resolve too, since they are nodes of exactly one local topology.
    pub fn domain_of(&self, node: &str) -> Option<&str> {
        self.domains
            .iter()
            .find(|d| d.topo.node(node).is_some())
            .map(|d| d.name.as_str())
    }
}

/// Splits `topo` into per-domain local topologies per `spec`.
///
/// Validates the spec first; fails if any generated gateway SAP name
/// collides with an existing node. Domain order follows the spec,
/// gateway IDs follow the original link order — both deterministic.
pub fn partition(topo: &ResourceTopology, spec: &DomainSpec) -> Result<Partition, String> {
    spec.validate(topo)?;
    topo.validate()?;

    let mut domains: Vec<LocalDomain> = spec
        .domains
        .iter()
        .map(|d| {
            let local = topo.induced(d.nodes.iter().map(String::as_str));
            let mut total_cpu = 0.0;
            let mut total_mem_mb = 0;
            let mut containers = 0;
            for n in local.containers() {
                if let TopoNodeKind::Container { cpu, mem_mb } = n.kind {
                    total_cpu += cpu;
                    total_mem_mb += mem_mb;
                    containers += 1;
                }
            }
            let saps = local.saps().map(|n| n.name.clone()).collect();
            LocalDomain {
                name: d.name.clone(),
                view: DomainView {
                    name: d.name.clone(),
                    total_cpu,
                    total_mem_mb,
                    containers,
                    saps,
                },
                topo: local,
            }
        })
        .collect();

    let mut gateways = Vec::new();
    for l in &topo.links {
        let da = spec.domain_of(&l.a).unwrap().to_string();
        let db = spec.domain_of(&l.b).unwrap().to_string();
        if da == db {
            continue;
        }
        let id = gateways.len();
        let a_sap = format!("{GATEWAY_PREFIX}{id}_{da}");
        let b_sap = format!("{GATEWAY_PREFIX}{id}_{db}");
        for sap in [&a_sap, &b_sap] {
            if topo.node(sap).is_some() {
                return Err(format!(
                    "partition: generated gateway SAP name {sap:?} collides with a topology node"
                ));
            }
        }
        let half = l.delay_us / 2;
        {
            let side_a = domains.iter_mut().find(|d| d.name == da).unwrap();
            side_a.topo.add_sap(a_sap.clone());
            side_a
                .topo
                .add_link(a_sap.clone(), l.a.clone(), l.bandwidth_mbps, half);
        }
        {
            let side_b = domains.iter_mut().find(|d| d.name == db).unwrap();
            side_b.topo.add_sap(b_sap.clone());
            side_b.topo.add_link(
                b_sap.clone(),
                l.b.clone(),
                l.bandwidth_mbps,
                l.delay_us - half,
            );
        }
        gateways.push(GatewayLink {
            id,
            a_domain: da,
            a_switch: l.a.clone(),
            a_sap,
            b_domain: db,
            b_switch: l.b.clone(),
            b_sap,
            bandwidth_mbps: l.bandwidth_mbps,
            delay_us: l.delay_us,
        });
    }

    for d in &domains {
        d.topo
            .validate()
            .map_err(|e| format!("partition: domain {:?} invalid: {e}", d.name))?;
    }
    Ok(Partition { domains, gateways })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo3() -> (ResourceTopology, DomainSpec) {
        let mut t = ResourceTopology::new();
        t.add_sap("sap0")
            .add_switch("sw0")
            .add_container("c0", 2.0, 256)
            .add_switch("sw1")
            .add_container("c1", 4.0, 512)
            .add_switch("sw2")
            .add_container("c2", 2.0, 256)
            .add_sap("sap2")
            .add_link("sap0", "sw0", 1000.0, 10)
            .add_link("c0", "sw0", 1000.0, 10)
            .add_link("sw0", "sw1", 200.0, 301)
            .add_link("c1", "sw1", 1000.0, 10)
            .add_link("sw1", "sw2", 200.0, 400)
            .add_link("c2", "sw2", 1000.0, 10)
            .add_link("sap2", "sw2", 1000.0, 10);
        let spec = DomainSpec::new()
            .domain("d0", &["sap0", "sw0", "c0"])
            .domain("d1", &["sw1", "c1"])
            .domain("d2", &["sw2", "c2", "sap2"]);
        (t, spec)
    }

    #[test]
    fn partitions_into_three_domains_with_gateways() {
        let (t, spec) = topo3();
        let p = partition(&t, &spec).unwrap();
        assert_eq!(p.domains.len(), 3);
        assert_eq!(p.gateways.len(), 2);

        let g0 = &p.gateways[0];
        assert_eq!((g0.a_domain.as_str(), g0.b_domain.as_str()), ("d0", "d1"));
        assert_eq!(g0.a_sap, "gw0_d0");
        assert_eq!(g0.b_sap, "gw0_d1");
        assert_eq!(g0.delay_us, 301);

        // Odd delay splits without losing a microsecond.
        let d0 = p.domain("d0").unwrap();
        let d1 = p.domain("d1").unwrap();
        let half_a = d0.topo.links.iter().find(|l| l.a == "gw0_d0").unwrap();
        let half_b = d1.topo.links.iter().find(|l| l.a == "gw0_d1").unwrap();
        assert_eq!(half_a.delay_us + half_b.delay_us, 301);

        // The aggregate view hides gateway SAPs but counts capacity.
        assert_eq!(d1.view.saps, Vec::<String>::new());
        assert_eq!(d1.view.total_cpu, 4.0);
        assert_eq!(d0.view.saps, vec!["sap0".to_string()]);

        // Middle domain carries both gateway SAPs in its local topology.
        assert!(d1.topo.node("gw0_d1").is_some());
        assert!(d1.topo.node("gw1_d1").is_some());
    }

    #[test]
    fn gateway_helpers_resolve_sides() {
        let (t, spec) = topo3();
        let p = partition(&t, &spec).unwrap();
        let g = &p.gateways[1];
        assert!(g.touches("d1") && g.touches("d2") && !g.touches("d0"));
        assert_eq!(g.peer_of("d1"), Some("d2"));
        assert_eq!(g.sap_in("d2"), Some("gw1_d2"));
        assert_eq!(g.sap_in("d0"), None);
        assert_eq!(p.domain_of("c1"), Some("d1"));
        assert_eq!(p.domain_of("gw1_d2"), Some("d2"));
    }
}
