//! Deterministic merging of per-domain event streams.
//!
//! Each domain simulator runs on its own worker thread, but every log it
//! produces is stamped with the shared virtual clock. Merging therefore
//! never consults wall time: entries sort by `(virtual ns, origin index,
//! original position)`, where the origin index is the domain's position
//! in the partition (the coordinator itself is origin 0). Two runs with
//! the same seed produce byte-identical merged output no matter how the
//! domains were scheduled across threads.

/// Extracts the nanosecond stamp from an event-log line of the form
/// `"[{ns}ns] ..."` (the format `Escape::event_trace` emits).
pub fn parse_event_ns(line: &str) -> Option<u64> {
    let rest = line.strip_prefix('[')?;
    let end = rest.find("ns]")?;
    rest[..end].parse().ok()
}

/// Merges per-origin event logs into one virtual-clock-ordered stream.
///
/// `streams` is `(origin label, lines)` in deterministic origin order
/// (coordinator first, then domains in partition order). Lines that
/// carry no parsable stamp sort at their origin's position with ns 0.
/// Output lines become `"[{ns}ns] [{origin}] {rest}"`.
pub fn merge_event_logs(streams: &[(String, Vec<String>)]) -> Vec<String> {
    let mut tagged: Vec<(u64, usize, usize, String)> = Vec::new();
    for (origin_idx, (origin, lines)) in streams.iter().enumerate() {
        for (seq, line) in lines.iter().enumerate() {
            let ns = parse_event_ns(line).unwrap_or(0);
            let rest = match line.find("] ") {
                Some(p) if line.starts_with('[') => &line[p + 2..],
                _ => line.as_str(),
            };
            tagged.push((ns, origin_idx, seq, format!("[{ns}ns] [{origin}] {rest}")));
        }
    }
    tagged.sort_by_key(|a| (a.0, a.1, a.2));
    tagged.into_iter().map(|(_, _, _, l)| l).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ns_prefix() {
        assert_eq!(parse_event_ns("[1500ns] deployed chain c1"), Some(1500));
        assert_eq!(parse_event_ns("no stamp"), None);
        assert_eq!(parse_event_ns("[xns] bad"), None);
    }

    #[test]
    fn merge_orders_by_clock_then_origin() {
        let streams = vec![
            ("global".to_string(), vec!["[200ns] re-stitch".to_string()]),
            (
                "d0".to_string(),
                vec!["[100ns] a".to_string(), "[200ns] b".to_string()],
            ),
            (
                "d1".to_string(),
                vec!["[150ns] c".to_string(), "[200ns] d".to_string()],
            ),
        ];
        let merged = merge_event_logs(&streams);
        assert_eq!(
            merged,
            vec![
                "[100ns] [d0] a",
                "[150ns] [d1] c",
                "[200ns] [global] re-stitch",
                "[200ns] [d0] b",
                "[200ns] [d1] d",
            ]
        );
    }

    #[test]
    fn merge_is_independent_of_input_interleaving() {
        // The same per-origin content always yields the same merged
        // bytes — origin order is fixed by the caller, not by timing.
        let a = vec![
            ("d0".to_string(), vec!["[5ns] x".to_string()]),
            ("d1".to_string(), vec!["[5ns] y".to_string()]),
        ];
        let m1 = merge_event_logs(&a);
        let m2 = merge_event_logs(&a);
        assert_eq!(m1, m2);
        assert_eq!(m1, vec!["[5ns] [d0] x", "[5ns] [d1] y"]);
    }
}
