//! # escape-domain
//!
//! Multi-domain orchestration: the UNIFY-style recursive layer over the
//! flat single-domain stack.
//!
//! The paper's architecture is explicitly hierarchical: a *global*
//! orchestrator maps service graphs onto an **aggregated** resource view
//! (per-domain capacity summaries plus inter-domain delay/bandwidth)
//! while *local* orchestrators own the detailed embedding inside each
//! infrastructure domain. This crate provides that split:
//!
//! * [`spec`] — [`spec::DomainSpec`]: a JSON-serializable assignment of
//!   topology nodes to named domains;
//! * [`partition`] — carving a [`ResourceTopology`](escape_sg::ResourceTopology)
//!   into per-domain local topologies joined by [`partition::GatewayLink`]s,
//!   where each cross-domain link materializes as a *gateway SAP* on both
//!   sides (the stitching points for cross-domain chains);
//! * [`global`] — [`global::GlobalOrchestrator`]: domain-path selection
//!   (Dijkstra over the domain graph by inter-domain delay), VNF
//!   distribution along the path against aggregate capacity, and the
//!   per-domain [`global::ChainLeg`]s that local orchestrators embed;
//! * [`merge`] — the deterministic virtual-clock-ordered merge of
//!   per-domain event streams (same seed ⇒ byte-identical merged trace,
//!   regardless of how many worker threads drove the domains).
//!
//! The runtime that drives one netem simulator per domain lives in the
//! `escape` crate (`escape::domains`); this crate is pure data and
//! planning so it can be reused without pulling in the emulator.

pub mod global;
pub mod merge;
pub mod partition;
pub mod spec;

pub use global::{ChainLeg, ChainPlan, GlobalOrchestrator, PlanError};
pub use merge::merge_event_logs;
pub use partition::{partition, DomainView, GatewayLink, LocalDomain, Partition};
pub use spec::{DomainDef, DomainSpec};
