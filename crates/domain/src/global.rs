//! The global orchestrator: hierarchical chain planning over the
//! aggregated multi-domain view.
//!
//! Given a cross-domain chain, the global layer:
//!
//! 1. locates the source and destination SAP domains,
//! 2. finds the cheapest domain path (Dijkstra over the domain graph,
//!    weighted by inter-domain gateway delay, skipping failed gateways),
//! 3. distributes the chain's VNFs over the domains along the path
//!    against each domain's *aggregate* free CPU (greedy, in path order —
//!    a VNF spills to the next domain only when the current one is full),
//! 4. splits the remaining delay budget equally across the per-domain
//!    legs, and
//! 5. emits one [`ChainLeg`] per traversed domain, each a self-contained
//!    single-domain chain running gateway-SAP to gateway-SAP, for the
//!    local orchestrators to embed in detail.
//!
//! The global layer never sees intra-domain links or individual
//! containers: exactly the information hiding the paper's recursive
//! orchestration column prescribes.

use crate::partition::Partition;
use escape_sg::{Chain, ServiceGraph};
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;

/// Why the global layer could not plan a chain.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A chain endpoint SAP is not a user SAP of any domain.
    UnknownSap(String),
    /// No gateway path between the endpoint domains (possibly because of
    /// failed gateways).
    NoDomainPath { from: String, to: String },
    /// Aggregate CPU along the domain path cannot host a VNF.
    NoCapacity { vnf: String, cpu: f64 },
    /// Inter-domain gateway delays alone exceed the chain's budget.
    DelayExceeded {
        inter_domain_us: u64,
        budget_us: u64,
    },
    /// Malformed input (bad chain shape, unknown VNF, ...).
    Invalid(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownSap(s) => write!(f, "unknown SAP {s:?} in multi-domain plan"),
            PlanError::NoDomainPath { from, to } => {
                write!(f, "no gateway path between domains {from:?} and {to:?}")
            }
            PlanError::NoCapacity { vnf, cpu } => write!(
                f,
                "no aggregate capacity for VNF {vnf:?} ({cpu} cpu) along the domain path"
            ),
            PlanError::DelayExceeded {
                inter_domain_us,
                budget_us,
            } => write!(
                f,
                "inter-domain delay {inter_domain_us}µs alone exceeds budget {budget_us}µs"
            ),
            PlanError::Invalid(m) => write!(f, "invalid multi-domain request: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One per-domain piece of a stitched chain: a complete single-domain
/// chain (running real-SAP or gateway-SAP to gateway-SAP or real-SAP)
/// plus which gateways it enters and leaves through.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainLeg {
    pub domain: String,
    /// The single-domain chain the local orchestrator embeds. Keeps the
    /// original chain's name (unique per domain: domain paths are simple).
    pub chain: Chain,
    /// VNF instance names placed in this domain, in chain order.
    pub vnfs: Vec<String>,
    /// Gateway id this leg is entered through (`None` on the first leg).
    pub ingress_gw: Option<usize>,
    /// Gateway id this leg exits through (`None` on the last leg).
    pub egress_gw: Option<usize>,
}

/// The global plan for one chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPlan {
    pub chain: String,
    pub domain_path: Vec<String>,
    pub legs: Vec<ChainLeg>,
    /// Total gateway delay the packet pays between domains (µs).
    pub inter_domain_us: u64,
}

impl ChainPlan {
    /// Gateway ids the plan rides over.
    pub fn gateways(&self) -> Vec<usize> {
        self.legs.iter().filter_map(|l| l.egress_gw).collect()
    }
}

/// The global orchestrator state: the partition, per-domain aggregate
/// free CPU, and the set of currently failed gateways.
#[derive(Debug, Clone)]
pub struct GlobalOrchestrator {
    partition: Partition,
    free_cpu: HashMap<String, f64>,
    /// chain -> (domain, cpu) commitments, released on teardown.
    committed: HashMap<String, Vec<(String, f64)>>,
    failed_gateways: BTreeSet<usize>,
}

impl GlobalOrchestrator {
    pub fn new(partition: Partition) -> GlobalOrchestrator {
        let free_cpu = partition
            .domains
            .iter()
            .map(|d| (d.name.clone(), d.view.total_cpu))
            .collect();
        GlobalOrchestrator {
            partition,
            free_cpu,
            committed: HashMap::new(),
            failed_gateways: BTreeSet::new(),
        }
    }

    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Aggregate free CPU currently assumed for a domain.
    pub fn free_cpu(&self, domain: &str) -> f64 {
        self.free_cpu.get(domain).copied().unwrap_or(0.0)
    }

    pub fn mark_gateway_failed(&mut self, id: usize) {
        self.failed_gateways.insert(id);
    }

    pub fn mark_gateway_recovered(&mut self, id: usize) {
        self.failed_gateways.remove(&id);
    }

    pub fn gateway_failed(&self, id: usize) -> bool {
        self.failed_gateways.contains(&id)
    }

    /// Which user-SAP domain a name belongs to (gateway SAPs excluded —
    /// chains cannot terminate on a stitch point).
    fn sap_domain(&self, sap: &str) -> Option<&str> {
        self.partition
            .domains
            .iter()
            .find(|d| d.view.saps.iter().any(|s| s == sap))
            .map(|d| d.name.as_str())
    }

    /// Dijkstra over the domain graph. Returns the domain path, the
    /// gateway chosen for each consecutive pair, and the summed gateway
    /// delay. Ties break on (delay, domain name) then lowest gateway id,
    /// so the result is deterministic.
    fn domain_path(&self, from: &str, to: &str) -> Option<(Vec<String>, Vec<usize>, u64)> {
        if from == to {
            return Some((vec![from.to_string()], Vec::new(), 0));
        }
        #[derive(PartialEq, Eq)]
        struct Entry(u64, String);
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: BinaryHeap is a max-heap, we want min-delay first.
                other.0.cmp(&self.0).then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut best: HashMap<String, u64> = HashMap::new();
        let mut prev: HashMap<String, (String, usize)> = HashMap::new();
        let mut heap = BinaryHeap::new();
        best.insert(from.to_string(), 0);
        heap.push(Entry(0, from.to_string()));
        while let Some(Entry(d, name)) = heap.pop() {
            if best.get(&name).copied().unwrap_or(u64::MAX) < d {
                continue;
            }
            if name == to {
                break;
            }
            for g in &self.partition.gateways {
                if self.failed_gateways.contains(&g.id) {
                    continue;
                }
                let Some(peer) = g.peer_of(&name) else {
                    continue;
                };
                let nd = d + g.delay_us;
                let cur = best.get(peer).copied().unwrap_or(u64::MAX);
                // On an exact tie (same total delay, e.g. parallel
                // gateways), keep the lowest gateway id for determinism.
                let better =
                    nd < cur || (nd == cur && prev.get(peer).is_some_and(|(_, gid)| g.id < *gid));
                if better {
                    best.insert(peer.to_string(), nd);
                    prev.insert(peer.to_string(), (name.clone(), g.id));
                    heap.push(Entry(nd, peer.to_string()));
                }
            }
        }
        let total = *best.get(to)?;
        let mut path = vec![to.to_string()];
        let mut gws = Vec::new();
        let mut cur = to.to_string();
        while cur != from {
            let (p, gid) = prev.get(&cur)?.clone();
            gws.push(gid);
            path.push(p.clone());
            cur = p;
        }
        path.reverse();
        gws.reverse();
        Some((path, gws, total))
    }

    /// Plans one chain: domain path, VNF distribution, budget split, legs.
    /// Pure — call [`GlobalOrchestrator::commit`] to reserve the capacity.
    pub fn plan_chain(&self, sg: &ServiceGraph, chain: &Chain) -> Result<ChainPlan, PlanError> {
        if chain.hops.len() < 2 {
            return Err(PlanError::Invalid(format!(
                "chain {:?} has fewer than two hops",
                chain.name
            )));
        }
        let src_sap = &chain.hops[0];
        let dst_sap = chain.hops.last().unwrap();
        let src_d = self
            .sap_domain(src_sap)
            .ok_or_else(|| PlanError::UnknownSap(src_sap.clone()))?
            .to_string();
        let dst_d = self
            .sap_domain(dst_sap)
            .ok_or_else(|| PlanError::UnknownSap(dst_sap.clone()))?
            .to_string();
        let (path, gws, inter_domain_us) =
            self.domain_path(&src_d, &dst_d)
                .ok_or_else(|| PlanError::NoDomainPath {
                    from: src_d.clone(),
                    to: dst_d.clone(),
                })?;

        // Distribute the middle VNFs over the path domains, greedy in
        // path order against aggregate free CPU.
        let middle = &chain.hops[1..chain.hops.len() - 1];
        let mut free: Vec<f64> = path.iter().map(|d| self.free_cpu(d)).collect();
        let mut placed: Vec<Vec<String>> = vec![Vec::new(); path.len()];
        let mut at = 0usize;
        for v in middle {
            let req = sg
                .vnf_named(v)
                .ok_or_else(|| PlanError::Invalid(format!("unknown VNF {v:?}")))?;
            while at < path.len() && free[at] < req.cpu {
                at += 1;
            }
            if at >= path.len() {
                return Err(PlanError::NoCapacity {
                    vnf: v.clone(),
                    cpu: req.cpu,
                });
            }
            free[at] -= req.cpu;
            placed[at].push(v.clone());
        }

        // Split the delay budget: gateways take their share off the top,
        // each leg gets an equal slice of the remainder.
        let leg_budget = match chain.max_delay_us {
            None => None,
            Some(b) => {
                if inter_domain_us >= b {
                    return Err(PlanError::DelayExceeded {
                        inter_domain_us,
                        budget_us: b,
                    });
                }
                Some((b - inter_domain_us) / path.len() as u64)
            }
        };

        let mut legs = Vec::with_capacity(path.len());
        for (i, domain) in path.iter().enumerate() {
            let ingress_gw = if i == 0 { None } else { Some(gws[i - 1]) };
            let egress_gw = if i + 1 == path.len() {
                None
            } else {
                Some(gws[i])
            };
            let entry = match ingress_gw {
                None => src_sap.clone(),
                Some(gid) => self.partition.gateways[gid]
                    .sap_in(domain)
                    .unwrap()
                    .to_string(),
            };
            let exit = match egress_gw {
                None => dst_sap.clone(),
                Some(gid) => self.partition.gateways[gid]
                    .sap_in(domain)
                    .unwrap()
                    .to_string(),
            };
            let mut hops = Vec::with_capacity(placed[i].len() + 2);
            hops.push(entry);
            hops.extend(placed[i].iter().cloned());
            hops.push(exit);
            legs.push(ChainLeg {
                domain: domain.clone(),
                chain: Chain {
                    name: chain.name.clone(),
                    hops,
                    bandwidth_mbps: chain.bandwidth_mbps,
                    max_delay_us: leg_budget,
                    // The SLA is end-to-end; delivery happens on the
                    // final leg (birth timestamps survive handoffs), so
                    // that is where the verdict is computed.
                    sla: if i + 1 == path.len() { chain.sla } else { None },
                },
                vnfs: placed[i].clone(),
                ingress_gw,
                egress_gw,
            });
        }
        Ok(ChainPlan {
            chain: chain.name.clone(),
            domain_path: path,
            legs,
            inter_domain_us,
        })
    }

    /// Reserves the plan's aggregate CPU against the per-domain views.
    pub fn commit(&mut self, sg: &ServiceGraph, plan: &ChainPlan) {
        let mut taken = Vec::new();
        for leg in &plan.legs {
            for v in &leg.vnfs {
                if let Some(req) = sg.vnf_named(v) {
                    *self.free_cpu.entry(leg.domain.clone()).or_insert(0.0) -= req.cpu;
                    taken.push((leg.domain.clone(), req.cpu));
                }
            }
        }
        self.committed.insert(plan.chain.clone(), taken);
    }

    /// Returns a chain's aggregate CPU to the per-domain views.
    pub fn release(&mut self, chain: &str) {
        if let Some(taken) = self.committed.remove(chain) {
            for (domain, cpu) in taken {
                *self.free_cpu.entry(domain).or_insert(0.0) += cpu;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use crate::spec::DomainSpec;
    use escape_sg::{ResourceTopology, ServiceGraph};

    /// sap0 - sw0(c0: 2cpu) - sw1(c1: 4cpu) - sw2(c2: 2cpu) - sap2
    fn orch3() -> (GlobalOrchestrator, ServiceGraph) {
        let mut t = ResourceTopology::new();
        t.add_sap("sap0")
            .add_switch("sw0")
            .add_container("c0", 2.0, 256)
            .add_switch("sw1")
            .add_container("c1", 4.0, 512)
            .add_switch("sw2")
            .add_container("c2", 2.0, 256)
            .add_sap("sap2")
            .add_link("sap0", "sw0", 1000.0, 10)
            .add_link("c0", "sw0", 1000.0, 10)
            .add_link("sw0", "sw1", 200.0, 300)
            .add_link("c1", "sw1", 1000.0, 10)
            .add_link("sw1", "sw2", 200.0, 400)
            .add_link("c2", "sw2", 1000.0, 10)
            .add_link("sap2", "sw2", 1000.0, 10);
        let spec = DomainSpec::new()
            .domain("d0", &["sap0", "sw0", "c0"])
            .domain("d1", &["sw1", "c1"])
            .domain("d2", &["sw2", "c2", "sap2"]);
        let p = partition(&t, &spec).unwrap();
        let sg = ServiceGraph::new()
            .sap("sap0")
            .sap("sap2")
            .vnf("f1", "firewall", 1.5, 64)
            .vnf("f2", "monitor", 1.5, 64)
            .vnf("f3", "firewall", 1.5, 64)
            .chain("c", &["sap0", "f1", "f2", "f3", "sap2"], 10.0, Some(5_000));
        (GlobalOrchestrator::new(p), sg)
    }

    #[test]
    fn plans_three_domain_chain_with_spillover() {
        let (orch, sg) = orch3();
        let plan = orch.plan_chain(&sg, &sg.chains[0]).unwrap();
        assert_eq!(plan.domain_path, vec!["d0", "d1", "d2"]);
        assert_eq!(plan.inter_domain_us, 700);
        assert_eq!(plan.legs.len(), 3);
        // d0 fits one 1.5-cpu VNF (2 cpu total), d1 fits the next two.
        assert_eq!(plan.legs[0].vnfs, vec!["f1"]);
        assert_eq!(plan.legs[1].vnfs, vec!["f2", "f3"]);
        assert!(plan.legs[2].vnfs.is_empty());
        // Leg chains run SAP/gateway to gateway/SAP.
        assert_eq!(plan.legs[0].chain.hops, vec!["sap0", "f1", "gw0_d0"]);
        assert_eq!(
            plan.legs[1].chain.hops,
            vec!["gw0_d1", "f2", "f3", "gw1_d1"]
        );
        assert_eq!(plan.legs[2].chain.hops, vec!["gw1_d2", "sap2"]);
        // Budget: (5000 - 700) / 3 per leg.
        assert_eq!(plan.legs[0].chain.max_delay_us, Some(1433));
        assert_eq!(plan.gateways(), vec![0, 1]);
    }

    #[test]
    fn commit_and_release_track_aggregate_cpu() {
        let (mut orch, sg) = orch3();
        let plan = orch.plan_chain(&sg, &sg.chains[0]).unwrap();
        orch.commit(&sg, &plan);
        assert_eq!(orch.free_cpu("d0"), 0.5);
        assert_eq!(orch.free_cpu("d1"), 1.0);
        // A second identical chain no longer fits anywhere on the path.
        let err = orch.plan_chain(&sg, &sg.chains[0]).unwrap_err();
        assert!(matches!(err, PlanError::NoCapacity { .. }));
        orch.release("c");
        assert_eq!(orch.free_cpu("d0"), 2.0);
        assert!(orch.plan_chain(&sg, &sg.chains[0]).is_ok());
    }

    #[test]
    fn failed_gateway_blocks_the_path() {
        let (mut orch, sg) = orch3();
        orch.mark_gateway_failed(0);
        let err = orch.plan_chain(&sg, &sg.chains[0]).unwrap_err();
        assert_eq!(
            err,
            PlanError::NoDomainPath {
                from: "d0".into(),
                to: "d2".into()
            }
        );
        orch.mark_gateway_recovered(0);
        assert!(orch.plan_chain(&sg, &sg.chains[0]).is_ok());
    }

    #[test]
    fn budget_smaller_than_gateway_delay_is_an_error() {
        let (orch, mut sg) = orch3();
        sg.chains[0].max_delay_us = Some(600);
        let err = orch.plan_chain(&sg, &sg.chains[0]).unwrap_err();
        assert_eq!(
            err,
            PlanError::DelayExceeded {
                inter_domain_us: 700,
                budget_us: 600
            }
        );
        assert_eq!(
            err.to_string(),
            "inter-domain delay 700µs alone exceeds budget 600µs"
        );
    }

    #[test]
    fn same_domain_chain_is_a_single_leg() {
        let (orch, _) = orch3();
        let sg = ServiceGraph::new()
            .sap("sap0")
            .vnf("f", "firewall", 1.0, 64)
            .chain("local", &["sap0", "f", "sap0"], 5.0, None);
        let plan = orch.plan_chain(&sg, &sg.chains[0]).unwrap();
        assert_eq!(plan.domain_path, vec!["d0"]);
        assert_eq!(plan.legs.len(), 1);
        assert_eq!(plan.inter_domain_us, 0);
        assert_eq!(plan.legs[0].chain.hops, vec!["sap0", "f", "sap0"]);
    }
}
