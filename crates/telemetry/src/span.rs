//! Lightweight span tracing.
//!
//! A [`Tracer`] records named spans with explicit, caller-supplied
//! timestamps — in ESCAPE-RS that is the netem virtual clock, so traces
//! of a simulation are bit-identical across runs with the same seed.
//! Spans nest: the span open at `enter` time becomes the parent. Every
//! finished span feeds two registry metrics,
//! `span.duration_ns{span="<name>"}` (histogram) and
//! `span.count{span="<name>"}` (counter), so snapshots and reports see
//! span activity without walking the trace.

use crate::{Registry, DURATION_BOUNDS_NS};
use escape_json::Value;

/// One span in a [`Tracer`]'s trace buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub name: String,
    /// Index of the parent span in [`Tracer::records`], if nested.
    pub parent: Option<usize>,
    pub start_ns: u64,
    /// `None` while the span is still open.
    pub end_ns: Option<u64>,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

/// Handle returned by [`Tracer::enter`]; pass back to [`Tracer::exit`].
/// Deliberately not `Copy`/`Clone`: each span ends exactly once.
#[derive(Debug)]
#[must_use = "exit the span with Tracer::exit"]
pub struct SpanHandle(usize);

/// Span recorder; one per simulation environment.
pub struct Tracer {
    registry: Registry,
    records: Vec<SpanRecord>,
    stack: Vec<usize>,
}

impl Tracer {
    pub fn new(registry: Registry) -> Tracer {
        Tracer {
            registry,
            records: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Opens a span at `now_ns`, nested under the currently open span.
    pub fn enter(&mut self, name: &str, now_ns: u64) -> SpanHandle {
        let idx = self.records.len();
        self.records.push(SpanRecord {
            name: name.to_string(),
            parent: self.stack.last().copied(),
            start_ns: now_ns,
            end_ns: None,
        });
        self.stack.push(idx);
        SpanHandle(idx)
    }

    /// Closes a span at `now_ns` and records its duration metrics.
    /// Spans may be exited out of LIFO order (interleaved operations);
    /// parentage is decided at `enter` time.
    pub fn exit(&mut self, handle: SpanHandle, now_ns: u64) {
        let idx = handle.0;
        if let Some(pos) = self.stack.iter().rposition(|&i| i == idx) {
            self.stack.remove(pos);
        }
        let rec = &mut self.records[idx];
        debug_assert!(rec.end_ns.is_none(), "span {:?} exited twice", rec.name);
        rec.end_ns = Some(now_ns.max(rec.start_ns));
        let duration = rec.end_ns.unwrap() - rec.start_ns;
        let name = rec.name.clone();
        self.registry
            .histogram_with("span.duration_ns", &[("span", &name)], DURATION_BOUNDS_NS)
            .observe(duration);
        self.registry
            .counter_with("span.count", &[("span", &name)])
            .inc();
    }

    /// All spans recorded so far (open and closed), in enter order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Closed spans with the given name.
    pub fn finished<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.name == name && r.end_ns.is_some())
    }

    /// Nesting depth of the currently open span chain.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// JSON dump of the trace: one object per span with name, parent
    /// index, timestamps and duration.
    pub fn json_value(&self) -> Value {
        let spans: Vec<Value> = self
            .records
            .iter()
            .map(|r| {
                Value::obj()
                    .set("name", r.name.as_str())
                    .set("parent", r.parent)
                    .set("start_ns", r.start_ns)
                    .set("end_ns", r.end_ns)
                    .set("duration_ns", r.duration_ns())
            })
            .collect();
        Value::obj().set("spans", Value::Arr(spans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_durations() {
        let reg = Registry::new();
        let mut t = Tracer::new(reg.clone());

        let outer = t.enter("chain_setup", 1_000);
        assert_eq!(t.depth(), 1);
        let inner = t.enter("mapping", 2_000);
        assert_eq!(t.records()[1].parent, Some(0));
        t.exit(inner, 5_000);
        let inner2 = t.enter("netconf", 5_000);
        t.exit(inner2, 9_000);
        t.exit(outer, 10_000);
        assert_eq!(t.depth(), 0);

        assert_eq!(t.finished("chain_setup").count(), 1);
        assert_eq!(t.records()[0].duration_ns(), Some(9_000));
        assert_eq!(t.records()[2].parent, Some(0));

        let snap = reg.snapshot();
        assert_eq!(snap.counter("span.count", &[("span", "mapping")]), Some(1));
        let h = snap
            .histogram("span.duration_ns", &[("span", "chain_setup")])
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 9_000);
    }

    #[test]
    fn out_of_order_exit_is_tolerated() {
        let reg = Registry::new();
        let mut t = Tracer::new(reg);
        let a = t.enter("a", 0);
        let b = t.enter("b", 10);
        t.exit(a, 20); // a closes before its child b
        t.exit(b, 30);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.records()[0].duration_ns(), Some(20));
        assert_eq!(t.records()[1].duration_ns(), Some(20));
        assert_eq!(t.records()[1].parent, Some(0));
    }

    #[test]
    fn trace_json_dump_has_parentage() {
        let reg = Registry::new();
        let mut t = Tracer::new(reg);
        let a = t.enter("deploy", 100);
        let b = t.enter("rpc", 200);
        t.exit(b, 300);
        t.exit(a, 400);
        let v = t.json_value();
        let spans = v.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].get("parent").unwrap().is_null());
        assert_eq!(spans[1].get("parent").unwrap().as_u64(), Some(0));
        assert_eq!(spans[1].get("duration_ns").unwrap().as_u64(), Some(100));
    }
}
