//! # escape-telemetry
//!
//! Metrics and span tracing for the whole ESCAPE-RS stack.
//!
//! * [`Registry`] — a named-metric registry handing out lock-free
//!   [`Counter`] / [`Gauge`] / [`Histogram`] handles. Registration takes
//!   a mutex once; the handles themselves are plain atomics, so the hot
//!   paths (the netem event loop, the POX packet-in path) pay one
//!   `fetch_add` per event. Metrics carry optional labels, e.g.
//!   `steering.flow_mods{dpid="3"}`.
//! * [`Tracer`] — lightweight spans ([`Tracer::enter`] / [`Tracer::exit`])
//!   with parent/child nesting. Timestamps are supplied by the caller
//!   (the netem virtual clock, in nanoseconds), so traces are fully
//!   deterministic for a fixed seed. Every finished span feeds a
//!   duration histogram named `span.<name>.duration_ns`.
//! * Exposition — [`Snapshot`] renders as Prometheus text
//!   ([`Snapshot::prometheus`]) or JSON ([`Snapshot::to_json`]), and two
//!   snapshots diff into a [`TelemetryReport`] of what happened between
//!   them.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use escape_json::Value;

pub mod chrome;
pub mod sampler;
mod span;
pub use chrome::ChromeEvent;
pub use sampler::{Sample, Sampler, SamplerConfig};
pub use span::{SpanHandle, SpanRecord, Tracer};

/// Label set attached to a metric: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

fn normalize_labels(labels: &[(&str, &str)]) -> Labels {
    let mut l: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    l
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, utilization).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Records `v` and remembers the largest value ever set (exposed as
    /// a companion `<name>.max` sample in snapshots).
    pub fn set_max_tracking(&self, v: i64, max_cell: &Gauge) {
        self.set(v);
        if v > max_cell.get() {
            max_cell.set(v);
        }
    }
}

/// Fixed-bucket histogram over `u64` observations (typically
/// nanoseconds). Buckets are cumulative-upper-bound style like
/// Prometheus: `bounds[i]` is the inclusive upper edge of bucket `i`,
/// with an implicit `+Inf` bucket at the end.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

struct HistogramCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // len = bounds.len() + 1 (overflow)
    count: AtomicU64,
    sum: AtomicU64,
}

/// Default duration buckets: 1µs → 10s, one per decade plus midpoints.
pub const DURATION_BOUNDS_NS: &[u64] = &[
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

impl Histogram {
    pub fn observe(&self, v: u64) {
        let idx = self.core.bounds.partition_point(|&b| b < v);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    fn data(&self) -> HistogramData {
        HistogramData {
            bounds: self.core.bounds.clone(),
            counts: self
                .core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Immutable histogram contents as captured in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramData {
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; one longer than `bounds`
    /// (the final entry is the overflow bucket).
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramData {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile (`q` in 0.0..=1.0) by linear interpolation
    /// inside the containing bucket. Observations past the last bound
    /// report the last bound (the histogram cannot see further).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                if i >= self.bounds.len() {
                    return *self.bounds.last().unwrap_or(&0);
                }
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let into = (target - seen) as f64 / c as f64;
                return lower + ((upper - lower) as f64 * into) as u64;
            }
            seen += c;
        }
        *self.bounds.last().unwrap_or(&0)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Labels,
}

/// The process-wide metric registry. Cheap to clone (all clones share
/// state); each subsystem holds its own clone plus cached handles.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<HashMap<MetricKey, Metric>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Counter without labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Counter with labels, e.g.
    /// `counter_with("steering.flow_mods", &[("dpid", "3")])`.
    /// Registering the same name+labels twice returns the same cell.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey {
            name: name.to_string(),
            labels: normalize_labels(labels),
        };
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key).or_insert_with(|| {
            Metric::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey {
            name: name.to_string(),
            labels: normalize_labels(labels),
        };
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key).or_insert_with(|| {
            Metric::Gauge(Gauge {
                cell: Arc::new(AtomicI64::new(0)),
            })
        }) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Histogram with the default duration buckets ([`DURATION_BOUNDS_NS`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[], DURATION_BOUNDS_NS)
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        assert!(
            !bounds.is_empty() && bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be sorted and non-empty"
        );
        let key = MetricKey {
            name: name.to_string(),
            labels: normalize_labels(labels),
        };
        let mut m = self.metrics.lock().unwrap();
        match m.entry(key).or_insert_with(|| {
            Metric::Histogram(Histogram {
                core: Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }),
            })
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Point-in-time copy of every registered metric, sorted by name
    /// then labels.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().unwrap();
        let mut entries: Vec<MetricSnapshot> = m
            .iter()
            .map(|(key, metric)| MetricSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.data()),
                },
            })
            .collect();
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { entries }
    }
}

/// One metric as captured in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    pub name: String,
    pub labels: Labels,
    pub value: MetricValue,
}

#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramData),
}

/// Point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<MetricSnapshot>,
}

fn label_suffix(labels: &Labels) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; our dotted names map
/// dots to underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Snapshot {
    /// Counter value by name and labels (test/report convenience).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let labels = normalize_labels(labels);
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Counter(v) if e.name == name && e.labels == labels => Some(*v),
            _ => None,
        })
    }

    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let labels = normalize_labels(labels);
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Gauge(v) if e.name == name && e.labels == labels => Some(*v),
            _ => None,
        })
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramData> {
        let labels = normalize_labels(labels);
        self.entries.iter().find_map(|e| match &e.value {
            MetricValue::Histogram(h) if e.name == name && e.labels == labels => Some(h),
            _ => None,
        })
    }

    /// Prometheus text exposition format.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed = String::new();
        for e in &self.entries {
            let pname = prom_name(&e.name);
            match &e.value {
                MetricValue::Counter(v) => {
                    if last_typed != pname {
                        out.push_str(&format!("# TYPE {pname} counter\n"));
                        last_typed = pname.clone();
                    }
                    out.push_str(&format!("{pname}{} {v}\n", label_suffix(&e.labels)));
                }
                MetricValue::Gauge(v) => {
                    if last_typed != pname {
                        out.push_str(&format!("# TYPE {pname} gauge\n"));
                        last_typed = pname.clone();
                    }
                    out.push_str(&format!("{pname}{} {v}\n", label_suffix(&e.labels)));
                }
                MetricValue::Histogram(h) => {
                    if last_typed != pname {
                        out.push_str(&format!("# TYPE {pname} histogram\n"));
                        last_typed = pname.clone();
                    }
                    let mut cum = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = if i < h.bounds.len() {
                            h.bounds[i].to_string()
                        } else {
                            "+Inf".to_string()
                        };
                        let mut labels = e.labels.clone();
                        labels.push(("le".to_string(), le));
                        out.push_str(&format!("{pname}_bucket{} {cum}\n", label_suffix(&labels)));
                    }
                    out.push_str(&format!(
                        "{pname}_sum{} {}\n",
                        label_suffix(&e.labels),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{pname}_count{} {}\n",
                        label_suffix(&e.labels),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// JSON exposition via `escape-json`.
    pub fn json_value(&self) -> Value {
        let mut arr = Vec::new();
        for e in &self.entries {
            let labels = Value::Obj(
                e.labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            );
            let v = match &e.value {
                MetricValue::Counter(c) => Value::obj()
                    .set("name", e.name.as_str())
                    .set("type", "counter")
                    .set("labels", labels)
                    .set("value", *c),
                MetricValue::Gauge(g) => Value::obj()
                    .set("name", e.name.as_str())
                    .set("type", "gauge")
                    .set("labels", labels)
                    .set("value", *g as f64),
                MetricValue::Histogram(h) => Value::obj()
                    .set("name", e.name.as_str())
                    .set("type", "histogram")
                    .set("labels", labels)
                    .set("count", h.count)
                    .set("sum", h.sum)
                    .set("mean", h.mean())
                    .set("p50", h.quantile(0.50))
                    .set("p99", h.quantile(0.99))
                    .set("bounds", h.bounds.clone())
                    .set("buckets", h.counts.clone()),
            };
            arr.push(v);
        }
        Value::obj().set("metrics", Value::Arr(arr))
    }

    pub fn to_json(&self) -> String {
        self.json_value().to_string_pretty()
    }

    /// What changed between `self` (earlier) and `later`: counter
    /// deltas, gauge before/after pairs, and histogram activity.
    pub fn diff(&self, later: &Snapshot) -> TelemetryReport {
        let mut entries = Vec::new();
        for e in &later.entries {
            let before = self
                .entries
                .iter()
                .find(|b| b.name == e.name && b.labels == e.labels)
                .map(|b| &b.value);
            match (&e.value, before) {
                (MetricValue::Counter(now), before) => {
                    let was = match before {
                        Some(MetricValue::Counter(w)) => *w,
                        _ => 0,
                    };
                    if *now != was {
                        entries.push(ReportEntry::CounterDelta {
                            name: e.name.clone(),
                            labels: e.labels.clone(),
                            delta: now.saturating_sub(was),
                        });
                    }
                }
                (MetricValue::Gauge(now), before) => {
                    let was = match before {
                        Some(MetricValue::Gauge(w)) => *w,
                        _ => 0,
                    };
                    if *now != was {
                        entries.push(ReportEntry::GaugeChange {
                            name: e.name.clone(),
                            labels: e.labels.clone(),
                            from: was,
                            to: *now,
                        });
                    }
                }
                (MetricValue::Histogram(now), before) => {
                    let (was_count, was_sum) = match before {
                        Some(MetricValue::Histogram(w)) => (w.count, w.sum),
                        _ => (0, 0),
                    };
                    if now.count != was_count {
                        let dc = now.count - was_count;
                        let ds = now.sum - was_sum;
                        entries.push(ReportEntry::HistogramActivity {
                            name: e.name.clone(),
                            labels: e.labels.clone(),
                            observations: dc,
                            mean: ds as f64 / dc as f64,
                        });
                    }
                }
            }
        }
        TelemetryReport { entries }
    }
}

/// The difference between two snapshots — "what happened during X".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    pub entries: Vec<ReportEntry>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ReportEntry {
    CounterDelta {
        name: String,
        labels: Labels,
        delta: u64,
    },
    GaugeChange {
        name: String,
        labels: Labels,
        from: i64,
        to: i64,
    },
    HistogramActivity {
        name: String,
        labels: Labels,
        observations: u64,
        mean: f64,
    },
}

impl ReportEntry {
    pub fn name(&self) -> &str {
        match self {
            ReportEntry::CounterDelta { name, .. }
            | ReportEntry::GaugeChange { name, .. }
            | ReportEntry::HistogramActivity { name, .. } => name,
        }
    }
}

impl TelemetryReport {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter delta by name (summed over label sets), 0 if unchanged.
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match e {
                ReportEntry::CounterDelta { name: n, delta, .. } if n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(no telemetry activity)");
        }
        for e in &self.entries {
            match e {
                ReportEntry::CounterDelta {
                    name,
                    labels,
                    delta,
                } => writeln!(f, "{name}{} +{delta}", label_suffix(labels))?,
                ReportEntry::GaugeChange {
                    name,
                    labels,
                    from,
                    to,
                } => writeln!(f, "{name}{} {from} -> {to}", label_suffix(labels))?,
                ReportEntry::HistogramActivity {
                    name,
                    labels,
                    observations,
                    mean,
                } => writeln!(
                    f,
                    "{name}{} {observations} observations, mean {mean:.0}",
                    label_suffix(labels)
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_and_labels_separate_them() {
        let r = Registry::new();
        let a = r.counter("x.events");
        let b = r.counter("x.events");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);

        let l1 = r.counter_with("x.drops", &[("link", "a-b")]);
        let l2 = r.counter_with("x.drops", &[("link", "b-c")]);
        l1.inc();
        l1.inc();
        l2.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.drops", &[("link", "a-b")]), Some(2));
        assert_eq!(snap.counter("x.drops", &[("link", "b-c")]), Some(1));
        assert_eq!(snap.counter_total("x.drops"), 3);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper_bound() {
        let r = Registry::new();
        let h = r.histogram_with("h", &[], &[10, 20, 30]);
        for v in [5, 10, 11, 20, 25, 31, 1000] {
            h.observe(v);
        }
        let d = r.snapshot().histogram("h", &[]).unwrap().clone();
        // buckets: <=10 -> {5,10}, <=20 -> {11,20}, <=30 -> {25}, +Inf -> {31,1000}
        assert_eq!(d.counts, vec![2, 2, 1, 2]);
        assert_eq!(d.count, 7);
        assert_eq!(d.sum, 5 + 10 + 11 + 20 + 25 + 31 + 1000);
    }

    #[test]
    fn quantile_interpolates_and_clamps() {
        let r = Registry::new();
        let h = r.histogram_with("q", &[], &[100, 200, 300]);
        for _ in 0..50 {
            h.observe(50); // first bucket
        }
        for _ in 0..50 {
            h.observe(250); // third bucket
        }
        let d = r.snapshot().histogram("q", &[]).unwrap().clone();
        let p25 = d.quantile(0.25);
        assert!(p25 <= 100, "p25 {p25} should fall in the first bucket");
        let p75 = d.quantile(0.75);
        assert!(
            (200..=300).contains(&p75),
            "p75 {p75} should fall in the third bucket"
        );
        // Overflow observations clamp to the last bound.
        h.observe(10_000);
        let d = r.snapshot().histogram("q", &[]).unwrap().clone();
        assert_eq!(d.quantile(1.0), 300);
        // Empty histogram.
        let e = r.histogram_with("empty", &[], &[1]);
        let _ = e;
        assert_eq!(
            r.snapshot().histogram("empty", &[]).unwrap().quantile(0.5),
            0
        );
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: every quantile is 0, including the extremes.
        let r = Registry::new();
        let _h = r.histogram_with("edge.empty", &[], &[10, 20]);
        let d = r.snapshot().histogram("edge.empty", &[]).unwrap().clone();
        assert_eq!(d.quantile(0.0), 0);
        assert_eq!(d.quantile(0.5), 0);
        assert_eq!(d.quantile(1.0), 0);

        // Single bucket holding every observation: all quantiles land
        // inside [0, bound], and q=1.0 reaches the bound.
        let h = r.histogram_with("edge.single", &[], &[100]);
        for _ in 0..10 {
            h.observe(50);
        }
        let d = r.snapshot().histogram("edge.single", &[]).unwrap().clone();
        assert!(d.quantile(0.0) <= 100);
        assert_eq!(d.quantile(1.0), 100);

        // q=0 and q=1 on a two-bucket spread: q=0 stays in the first
        // occupied bucket, q=1 in the last. Out-of-range q clamps.
        let h = r.histogram_with("edge.spread", &[], &[10, 20]);
        h.observe(5);
        h.observe(15);
        let d = r.snapshot().histogram("edge.spread", &[]).unwrap().clone();
        assert!(d.quantile(0.0) <= 10, "q=0 must stay in the first bucket");
        assert!(
            (10..=20).contains(&d.quantile(1.0)),
            "q=1 must land in the last occupied bucket"
        );
        assert_eq!(d.quantile(-3.0), d.quantile(0.0));
        assert_eq!(d.quantile(7.0), d.quantile(1.0));
    }

    #[test]
    fn prometheus_label_values_escape_specials() {
        let r = Registry::new();
        r.counter_with("esc.count", &[("msg", "say \"hi\" \\ line1\nline2")])
            .inc();
        let text = r.snapshot().prometheus();
        // Quotes, backslashes and newlines must come out escaped, or the
        // exposition line would be unparseable (a raw newline splits it).
        assert!(
            text.contains(r#"esc_count{msg="say \"hi\" \\ line1\nline2"} 1"#),
            "escaped label value missing from:\n{text}"
        );
        for line in text.lines() {
            assert!(
                !line.is_empty() || text.ends_with('\n'),
                "raw newline leaked into an exposition line"
            );
        }
    }

    #[test]
    fn quantile_of_uniform_stream_is_roughly_linear() {
        let r = Registry::new();
        let bounds: Vec<u64> = (1..=100).map(|i| i * 10).collect();
        let h = r.histogram_with("u", &[], &bounds);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let d = r.snapshot().histogram("u", &[]).unwrap().clone();
        for (q, expect) in [(0.1, 100), (0.5, 500), (0.9, 900)] {
            let got = d.quantile(q);
            let err = (got as i64 - expect).unsigned_abs();
            assert!(err <= 20, "q{q}: got {got}, want ~{expect}");
        }
        assert!((d.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn prometheus_text_format_shape() {
        let r = Registry::new();
        r.counter_with("net.drops", &[("link", "a-b")]).add(4);
        r.gauge("net.queue_depth").set(7);
        let h = r.histogram_with("rpc.latency_ns", &[], &[1000, 2000]);
        h.observe(500);
        h.observe(1500);
        h.observe(9999);
        let text = r.snapshot().prometheus();
        assert!(text.contains("# TYPE net_drops counter"));
        assert!(text.contains("net_drops{link=\"a-b\"} 4"));
        assert!(text.contains("# TYPE net_queue_depth gauge"));
        assert!(text.contains("net_queue_depth 7"));
        assert!(text.contains("rpc_latency_ns_bucket{le=\"1000\"} 1"));
        assert!(text.contains("rpc_latency_ns_bucket{le=\"2000\"} 2"));
        assert!(text.contains("rpc_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("rpc_latency_ns_sum 11999"));
        assert!(text.contains("rpc_latency_ns_count 3"));
    }

    #[test]
    fn json_snapshot_parses_and_carries_values() {
        let r = Registry::new();
        r.counter("a.count").add(5);
        r.histogram_with("a.lat", &[], &[10, 20]).observe(15);
        let snap = r.snapshot();
        let parsed = escape_json::Value::parse(&snap.to_json()).unwrap();
        let metrics = parsed.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 2);
        let counter = metrics
            .iter()
            .find(|m| m.get("type").unwrap().as_str() == Some("counter"))
            .unwrap();
        assert_eq!(counter.get("value").unwrap().as_u64(), Some(5));
        let hist = metrics
            .iter()
            .find(|m| m.get("type").unwrap().as_str() == Some("histogram"))
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn snapshot_diff_reports_only_changes() {
        let r = Registry::new();
        let c = r.counter("work.done");
        let g = r.gauge("depth");
        let h = r.histogram_with("lat", &[], &[100]);
        c.add(2);
        g.set(1);
        let before = r.snapshot();
        c.add(3);
        g.set(5);
        h.observe(50);
        h.observe(150);
        let after = r.snapshot();
        let report = before.diff(&after);
        assert_eq!(report.counter_delta("work.done"), 3);
        assert!(report
            .entries
            .iter()
            .any(|e| matches!(e, ReportEntry::GaugeChange { from: 1, to: 5, .. })));
        assert!(report.entries.iter().any(|e| matches!(
            e,
            ReportEntry::HistogramActivity {
                observations: 2,
                ..
            }
        )));
        // Diffing identical snapshots is empty.
        assert!(after.diff(&after).is_empty());
        let text = format!("{report}");
        assert!(text.contains("work.done +3"));
    }
}
