//! Chrome trace-event JSON export.
//!
//! Renders a list of [`ChromeEvent`]s as the Trace Event Format that
//! `chrome://tracing` and Perfetto load: a top-level object with a
//! `traceEvents` array of complete (`ph: "X"`) and instant (`ph: "I"`)
//! events. Timestamps are microseconds; since ours come from the virtual
//! clock, the rendered document is byte-identical across same-seed runs
//! as long as the caller supplies events in a stable order.

use escape_json::Value;

/// One trace event. `dur_us` present ⇒ a complete event (`ph: "X"`),
/// absent ⇒ an instant event (`ph: "I"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Event label (shown on the slice).
    pub name: String,
    /// Category (used by trace viewers for filtering/coloring).
    pub cat: String,
    /// Start timestamp in microseconds of virtual time.
    pub ts_us: u64,
    /// Duration in microseconds; `None` renders an instant event.
    pub dur_us: Option<u64>,
    /// Process id lane.
    pub pid: u64,
    /// Thread id lane (one row per tid within a pid).
    pub tid: u64,
    /// Free-form arguments shown in the detail pane.
    pub args: Vec<(String, String)>,
}

impl ChromeEvent {
    fn to_value(&self) -> Value {
        let mut v = Value::obj()
            .set("name", self.name.as_str())
            .set("cat", self.cat.as_str())
            .set("ph", if self.dur_us.is_some() { "X" } else { "I" })
            .set("ts", self.ts_us);
        if let Some(d) = self.dur_us {
            v = v.set("dur", d);
        } else {
            // Instant events need a scope; "t" = thread-scoped tick.
            v = v.set("s", "t");
        }
        v = v.set("pid", self.pid).set("tid", self.tid);
        let mut args = Value::obj();
        for (k, val) in &self.args {
            args = args.set(k, val.as_str());
        }
        v.set("args", args)
    }
}

/// Renders events as a Trace Event Format document. The caller is
/// responsible for a deterministic event order.
pub fn render(events: &[ChromeEvent]) -> String {
    let arr = Value::Arr(events.iter().map(|e| e.to_value()).collect());
    Value::obj()
        .set("traceEvents", arr)
        .set("displayTimeUnit", "ms")
        .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, dur: Option<u64>) -> ChromeEvent {
        ChromeEvent {
            name: "hop".into(),
            cat: "demo".into(),
            ts_us: ts,
            dur_us: dur,
            pid: 1,
            tid: 42,
            args: vec![("node".into(), "s0".into())],
        }
    }

    #[test]
    fn rendered_document_parses_and_round_trips_fields() {
        let doc = render(&[ev(10, Some(5)), ev(20, None)]);
        let v = Value::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("dur").unwrap().as_u64(), Some(5));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("I"));
        assert_eq!(events[1].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(
            events[0].get("args").unwrap().get("node").unwrap().as_str(),
            Some("s0")
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let events = vec![ev(10, Some(5)), ev(20, None), ev(30, Some(1))];
        assert_eq!(render(&events), render(&events));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = render(&[]);
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
