//! Time-series sampler: a bounded ring of periodic [`Snapshot`]s taken
//! on the caller's (virtual) clock.
//!
//! The environment loop calls [`Sampler::due`] / [`Sampler::record`] as
//! virtual time advances; the ring keeps the most recent `retention`
//! samples and counts what it drops (`telemetry.samples_evicted`), so
//! truncation is observable instead of silent. Sampling on the virtual
//! clock keeps the series deterministic for a fixed seed — two
//! same-seed runs produce byte-identical series documents.
//!
//! [`Sampler::series_json`] renders the ring delta-encoded: counters
//! and histograms as per-interval activity, gauges as end-of-interval
//! values. That is exactly the shape a terminal sparkline (`escape
//! top`) or a plotting pipeline wants, and it compresses long idle
//! stretches to runs of zeros.

use std::collections::VecDeque;

use escape_json::Value;

use crate::{Counter, MetricValue, Registry, Snapshot};

/// Sampling cadence and ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Virtual nanoseconds between samples.
    pub period_ns: u64,
    /// How many samples the ring keeps before evicting the oldest.
    pub retention: usize,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            period_ns: 5_000_000, // 5 virtual milliseconds
            retention: 120,
        }
    }
}

/// One entry in the ring: the virtual timestamp and the full snapshot.
#[derive(Debug, Clone)]
pub struct Sample {
    pub at_ns: u64,
    pub snapshot: Snapshot,
}

/// Bounded ring of periodic registry snapshots.
pub struct Sampler {
    period_ns: u64,
    retention: usize,
    samples: VecDeque<Sample>,
    evicted: u64,
    evicted_ctr: Counter,
    next_due_ns: u64,
}

impl Sampler {
    /// Builds a sampler and registers its eviction counter
    /// (`telemetry.samples_evicted`) on `registry`.
    pub fn new(registry: &Registry, cfg: SamplerConfig) -> Sampler {
        assert!(cfg.period_ns > 0, "sampler period must be positive");
        assert!(cfg.retention > 0, "sampler retention must be positive");
        Sampler {
            period_ns: cfg.period_ns,
            retention: cfg.retention,
            samples: VecDeque::with_capacity(cfg.retention),
            evicted: 0,
            evicted_ctr: registry.counter("telemetry.samples_evicted"),
            next_due_ns: 0,
        }
    }

    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// The virtual timestamp at (or after) which the next sample is due.
    pub fn next_due_ns(&self) -> u64 {
        self.next_due_ns
    }

    /// True when virtual time has reached the next sampling point.
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_due_ns
    }

    /// Appends a sample, evicting the oldest when the ring is full.
    pub fn record(&mut self, now_ns: u64, snapshot: Snapshot) {
        if self.samples.len() == self.retention {
            self.samples.pop_front();
            self.evicted += 1;
            self.evicted_ctr.inc();
        }
        self.samples.push_back(Sample {
            at_ns: now_ns,
            snapshot,
        });
        // Next sample lands on the next period boundary, not at
        // `now + period`: if the loop overshoots a boundary the
        // cadence stays aligned with the virtual clock grid.
        self.next_due_ns = now_ns - (now_ns % self.period_ns) + self.period_ns;
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// How many samples have been dropped off the front of the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// Delta-encoded series over the ring as a JSON document:
    ///
    /// ```json
    /// {
    ///   "period_ns": 5000000,
    ///   "evicted": 0,
    ///   "at_ns": [t0, t1, ...],
    ///   "series": [
    ///     {"name": "...", "labels": {...}, "kind": "counter",
    ///      "points": [d1, d2, ...]},
    ///     ...
    ///   ]
    /// }
    /// ```
    ///
    /// Each series carries one point per interval between consecutive
    /// samples (`at_ns.len() - 1` points). Counters and histograms are
    /// per-interval deltas (increments / observation counts); gauges
    /// are the value at the end of each interval. Series that never
    /// move over the whole window are omitted.
    pub fn series_json(&self) -> Value {
        let at_ns: Vec<u64> = self.samples.iter().map(|s| s.at_ns).collect();
        let mut series = Vec::new();
        if let Some(last) = self.samples.back() {
            for e in &last.snapshot.entries {
                let kind = match e.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let mut points: Vec<f64> = Vec::with_capacity(self.samples.len());
                let mut prev: Option<f64> = None;
                let mut moved = false;
                for s in &self.samples {
                    let abs = match s
                        .snapshot
                        .entries
                        .iter()
                        .find(|c| c.name == e.name && c.labels == e.labels)
                        .map(|c| &c.value)
                    {
                        Some(MetricValue::Counter(v)) => *v as f64,
                        Some(MetricValue::Gauge(v)) => *v as f64,
                        Some(MetricValue::Histogram(h)) => h.count as f64,
                        None => 0.0,
                    };
                    if let Some(p) = prev {
                        let point = match e.value {
                            MetricValue::Gauge(_) => abs,
                            _ => abs - p,
                        };
                        if abs != p {
                            moved = true;
                        }
                        points.push(point);
                    }
                    prev = Some(abs);
                }
                if !moved {
                    continue;
                }
                let labels = Value::Obj(
                    e.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                );
                series.push(
                    Value::obj()
                        .set("name", e.name.as_str())
                        .set("labels", labels)
                        .set("kind", kind)
                        .set("points", points),
                );
            }
        }
        Value::obj()
            .set("period_ns", self.period_ns)
            .set("evicted", self.evicted)
            .set("at_ns", at_ns)
            .set("series", Value::Arr(series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_it() {
        let r = Registry::new();
        let c = r.counter("work.done");
        let mut s = Sampler::new(
            &r,
            SamplerConfig {
                period_ns: 1_000,
                retention: 3,
            },
        );
        for i in 0..5u64 {
            c.inc();
            s.record(i * 1_000, r.snapshot());
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        assert_eq!(
            r.snapshot().counter("telemetry.samples_evicted", &[]),
            Some(2)
        );
        // The surviving window starts at the third sample.
        assert_eq!(s.samples().next().unwrap().at_ns, 2_000);
    }

    #[test]
    fn due_follows_period_boundaries() {
        let r = Registry::new();
        let mut s = Sampler::new(
            &r,
            SamplerConfig {
                period_ns: 1_000,
                retention: 8,
            },
        );
        assert!(s.due(0));
        s.record(0, r.snapshot());
        assert!(!s.due(999));
        assert!(s.due(1_000));
        // Overshooting a boundary re-aligns to the grid rather than
        // drifting by the overshoot.
        s.record(1_700, r.snapshot());
        assert_eq!(s.next_due_ns(), 2_000);
    }

    #[test]
    fn series_are_delta_encoded_and_quiet_metrics_are_omitted() {
        let r = Registry::new();
        let c = r.counter("pkts.rx");
        let g = r.gauge("queue.depth");
        let _idle = r.counter("never.moves");
        let h = r.histogram_with("lat", &[], &[100]);
        let mut s = Sampler::new(
            &r,
            SamplerConfig {
                period_ns: 1_000,
                retention: 8,
            },
        );
        s.record(0, r.snapshot());
        c.add(3);
        g.set(2);
        h.observe(50);
        s.record(1_000, r.snapshot());
        c.add(1);
        g.set(1);
        s.record(2_000, r.snapshot());

        let doc = s.series_json();
        let at = doc.get("at_ns").unwrap().as_arr().unwrap();
        assert_eq!(at.len(), 3);
        let series = doc.get("series").unwrap().as_arr().unwrap();
        let find = |name: &str| {
            series
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
        };
        let pts = |name: &str| -> Vec<f64> {
            find(name)
                .unwrap()
                .get("points")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|p| p.as_f64().unwrap())
                .collect()
        };
        assert_eq!(pts("pkts.rx"), vec![3.0, 1.0]);
        assert_eq!(pts("queue.depth"), vec![2.0, 1.0]);
        assert_eq!(pts("lat"), vec![1.0, 0.0]);
        assert!(find("never.moves").is_none(), "flat series are omitted");
    }
}
