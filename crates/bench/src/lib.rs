//! escape-bench: benchmark harness crate. The experiments live in
//! `benches/`; this lib holds shared plumbing.

use escape_json::Value;
use std::path::PathBuf;

/// Writes a telemetry artifact (JSON) next to the timing output, under
/// `target/telemetry/<name>.json`. Benches call this so every run leaves
/// a machine-readable metrics snapshot alongside the printed numbers.
/// Returns the path written, or `None` if the filesystem refused — in
/// which case the failed path and error are reported on stderr so a
/// bench run never drops an artifact without a trace.
pub fn write_telemetry_artifact(name: &str, doc: &Value) -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/telemetry");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "escape-bench: cannot create telemetry dir {}: {e}",
            dir.display()
        );
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, doc.to_string_pretty()) {
        eprintln!(
            "escape-bench: cannot write telemetry artifact {}: {e}",
            path.display()
        );
        return None;
    }
    Some(path)
}

/// Writes a benchmark snapshot as `<name>.json` at the repository root.
/// Unlike the per-run files under `target/telemetry/`, root snapshots
/// (e.g. `BENCH_domains.json`) are committed baselines future PRs diff
/// against. Returns the path written, or `None` (with the error on
/// stderr) if the filesystem refused.
pub fn write_repo_artifact(name: &str, doc: &Value) -> Option<PathBuf> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}.json"));
    match std::fs::write(&path, doc.to_string_pretty()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "escape-bench: cannot write repo artifact {}: {e}",
                path.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips() {
        let doc = Value::obj().set("bench", "smoke").set("n", 3u64);
        let path = write_telemetry_artifact("smoke_test", &doc).expect("writable target dir");
        let read = std::fs::read_to_string(&path).unwrap();
        let parsed = Value::parse(&read).unwrap();
        assert_eq!(parsed.get("n").unwrap().as_u64(), Some(3));
        std::fs::remove_file(path).ok();
    }
}
