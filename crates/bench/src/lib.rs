//! escape-bench: benchmark harness crate. All content lives in benches/.
