//! E8 — VNF isolation ablation (design choice D3): "VNFs started as
//! processes with configurable isolation models (based on cgroups)".
//!
//! Two VNFs share one container: a victim monitor chain and a noisy DPI
//! chain. We measure the victim's latency under three isolation modes of
//! the noisy neighbour. The noisy stream overloads the container CPU
//! (1400 B DPI work every 8 µs ≈ 140% duty). Expected shape: with no
//! isolation the victim queues behind the noisy backlog on the shared
//! CPU lane; share/quota isolation moves the noisy VNF to its own
//! scheduling domain, protecting the victim while throttling the noisy
//! VNF's own throughput (visible as lower noisy_rx in the window).

use criterion::{criterion_group, criterion_main, Criterion};
use escape::env::Escape;
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::ServiceGraph;

/// Topology with a single 1-CPU container so both VNFs co-locate.
fn topo() -> escape_sg::ResourceTopology {
    let mut t = escape_sg::ResourceTopology::new();
    t.add_switch("s0")
        .add_switch("s1")
        .add_container("c0", 4.0, 4096)
        .add_sap("sap0")
        .add_sap("sap1")
        .add_sap("sap2")
        .add_sap("sap3")
        .add_link("sap0", "s0", 1000.0, 10)
        .add_link("sap1", "s1", 1000.0, 10)
        .add_link("sap2", "s0", 1000.0, 10)
        .add_link("sap3", "s1", 1000.0, 10)
        .add_link("s0", "s1", 1000.0, 50)
        .add_link("c0", "s0", 1000.0, 20)
        .add_link("c0", "s1", 1000.0, 20);
    t
}

fn victim_latency_us(noisy_isolation: &str) -> (u64, u64) {
    let mut esc =
        Escape::build(topo(), Box::new(GreedyFirstFit), SteeringMode::Proactive, 8).unwrap();
    let mut sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .sap("sap2")
        .sap("sap3")
        .vnf("victim", "monitor", 0.5, 64)
        .chain("quiet", &["sap0", "victim", "sap1"], 10.0, None)
        .vnf("noisy", "dpi", 0.5, 64)
        .chain("loud", &["sap2", "noisy", "sap3"], 10.0, None);
    if noisy_isolation != "none" {
        for v in &mut sg.vnfs {
            if v.name == "noisy" {
                v.params.push(("isolation".into(), noisy_isolation.into()));
            }
        }
    }
    esc.deploy(&sg).unwrap();
    // Noisy neighbour: large frames at high rate through the DPI.
    esc.start_udp("sap2", "sap3", 1400, 8, 3_000).unwrap();
    // Victim: light, steady stream.
    esc.start_udp("sap0", "sap1", 128, 500, 100).unwrap();
    esc.run_for_ms(100);
    let victim = esc.sap_stats("sap1").unwrap();
    let noisy = esc.sap_stats("sap3").unwrap();
    (
        victim.latency_sum_ns / victim.latency_samples.max(1) / 1_000,
        noisy.udp_rx,
    )
}

fn print_table() {
    println!("\nE8: co-located VNF interference under isolation modes");
    println!("(victim = monitor chain; noisy neighbour = DPI chain on the same container)");
    println!(
        "{:>22} {:>18} {:>16}",
        "noisy isolation", "victim_mean_us", "noisy_rx"
    );
    for (label, spec) in [
        ("none (shared CPU)", "none"),
        ("cpu share 1/4", "share:1:4"),
        ("quota 2ms/10ms", "quota:2000000:10000000"),
    ] {
        let (lat, noisy_rx) = victim_latency_us(spec);
        println!("{label:>22} {lat:>18} {noisy_rx:>16}");
    }
    println!("(expected shape: victim latency highest with no isolation; the quota");
    println!(" protects the victim by throttling the noisy DPI's own throughput)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e8_isolation");
    g.sample_size(10);
    for (name, spec) in [("none", "none"), ("share", "share:1:4")] {
        g.bench_function(format!("contended_run_{name}"), |b| {
            b.iter(|| victim_latency_us(spec));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
