//! E7 — End-to-end per-packet latency through a deployed chain vs chain
//! length.
//!
//! Deterministic part (printed): mean/max virtual latency for 1..6 VNF
//! chains on a linear topology. Criterion part: wall-clock cost of
//! pushing a frame burst through a deployed 3-VNF chain.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use escape::env::Escape;
use escape_orch::NearestNeighbor;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

fn chain_sg(n_vnfs: usize) -> ServiceGraph {
    let mut sg = ServiceGraph::new().sap("sap0").sap("sap1");
    let mut hops = vec!["sap0".to_string()];
    for i in 0..n_vnfs {
        sg = sg.vnf(&format!("v{i}"), "monitor", 0.25, 32);
        hops.push(format!("v{i}"));
    }
    hops.push("sap1".to_string());
    let refs: Vec<&str> = hops.iter().map(|s| s.as_str()).collect();
    sg.chain("c", &refs, 10.0, None)
}

fn deployed_env(n_vnfs: usize) -> Escape {
    let mut esc = Escape::build(
        builders::linear(6, 0.3), // one 0.25-CPU VNF fits per container: chains spread
        Box::new(NearestNeighbor),
        SteeringMode::Proactive,
        7,
    )
    .unwrap();
    esc.deploy(&chain_sg(n_vnfs)).unwrap();
    esc
}

fn print_table() {
    println!("\nE7: end-to-end virtual latency vs chain length (linear topology)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "vnfs", "mean_us", "max_us", "map_delay", "delivered"
    );
    for n in [0usize, 1, 2, 3, 4, 6] {
        let mut esc = deployed_env(n);
        let map_delay = esc.deployed("c").unwrap().mapping.total_delay_us;
        esc.start_udp("sap0", "sap1", 256, 500, 50).unwrap();
        esc.run_for_ms(200);
        let stats = esc.sap_stats("sap1").unwrap();
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>10}",
            n,
            stats.mean_latency().map(|t| t.as_us()).unwrap_or(0),
            stats.latency_max_ns / 1_000,
            map_delay,
            stats.udp_rx
        );
    }
    println!("(expected shape: latency grows monotonically with VNF count; the");
    println!(" mapped path delay is a lower bound on the measured latency)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e7_chain_latency");
    g.sample_size(10);
    g.throughput(Throughput::Elements(200));
    g.bench_function("burst200_through_3vnf_chain", |b| {
        b.iter(|| {
            let mut esc = deployed_env(3);
            esc.start_udp("sap0", "sap1", 256, 100, 200).unwrap();
            esc.run_for_ms(100);
            assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 200);
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
