//! E6 — Emulation scalability: Mininet's "scaling up to hundreds of
//! nodes" claim against our substrate.
//!
//! Deterministic part (printed): environment build time and event
//! throughput for star topologies from 10 to ~400 emulated nodes.
//! Criterion part: event processing rate on a busy medium topology.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use escape::env::Escape;
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;
use std::time::Instant;

fn print_table() {
    println!("\nE6: emulator scalability (star topologies)");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>14}",
        "leaves", "nodes", "build_ms", "sim_events", "events_per_s"
    );
    for leaves in [3usize, 10, 30, 60, 130] {
        let t0 = Instant::now();
        let topo = builders::star(leaves, 4.0);
        let mut esc =
            Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 6).unwrap();
        let build_ms = t0.elapsed().as_millis();
        let n_nodes = 1 + leaves * 3 + 2;

        // One chain + traffic to keep the event loop honest.
        let sg = ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("m", "monitor", 0.5, 64)
            .chain("c", &["sap0", "m", "sap1"], 10.0, None);
        esc.deploy(&sg).unwrap();
        esc.start_udp("sap0", "sap1", 128, 50, 2_000).unwrap();
        let e0 = esc.sim.stats().events;
        let t1 = Instant::now();
        esc.run_for_ms(200);
        let wall = t1.elapsed().as_secs_f64();
        let events = esc.sim.stats().events - e0;
        println!(
            "{:>8} {:>8} {:>12} {:>12} {:>14.0}",
            leaves,
            n_nodes,
            build_ms,
            events,
            events as f64 / wall.max(1e-9)
        );
    }
    println!("(expected shape: build time grows linearly; event rate stays flat —");
    println!(" the emulator supports hundreds of nodes like Mininet claims)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e6_scale");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("star30_2000_frames", |b| {
        b.iter(|| {
            let topo = builders::star(30, 4.0);
            let mut esc =
                Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 6).unwrap();
            let sg = ServiceGraph::new()
                .sap("sap0")
                .sap("sap1")
                .vnf("m", "monitor", 0.5, 64)
                .chain("c", &["sap0", "m", "sap1"], 10.0, None);
            esc.deploy(&sg).unwrap();
            esc.start_udp("sap0", "sap1", 128, 50, 2_000).unwrap();
            esc.run_for_ms(150);
            esc.sim.stats().events
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
