//! E0 — Dataplane fast path: the exact-match flow cache on the switch
//! hot path, measured as end-to-end packets per wall-clock second.
//!
//! Two scenarios, each run cache-off (every lookup walks the full
//! priority table — the seed behaviour) and cache-on:
//!
//! * `switch_only` — h1 → s1 → h2 with the switch preloaded with a
//!   production-size table of decoy rules, so the O(rules) walk is the
//!   dominant per-packet cost;
//! * `vnf_chain` — the E4-style workload: a monitor VNF chain deployed
//!   through the full ESCAPE stack (NETCONF + POX steering) on a
//!   rules-heavy substrate, traffic crossing three switch lookups and a
//!   Click forward path per frame.
//!
//! Deterministic part (printed + `BENCH_dataplane.json` at the repo
//! root): pps cache-off vs cache-on, speedup and cache hit rate per
//! scenario. The committed snapshot is the perf baseline the check gate
//! diffs against: with `ESCAPE_BENCH_GATE=1`, the bench fails if the
//! headline cached pps regressed more than 20% below the baseline.
//! Criterion part: the cached switch_only hot loop (skipped under
//! `ESCAPE_BENCH_TABLE_ONLY=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use escape::env::Escape;
use escape_netem::{Host, LinkConfig, Sim, Time};
use escape_openflow::table::FlowEntry;
use escape_openflow::{Action, Match, Switch};
use escape_orch::GreedyFirstFit;
use escape_packet::MacAddr;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;
use std::net::Ipv4Addr;
use std::time::Instant;

const FRAMES: u64 = 5_000;
const FRAME_LEN: usize = 128;
/// Decoy table sizes for the switch-only sweep.
const TABLE_SIZES: &[usize] = &[1_024, 4_096];
/// Decoy rules per switch in the VNF chain scenario.
const CHAIN_RULES: usize = 2_048;
/// Regression gate: fail if headline pps drops below this fraction of
/// the committed baseline.
const GATE_FLOOR: f64 = 0.8;
/// Wall-clock samples per measurement; the fastest is kept.
const SAMPLES: usize = 3;

struct RunResult {
    wall_ms: f64,
    pps: f64,
    delivered: u64,
    hits: u64,
    misses: u64,
}

impl RunResult {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fills a switch table with `rules` decoy entries no stream frame ever
/// matches (distinct high tp_dst values, below the live rules'
/// priority), forcing the reference walk to scan a production-size
/// table on every lookup.
fn load_decoys(sw: &mut Switch, rules: usize) {
    for i in 0..rules {
        let mut m = Match::any().with_dl_type(0x0800);
        m.tp_dst = Some(20_000 + i as u16);
        let mut e = FlowEntry::new(m, 400, vec![Action::out(0)], Time::ZERO);
        e.cookie = 0xdec0;
        sw.table.add(e);
    }
}

/// h1 → s1 → h2 over ideal links: the switch holds `rules` decoys plus
/// one live rule steering the stream, so per-frame cost is one table
/// lookup plus fixed kernel overhead.
fn run_switch_only(rules: usize, cache_on: bool, frames: u64) -> RunResult {
    let mut sim = Sim::new(7);
    let sw = sim.add_node("s1", 2, Box::new(Switch::new(1, 2)));
    let (h1_ip, h2_ip) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    let h1 = sim.add_node("h1", 1, Box::new(Host::new(MacAddr::from_id(1), h1_ip)));
    let h2 = sim.add_node("h2", 1, Box::new(Host::new(MacAddr::from_id(2), h2_ip)));
    sim.connect((sw, 0), (h1, 0), LinkConfig::ideal());
    sim.connect((sw, 1), (h2, 0), LinkConfig::ideal());
    {
        let s = sim.node_as_mut::<Switch>(sw).unwrap();
        s.set_flow_cache(cache_on);
        load_decoys(s, rules);
        let live = Match::any().with_dl_type(0x0800).with_nw_dst(h2_ip, 32);
        s.table
            .add(FlowEntry::new(live, 500, vec![Action::out(1)], Time::ZERO));
    }
    sim.node_as_mut::<Host>(h1)
        .unwrap()
        .static_arp(h2_ip, MacAddr::from_id(2));
    sim.node_as_mut::<Host>(h1).unwrap().add_stream(
        h2_ip,
        40_000,
        9_000,
        FRAME_LEN,
        Time::from_us(1),
        frames,
    );
    let t0 = Instant::now();
    Host::start_streams(&mut sim, h1, Time::from_us(1));
    sim.run_until(Time::from_us(frames + 1_000));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let delivered = sim.node_as::<Host>(h2).unwrap().stats.udp_rx;
    let s = sim.node_as_mut::<Switch>(sw).unwrap();
    RunResult {
        wall_ms,
        pps: delivered as f64 / (wall_ms / 1e3).max(1e-9),
        delivered,
        hits: s.table.cache().hits,
        misses: s.table.cache().misses,
    }
}

/// The E4-style workload: a monitor chain deployed through the full
/// stack on `linear(2)`, with every switch table padded to
/// [`CHAIN_RULES`] decoys. Each frame crosses three switch lookups
/// (s0 twice around the VNF, s1 once) and the Click forward path.
fn run_vnf_chain(cache_on: bool, frames: u64) -> RunResult {
    let topo = builders::linear(2, 4.0);
    let mut esc =
        Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 7).unwrap();
    esc.set_flow_cache(cache_on);
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("mon", "monitor", 0.5, 64)
        .chain("c1", &["sap0", "mon", "sap1"], 50.0, None);
    esc.deploy(&sg).unwrap();
    for name in ["s0", "s1"] {
        let node = esc.infra.node(name).unwrap();
        let sw = esc.sim.node_as_mut::<Switch>(node).unwrap();
        load_decoys(sw, CHAIN_RULES);
    }
    let hits0 = esc.metrics().counter_total("openflow.cache_hits");
    let misses0 = esc.metrics().counter_total("openflow.cache_misses");
    esc.start_udp("sap0", "sap1", FRAME_LEN, 1, frames).unwrap();
    let t0 = Instant::now();
    esc.run_for_ms(frames / 1_000 + 20);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let delivered = esc.sap_stats("sap1").unwrap().udp_rx;
    let m = esc.metrics();
    RunResult {
        wall_ms,
        pps: delivered as f64 / (wall_ms / 1e3).max(1e-9),
        delivered,
        hits: m.counter_total("openflow.cache_hits") - hits0,
        misses: m.counter_total("openflow.cache_misses") - misses0,
    }
}

/// Runs one measurement [`SAMPLES`] times and keeps the fastest run.
/// Wall-clock noise on a shared host is one-sided (preemption slows a
/// run down; nothing speeds it up), so best-of-N is the stable
/// estimator — used for both the committed baseline and the gate
/// sample, so the two are comparable. The simulation itself is
/// deterministic: delivery and cache counters are identical across
/// repeats, only the wall clock varies.
fn best_of(mut run: impl FnMut() -> RunResult) -> RunResult {
    let mut best = run();
    for _ in 1..SAMPLES {
        let r = run();
        if r.pps > best.pps {
            best = r;
        }
    }
    best
}

/// Reads the committed baseline's headline cached pps, if a snapshot
/// exists at the repo root.
fn baseline_pps() -> Option<f64> {
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dataplane.json");
    let doc = escape_json::Value::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    doc.get("headline")?.get("pps_cached")?.as_f64()
}

fn print_table() {
    println!("\nE0: dataplane fast path (exact-match cache vs full table walk)");
    println!(
        "{:>14} {:>7} {:>6} {:>10} {:>12} {:>9} {:>9} {:>8}",
        "scenario", "rules", "cache", "wall_ms", "pps", "hit_rate", "frames", "speedup"
    );
    let mut runs = Vec::new();
    let mut headline: Option<(f64, f64, f64)> = None; // (pps_walk, pps_cached, hit_rate)
    let mut row = |scenario: &str, rules: usize, off: RunResult, on: RunResult| {
        let speedup = on.pps / off.pps.max(1e-9);
        for (label, r) in [("off", &off), ("on", &on)] {
            println!(
                "{:>14} {:>7} {:>6} {:>10.2} {:>12.0} {:>9.3} {:>9} {:>8}",
                scenario,
                rules,
                label,
                r.wall_ms,
                r.pps,
                r.hit_rate(),
                r.delivered,
                if *label == *"on" {
                    format!("{speedup:.1}x")
                } else {
                    "-".into()
                }
            );
            runs.push(
                escape_json::Value::obj()
                    .set("scenario", scenario)
                    .set("rules", rules as u64)
                    .set("cache", label)
                    .set("wall_ms", r.wall_ms)
                    .set("pps", r.pps)
                    .set("cache_hit_rate", r.hit_rate())
                    .set("frames_delivered", r.delivered)
                    .set("cache_hits", r.hits)
                    .set("cache_misses", r.misses),
            );
        }
        (off.pps, on.pps, on.hit_rate(), speedup)
    };
    for &rules in TABLE_SIZES {
        let off = best_of(|| run_switch_only(rules, false, FRAMES));
        let on = best_of(|| run_switch_only(rules, true, FRAMES));
        assert_eq!(
            off.delivered, on.delivered,
            "cache must not change delivery"
        );
        let (pps_walk, pps_cached, hit_rate, _) = row("switch_only", rules, off, on);
        if rules == *TABLE_SIZES.last().unwrap() {
            headline = Some((pps_walk, pps_cached, hit_rate));
        }
    }
    {
        let off = best_of(|| run_vnf_chain(false, FRAMES));
        let on = best_of(|| run_vnf_chain(true, FRAMES));
        assert_eq!(
            off.delivered, on.delivered,
            "cache must not change delivery"
        );
        row("vnf_chain", CHAIN_RULES, off, on);
    }
    let (pps_walk, pps_cached, hit_rate) = headline.unwrap();
    let speedup = pps_cached / pps_walk.max(1e-9);

    // Regression gate against the committed baseline, before overwriting
    // it (scripts/check.sh runs the bench with ESCAPE_BENCH_GATE=1).
    let old = baseline_pps();
    if std::env::var_os("ESCAPE_BENCH_GATE").is_some() {
        let old = old.expect("gate mode needs a committed BENCH_dataplane.json");
        if pps_cached < old * GATE_FLOOR {
            eprintln!(
                "E0 REGRESSION: cached pps {pps_cached:.0} fell below {:.0} \
                 ({}% of the committed baseline {old:.0})",
                old * GATE_FLOOR,
                (GATE_FLOOR * 100.0) as u64,
            );
            std::process::exit(1);
        }
        println!(
            "gate: cached pps {pps_cached:.0} within budget (baseline {old:.0}, floor {:.0})",
            old * GATE_FLOOR
        );
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = escape_json::Value::obj()
        .set("experiment", "e0_dataplane")
        .set("host_cpus", host_cpus as u64)
        .set(
            "headline",
            escape_json::Value::obj()
                .set("rules", *TABLE_SIZES.last().unwrap() as u64)
                .set("pps_walk", pps_walk)
                .set("pps_cached", pps_cached)
                .set("speedup", speedup)
                .set("cache_hit_rate", hit_rate),
        )
        .set("runs", escape_json::Value::Arr(runs));
    if let Some(path) = escape_bench::write_telemetry_artifact("BENCH_dataplane", &doc) {
        println!("telemetry artifact: {}", path.display());
    }
    if let Some(path) = escape_bench::write_repo_artifact("BENCH_dataplane", &doc) {
        println!("baseline snapshot: {}", path.display());
    }
    println!("(expected shape: cached pps ≥ 10x the walk at the largest table; hit");
    println!(" rate approaches 1.0 — one compulsory miss per flow per flush)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    if std::env::var_os("ESCAPE_BENCH_TABLE_ONLY").is_some() {
        return;
    }
    let mut g = c.benchmark_group("e0_dataplane");
    g.sample_size(10);
    g.bench_function("switch_only_4096_rules_cached", |b| {
        b.iter(|| {
            let r = run_switch_only(4_096, true, 1_000);
            assert_eq!(r.delivered, 1_000);
            r.delivered
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
