//! E9 — Multi-domain scaling: the same 8-pod substrate and the same
//! 12-chain workload, partitioned into 1, 2, 4 and 8 operator domains
//! with one simulator worker per domain.
//!
//! The workload mirrors a real multi-PoP deployment: every pod carries
//! heavy local traffic (which parallelizes across domain simulators)
//! while four long chains cross half the pod line and exercise the
//! gateway handoff path.
//!
//! Deterministic part (printed + `BENCH_domains.json`): wall-clock time
//! for deploy + traffic, speedup over the single-domain baseline, and
//! the mapping success rate of the hierarchical orchestrator.
//! Criterion part: the 4-domain / 4-worker configuration end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use escape::env::Escape;
use escape_domain::DomainSpec;
use escape_orch::{MappingAlgorithm, NearestNeighbor};
use escape_pox::SteeringMode;
use escape_sg::{ResourceTopology, ServiceGraph};
use std::time::Instant;

const PODS: usize = 8;
/// One heavy local chain per pod: this is the work the domain
/// simulators can chew through in parallel.
const LOCAL_FRAMES: u64 = 20_000;
const LOCAL_INTERVAL_US: u64 = 2;
/// Four light cross-domain chains spanning half the pod line: these
/// exercise gateway stitching and the epoch-barrier handoff.
const CROSS_FRAMES: u64 = 400;
const CROSS_INTERVAL_US: u64 = 50;
const RUN_MS: u64 = 60;

/// A line of 8 pods; pod i is `sap{i}/xsap{i} - s{i} - c{i}` and the
/// `s{i}-s{i+1}` trunks become gateway links once the line is
/// partitioned.
fn pod_line() -> ResourceTopology {
    let mut topo = ResourceTopology::new();
    for i in 0..PODS {
        topo.add_switch(format!("s{i}"));
        topo.add_container(format!("c{i}"), 4.0, 2048);
        topo.add_sap(format!("sap{i}"));
        topo.add_sap(format!("xsap{i}"));
        topo.add_link(format!("sap{i}"), format!("s{i}"), 1000.0, 10);
        topo.add_link(format!("xsap{i}"), format!("s{i}"), 1000.0, 10);
        topo.add_link(format!("c{i}"), format!("s{i}"), 1000.0, 20);
        if i > 0 {
            topo.add_link(format!("s{}", i - 1), format!("s{i}"), 1000.0, 200);
        }
    }
    topo
}

/// Groups the 8 pods into `n` equal contiguous domains.
fn domain_spec(n: usize) -> DomainSpec {
    let per = PODS / n;
    let mut spec = DomainSpec::new();
    for d in 0..n {
        let nodes: Vec<String> = (d * per..(d + 1) * per)
            .flat_map(|i| {
                [
                    format!("sap{i}"),
                    format!("xsap{i}"),
                    format!("s{i}"),
                    format!("c{i}"),
                ]
            })
            .collect();
        let refs: Vec<&str> = nodes.iter().map(String::as_str).collect();
        spec = spec.domain(&format!("d{d}"), &refs);
    }
    spec
}

struct ChainJob {
    graph: ServiceGraph,
    name: String,
    sink: String,
    frames: u64,
    interval_us: u64,
}

/// The fixed workload: a heavy local chain inside every pod plus four
/// light chains from the odd pods to the pod four hops down the line.
fn workload() -> Vec<ChainJob> {
    let mut jobs = Vec::new();
    for k in 0..PODS {
        let (from, to) = (format!("sap{k}"), format!("xsap{k}"));
        let name = format!("local_{k}");
        jobs.push(ChainJob {
            graph: ServiceGraph::new()
                .sap(&from)
                .sap(&to)
                .vnf(&format!("v{k}"), "monitor", 1.0, 64)
                .chain(&name, &[&from, &format!("v{k}"), &to], 50.0, None),
            name,
            sink: to,
            frames: LOCAL_FRAMES,
            interval_us: LOCAL_INTERVAL_US,
        });
    }
    for k in (1..PODS).step_by(2) {
        let (from, to) = (format!("sap{k}"), format!("sap{}", (k + 4) % PODS));
        let name = format!("cross_{k}");
        jobs.push(ChainJob {
            graph: ServiceGraph::new()
                .sap(&from)
                .sap(&to)
                .vnf(&format!("x{k}a"), "monitor", 1.0, 64)
                .vnf(&format!("x{k}b"), "firewall", 1.0, 64)
                .chain(
                    &name,
                    &[&from, &format!("x{k}a"), &format!("x{k}b"), &to],
                    20.0,
                    None,
                ),
            name,
            sink: to,
            frames: CROSS_FRAMES,
            interval_us: CROSS_INTERVAL_US,
        });
    }
    jobs
}

struct RunResult {
    wall_ms: f64,
    total: usize,
    mapped: usize,
    delivered: u64,
}

fn run_once(domains: usize, workers: usize) -> RunResult {
    // Nearest-neighbor keeps each pod's local VNF on the pod's own
    // container at every partitioning, so the runs stay comparable
    // (first-fit would pile VNFs onto the first pods when D=1).
    let factory = || Box::new(NearestNeighbor) as Box<dyn MappingAlgorithm>;
    let jobs = workload();
    let t0 = Instant::now();
    let mut md = Escape::with_domains(
        &pod_line(),
        &domain_spec(domains),
        &factory,
        SteeringMode::Proactive,
        7,
        workers,
    )
    .unwrap();
    let mut placed = Vec::new();
    for job in &jobs {
        if md.deploy(&job.graph).is_ok() {
            placed.push(job);
        }
    }
    for job in &placed {
        md.start_chain_udp(&job.name, 128, job.interval_us, job.frames)
            .unwrap();
    }
    md.run_for_ms(RUN_MS);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let delivered = placed
        .iter()
        .map(|job| md.sap_stats(&job.sink).unwrap().udp_rx)
        .sum();
    RunResult {
        wall_ms,
        total: jobs.len(),
        mapped: placed.len(),
        delivered,
    }
}

fn print_table() {
    println!("\nE9: multi-domain scaling (8 pods, 8 local + 4 cross-domain chains)");
    println!(
        "{:>8} {:>8} {:>10} {:>9} {:>8} {:>10} {:>10}",
        "domains", "workers", "wall_ms", "speedup", "mapped", "success", "delivered"
    );
    let mut base_ms = 0.0f64;
    let mut runs = Vec::new();
    for domains in [1usize, 2, 4, 8] {
        let r = run_once(domains, domains);
        if domains == 1 {
            base_ms = r.wall_ms;
        }
        let speedup = base_ms / r.wall_ms.max(1e-9);
        let success = r.mapped as f64 / r.total as f64;
        println!(
            "{:>8} {:>8} {:>10.2} {:>9.2} {:>8} {:>10.2} {:>10}",
            domains, domains, r.wall_ms, speedup, r.mapped, success, r.delivered
        );
        runs.push(
            escape_json::Value::obj()
                .set("domains", domains as u64)
                .set("workers", domains as u64)
                .set("wall_ms", r.wall_ms)
                .set("speedup", speedup)
                .set("chains_total", r.total as u64)
                .set("chains_mapped", r.mapped as u64)
                .set("mapping_success_rate", success)
                .set("frames_delivered", r.delivered),
        );
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = escape_json::Value::obj()
        .set("experiment", "e9_domains")
        .set("host_cpus", host_cpus as u64)
        .set("runs", escape_json::Value::Arr(runs));
    if let Some(path) = escape_bench::write_telemetry_artifact("BENCH_domains", &doc) {
        println!("telemetry artifact: {}", path.display());
    }
    if let Some(path) = escape_bench::write_repo_artifact("BENCH_domains", &doc) {
        println!("baseline snapshot: {}", path.display());
    }
    println!("(expected shape: mapping success and frames delivered are identical at");
    println!(" every partitioning; wall-clock speedup tracks the host's cores — this");
    println!(" host has {host_cpus} — and saturates once domains outnumber them)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    // The deterministic table (and the BENCH_domains.json snapshot it
    // writes) is all a baseline refresh needs; the criterion loop takes
    // minutes, so let `ESCAPE_BENCH_TABLE_ONLY=1 cargo bench` skip it.
    if std::env::var_os("ESCAPE_BENCH_TABLE_ONLY").is_some() {
        return;
    }
    let mut g = c.benchmark_group("e9_domains");
    g.sample_size(10);
    g.bench_function("four_domains_four_workers", |b| {
        b.iter(|| {
            let r = run_once(4, 4);
            assert_eq!(r.mapped, r.total);
            r.delivered
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
