//! E5 — NETCONF management latency.
//!
//! Deterministic part (printed): virtual-time round trip of each
//! `vnf_starter` RPC over the emulated control network (200 µs one-way).
//! Criterion part: pure protocol cost — client encode → agent parse +
//! dispatch + respond → client decode, no emulation in the loop.

use criterion::{criterion_group, criterion_main, Criterion};
use escape::env::Escape;
use escape_netconf::agent::{Agent, VnfInstrumentation, VnfStatusInfo};
use escape_netconf::{Client, ClientEvent};
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

/// Minimal in-memory instrumentation for the pure-protocol benches.
#[derive(Default)]
struct NullInstr {
    n: u32,
}

impl VnfInstrumentation for NullInstr {
    fn initiate(
        &mut self,
        t: &str,
        _c: Option<&str>,
        _o: &[(String, String)],
    ) -> Result<String, String> {
        self.n += 1;
        Ok(format!("{t}{}", self.n))
    }
    fn start(&mut self, _v: &str) -> Result<(), String> {
        Ok(())
    }
    fn stop(&mut self, _v: &str) -> Result<(), String> {
        Ok(())
    }
    fn connect(&mut self, _v: &str, p: u16, _s: &str) -> Result<u16, String> {
        Ok(p + 100)
    }
    fn disconnect(&mut self, _v: &str, _p: u16) -> Result<(), String> {
        Ok(())
    }
    fn info(&self, _v: Option<&str>) -> Vec<VnfStatusInfo> {
        vec![VnfStatusInfo {
            id: "x1".into(),
            vnf_type: "monitor".into(),
            status: "running".into(),
            ports: vec![(0, "s0".into()), (1, "s0".into())],
            handlers: vec![("in_cnt.count".into(), "12345".into())],
        }]
    }
}

fn ready_pair() -> (Client, Agent<NullInstr>) {
    let mut client = Client::new();
    let mut agent = Agent::new(1, NullInstr::default());
    client.on_bytes(&agent.start());
    agent.on_bytes(&client.start());
    (client, agent)
}

fn print_table() {
    println!("\nE5: NETCONF RPC round trips over the emulated control network");
    println!("(control latency 200 us one-way; values are virtual time)");
    // Measure via a real deployment: each phase is a known RPC sequence.
    let mut esc = Escape::build(
        builders::linear(2, 4.0),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        11,
    )
    .unwrap();
    let sg = ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("m", "monitor", 0.5, 64)
        .chain("c", &["sap0", "m", "sap1"], 10.0, None);
    let report = esc.deploy(&sg).unwrap();
    // 1 hello exchange + 4 RPCs (initiate, connect x2, start).
    let per_rpc = report.netconf_phase().as_us() / 5;
    println!(
        "  deployment NETCONF phase: {} for ~5 exchanges  (≈{} µs per round trip)",
        report.netconf_phase(),
        per_rpc
    );
    println!("  (expected shape: each round trip ≈ 2 × 200 µs control latency + stepping)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e5_netconf");

    g.bench_function("rpc_get_vnf_info", |b| {
        let (mut client, mut agent) = ready_pair();
        b.iter(|| {
            let (_, req) = client.get_vnf_info(None);
            let resp = agent.on_bytes(&req);
            let ev = client.on_bytes(&resp);
            assert!(matches!(ev.last(), Some(ClientEvent::Reply(_))));
        });
    });

    g.bench_function("rpc_initiate_start", |b| {
        let (mut client, mut agent) = ready_pair();
        b.iter(|| {
            let (_, req) = client.initiate_vnf("monitor", None, &[]);
            let resp = agent.on_bytes(&req);
            client.on_bytes(&resp);
            let (_, req) = client.start_vnf("monitor1");
            let resp = agent.on_bytes(&req);
            client.on_bytes(&resp);
        });
    });

    g.bench_function("rpc_edit_config", |b| {
        let (mut client, mut agent) = ready_pair();
        let cfg = escape_netconf::XmlElement::parse(
            "<edit-config><target><running/></target><config><policy><name>gold</name><rate>10</rate></policy></config></edit-config>",
        )
        .unwrap();
        b.iter(|| {
            let (_, req) = client.rpc(cfg.clone());
            let resp = agent.on_bytes(&req);
            client.on_bytes(&resp);
        });
    });

    // XML parse cost in isolation (the dominant protocol cost).
    let doc = escape_netconf::message::Rpc::new(
        7,
        escape_netconf::XmlElement::parse(
            "<connectVNF><vnf-id>c0-vnf1</vnf-id><vnf-port>1</vnf-port><switch-id>s1</switch-id></connectVNF>",
        )
        .unwrap(),
    )
    .to_xml()
    .to_xml();
    g.bench_function("xml_parse_rpc", |b| {
        b.iter(|| escape_netconf::XmlElement::parse(&doc).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
