//! E2 — Mapping algorithms: runtime and acceptance ratio vs topology
//! size (the orchestrator's "different optimization algorithms").
//!
//! Deterministic part (printed): acceptance ratio, mean mapped delay and
//! path stretch per algorithm on star topologies of growing size under a
//! fixed random workload. Criterion part: wall-clock embed time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use escape_orch::workload::{random_service_graph, WorkloadSpec};
use escape_orch::{
    Backtracking, BestFitCpu, GreedyFirstFit, MappingAlgorithm, NearestNeighbor, Orchestrator,
    SimulatedAnnealing,
};
use escape_sg::topo::builders;

type AlgoFactory = Box<dyn Fn() -> Box<dyn MappingAlgorithm>>;

fn algos() -> Vec<(&'static str, AlgoFactory)> {
    vec![
        ("first_fit", Box::new(|| Box::new(GreedyFirstFit))),
        ("best_fit", Box::new(|| Box::new(BestFitCpu))),
        ("nearest", Box::new(|| Box::new(NearestNeighbor))),
        (
            "backtrack",
            Box::new(|| {
                Box::new(Backtracking {
                    node_budget: 50_000,
                })
            }),
        ),
        (
            "anneal",
            Box::new(|| {
                Box::new(SimulatedAnnealing {
                    iterations: 200,
                    seed: 9,
                })
            }),
        ),
    ]
}

fn workload(leaves: usize) -> WorkloadSpec {
    WorkloadSpec {
        chains: leaves,
        vnfs_per_chain: (1, 3),
        cpu: (0.5, 1.5),
        bandwidth_mbps: (20.0, 80.0),
        max_delay_us: Some(2_000),
        seed: 42,
    }
}

fn print_table() {
    println!("\nE2: mapping algorithms — acceptance & quality (star topologies)");
    println!(
        "{:>7} {:>11} {:>10} {:>12} {:>11}",
        "leaves", "algorithm", "accepted", "mean_delay", "mean_hops"
    );
    for leaves in [4usize, 8, 16, 32] {
        let topo = builders::star(leaves, 4.0);
        let sg = random_service_graph(&topo, &workload(leaves)).unwrap();
        for (name, mk) in algos() {
            // Backtracking explodes on big instances; cap it.
            if name == "backtrack" && leaves > 8 {
                continue;
            }
            let mut orch = Orchestrator::new(topo.clone(), mk()).unwrap();
            let (ok, _rej) = orch.embed_graph(&sg);
            let n = ok.len();
            let mean_delay = if n > 0 {
                ok.iter().map(|m| m.total_delay_us).sum::<u64>() / n as u64
            } else {
                0
            };
            let mean_hops = if n > 0 {
                ok.iter().map(|m| m.hop_count()).sum::<usize>() as f64 / n as f64
            } else {
                0.0
            };
            println!(
                "{:>7} {:>11} {:>7}/{:<3} {:>10}us {:>11.1}",
                leaves,
                name,
                n,
                sg.chains.len(),
                mean_delay,
                mean_hops
            );
        }
    }
    println!("(expected shape: nearest/backtrack/anneal beat first-fit on delay;");
    println!(" first-fit/best-fit accept less under bandwidth pressure)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e2_mapping");
    g.sample_size(10);
    for leaves in [8usize, 32] {
        let topo = builders::star(leaves, 4.0);
        let sg = random_service_graph(&topo, &workload(leaves)).unwrap();
        for (name, mk) in algos() {
            if name == "backtrack" && leaves > 8 {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(name, leaves),
                &(topo.clone(), sg.clone()),
                |b, (topo, sg)| {
                    b.iter(|| {
                        let mut orch = Orchestrator::new(topo.clone(), mk()).unwrap();
                        let (ok, rej) = orch.embed_graph(sg);
                        (ok.len(), rej.len())
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
