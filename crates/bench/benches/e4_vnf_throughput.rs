//! E4 — Click VNF dataplane throughput per catalog type and packet size.
//!
//! Criterion measures per-packet processing cost of each catalog VNF's
//! forward path; the printed table derives packets/s and the modelled
//! CPU cost (the number the cgroup model charges).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use escape_catalog::Catalog;
use escape_click::{Registry, Router};
use escape_netem::Time;
use escape_packet::{MacAddr, Packet, PacketBuilder};
use std::net::Ipv4Addr;

fn frame(len: usize) -> Packet {
    let data = PacketBuilder::udp_with_len(
        MacAddr::from_id(1),
        MacAddr::from_id(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        4000,
        8000,
        len,
    );
    Packet {
        data,
        id: 1,
        born_ns: 0,
    }
}

/// VNFs with a plain port-0 -> port-1 forward path.
const TYPES: &[&str] = &[
    "bridge",
    "firewall",
    "rate_limiter",
    "dpi",
    "nat",
    "monitor",
    "qos_marker",
    "sampler",
    "ttl_guard",
];

fn build(vnf: &str) -> Router {
    let catalog = Catalog::standard();
    let overrides: Vec<(String, String)> = match vnf {
        // Give the shaper enough rate that it forwards inline.
        "rate_limiter" => vec![("rate_bps".into(), "100000000000".into())],
        _ => vec![],
    };
    catalog
        .build_router(vnf, &overrides, &Registry::standard(), 1)
        .unwrap()
}

fn print_table() {
    println!("\nE4: per-VNF modelled CPU cost (ns/packet, what the cgroup model charges)");
    println!("{:>14} {:>10} {:>10} {:>10}", "vnf", "64B", "512B", "1500B");
    for vnf in TYPES {
        let mut row = format!("{vnf:>14}");
        for len in [64usize, 512, 1500] {
            let mut r = build(vnf);
            let mut total = 0u64;
            for i in 0..100 {
                let out = r.push_external(0, frame(len), Time::from_us(i));
                total += out.work_ns;
            }
            row.push_str(&format!(" {:>10}", total / 100));
        }
        println!("{row}");
    }
    println!("(expected shape: dpi/nat cost most; dpi scales with packet size)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e4_vnf_throughput");
    for vnf in TYPES {
        for len in [64usize, 1500] {
            g.throughput(Throughput::Elements(1));
            g.bench_with_input(BenchmarkId::new(*vnf, len), &len, |b, &len| {
                let mut r = build(vnf);
                let pkt = frame(len);
                let mut t = 0u64;
                b.iter(|| {
                    t += 1;
                    r.push_external(0, pkt.clone(), Time::from_ns(t))
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
