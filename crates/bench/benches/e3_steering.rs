//! E3 — Traffic steering: reactive vs proactive (design choice D1), plus
//! raw flow-table performance.
//!
//! Deterministic part (printed): first-packet and steady-state latency
//! through a chain under both steering modes, with controller message
//! counts. Criterion part: flow-table lookup and flow-mod install rates
//! on the software switch.

use criterion::{criterion_group, criterion_main, Criterion};
use escape::env::Escape;
use escape_netem::Time;
use escape_openflow::{table::FlowEntry, Action, FlowTable, Match};
use escape_orch::GreedyFirstFit;
use escape_packet::{FlowKey, MacAddr, PacketBuilder};
use escape_pox::{Controller, SteeringMode};
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;
use std::net::Ipv4Addr;

fn sg() -> ServiceGraph {
    ServiceGraph::new()
        .sap("sap0")
        .sap("sap1")
        .vnf("m", "monitor", 0.5, 64)
        .chain("c", &["sap0", "m", "sap1"], 20.0, None)
}

fn run_mode(mode: SteeringMode) -> (u64, u64, u64, u64, escape_json::Value) {
    let mut esc =
        Escape::build(builders::linear(2, 4.0), Box::new(GreedyFirstFit), mode, 3).unwrap();
    esc.deploy(&sg()).unwrap();
    esc.start_udp("sap0", "sap1", 128, 1_000, 20).unwrap();
    esc.run_for_ms(100);
    let stats = esc.sap_stats("sap1").unwrap();
    let ctl = esc
        .sim
        .node_as::<Controller>(esc.infra.controller)
        .unwrap()
        .stats();
    let metrics = esc.metrics().json_value();
    // First packet latency ≈ max (it pays the reactive penalty), steady
    // state ≈ mean of the rest.
    (
        stats.latency_max_ns / 1_000,
        stats.latency_sum_ns / stats.latency_samples.max(1) / 1_000,
        ctl.packet_ins,
        ctl.flow_mods_sent,
        metrics,
    )
}

fn print_table() {
    println!("\nE3: steering modes (1-VNF chain, 20 frames)");
    println!(
        "{:>10} {:>14} {:>13} {:>11} {:>10}",
        "mode", "first_pkt_us", "mean_lat_us", "packet_ins", "flow_mods"
    );
    let mut doc = escape_json::Value::obj().set("experiment", "e3_steering");
    for (name, mode) in [
        ("proactive", SteeringMode::Proactive),
        ("reactive", SteeringMode::Reactive),
    ] {
        let (first, mean, pins, fmods, metrics) = run_mode(mode);
        println!("{name:>10} {first:>14} {mean:>13} {pins:>11} {fmods:>10}");
        doc = doc.set(name, metrics);
    }
    if let Some(path) = escape_bench::write_telemetry_artifact("e3_steering", &doc) {
        println!("telemetry artifact: {}", path.display());
    }
    println!("(expected shape: reactive pays a controller round-trip on the first");
    println!(" packet and emits packet-ins; proactive pre-installs everything)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e3_steering");

    // Flow-table lookup rate with a realistic table.
    let mut table = FlowTable::new();
    for i in 0..200u16 {
        let m = Match::any().with_dl_type(0x0800).with_tp_dst(i);
        table.add(FlowEntry::new(m, 100 + i, vec![Action::out(1)], Time::ZERO));
    }
    let frame = PacketBuilder::udp(
        MacAddr::from_id(1),
        MacAddr::from_id(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        999,
        150,
        bytes::Bytes::from_static(b"bench"),
    );
    let key = FlowKey::extract(&frame).unwrap();
    g.bench_function("flow_table_lookup_200", |b| {
        b.iter(|| table.lookup(&key, 0, 128, Time::ZERO).is_some());
    });

    // Flow-mod install rate.
    g.bench_function("flow_mod_install", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            let m = Match::any().with_dl_type(0x0800).with_tp_dst(i);
            table.add(FlowEntry::new(m, 5, vec![Action::out(2)], Time::ZERO));
        });
    });

    // Wire encode/decode cost of a flow-mod (control channel overhead).
    let fm = escape_openflow::OfMessage::FlowMod {
        match_: Match::any()
            .with_dl_type(0x0800)
            .with_nw_dst(Ipv4Addr::new(10, 0, 0, 2), 32),
        cookie: 1,
        command: escape_openflow::FlowModCommand::Add,
        idle_timeout: 0,
        hard_timeout: 0,
        priority: 500,
        buffer_id: 0xffff_ffff,
        out_port: 0xffff,
        flags: 0,
        actions: vec![Action::out(3)],
    };
    g.bench_function("flow_mod_wire_roundtrip", |b| {
        b.iter(|| {
            let wire = fm.encode(7);
            escape_openflow::OfMessage::decode(&wire).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
