//! E1 — Chain setup latency vs chain length (the paper's "setting up and
//! configuring service chains on demand").
//!
//! Deterministic part (printed): virtual-time setup latency per phase
//! (mapping ≈ 0, NETCONF RPCs, flow programming) for chains of 1..8
//! VNFs. Criterion part: wall-clock cost of a full deploy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use escape::env::Escape;
use escape_orch::NearestNeighbor;
use escape_pox::SteeringMode;
use escape_sg::topo::builders;
use escape_sg::ServiceGraph;

fn chain_sg(n_vnfs: usize) -> ServiceGraph {
    let mut sg = ServiceGraph::new().sap("sap0").sap("sap1");
    let mut hops = vec!["sap0".to_string()];
    for i in 0..n_vnfs {
        sg = sg.vnf(&format!("v{i}"), "monitor", 0.25, 32);
        hops.push(format!("v{i}"));
    }
    hops.push("sap1".to_string());
    let refs: Vec<&str> = hops.iter().map(|s| s.as_str()).collect();
    sg.chain("c", &refs, 10.0, None)
}

fn fresh_env() -> Escape {
    Escape::build(
        builders::linear(8, 0.3), // one VNF per container: chains spread
        Box::new(NearestNeighbor),
        SteeringMode::Proactive,
        1,
    )
    .expect("env builds")
}

fn print_table() {
    println!("\nE1: chain setup latency (virtual time) vs chain length");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "vnfs", "total_us", "netconf_us", "steering_us", "rpcs", "rules"
    );
    let mut runs = Vec::new();
    for n in [1usize, 2, 3, 4, 6, 8] {
        let mut esc = fresh_env();
        let report = esc.deploy(&chain_sg(n)).expect("deploys");
        let dc = &report.chains[0];
        // RPCs: initiate + 2x connect + start per VNF (hello amortized).
        let rpcs = dc.vnfs.len() * 4;
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>8} {:>8}",
            n,
            report.total().as_us(),
            report.netconf_phase().as_us(),
            report.steering_phase().as_us(),
            rpcs,
            dc.rules
        );
        runs.push(
            escape_json::Value::obj()
                .set("vnfs", n as u64)
                .set("total_us", report.total().as_us())
                .set("metrics", esc.metrics().json_value())
                .set("trace", esc.tracer().json_value()),
        );
    }
    let doc = escape_json::Value::obj()
        .set("experiment", "e1_chain_setup")
        .set("runs", escape_json::Value::Arr(runs));
    if let Some(path) = escape_bench::write_telemetry_artifact("e1_chain_setup", &doc) {
        println!("telemetry artifact: {}", path.display());
    }
    println!("(expected shape: total grows linearly with chain length, NETCONF dominates)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e1_chain_setup");
    g.sample_size(10);
    for n in [1usize, 4] {
        g.bench_function(format!("deploy_{n}vnf"), |b| {
            b.iter_batched(
                fresh_env,
                |mut esc| {
                    esc.deploy(&chain_sg(n)).expect("deploys");
                    esc
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
