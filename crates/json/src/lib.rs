//! Dependency-free JSON for ESCAPE-RS.
//!
//! The workspace builds in a container without crates.io access, so the
//! machine interchange formats (service graphs, topologies, telemetry
//! snapshots) run on this small hand-rolled JSON library instead of
//! serde. It provides a [`Value`] model, a strict parser and a pretty
//! printer whose output matches the shapes the previous serde-based
//! format produced (objects keep insertion order; floats always carry a
//! decimal point, integers never do).
//!
//! The parser accepts any RFC 8259 document; the printer emits 2-space
//! indented output like `serde_json::to_string_pretty`.

/// A parse failure with the byte offset it occurred at. The offset is
/// into the raw input handed to [`Value::parse_detailed`] — control
/// planes surface it verbatim so clients can point at the broken byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position in the input where parsing failed.
    pub offset: usize,
    /// What went wrong there.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integral number (printed without a decimal point).
    Int(i64),
    /// Floating number (printed with a decimal point).
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Builder-style field insert (replaces an existing key).
    pub fn set(mut self, key: &str, v: impl Into<Value>) -> Value {
        if let Value::Obj(fields) = &mut self {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = v.into();
            } else {
                fields.push((key.to_string(), v.into()));
            }
            self
        } else {
            panic!("set() on non-object {self:?}");
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content widened to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integral content.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// Boolean content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(src: &str) -> Result<Value, String> {
        Value::parse_detailed(src).map_err(|e| e.to_string())
    }

    /// [`Value::parse`] with a structured error carrying the byte
    /// offset of the failure.
    pub fn parse_detailed(src: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// 2-space indented rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // {:?} prints the shortest representation that
                    // round-trips, always with a decimal point or exponent.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Value::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        if u <= i64::MAX as u64 {
            Value::Int(u as i64)
        } else {
            Value::Float(u as f64)
        }
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::Int(u as i64)
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::from(u as u64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len()
            && matches!(self.src[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(e.to_string()))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Overflowing integers degrade to float like serde_json's
                // arbitrary-precision-off behaviour.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| self.err(e.to_string())),
            }
        }
    }
}

/// Compact single-line rendering (`value.to_string()`).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Value::obj()
            .set("name", "s0")
            .set("cpu", 2.0)
            .set("mem", 256u64)
            .set("tags", vec!["a", "b"])
            .set("opt", Value::Null)
            .set("on", true);
        let text = v.to_string_pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.get("cpu").unwrap().as_f64(), Some(2.0));
        assert_eq!(back.get("mem").unwrap().as_u64(), Some(256));
    }

    #[test]
    fn floats_keep_decimal_point_ints_do_not() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
        assert_eq!(Value::Int(10).to_string(), "10");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\té\u{1}".to_string());
        let back = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        let e = Value::parse_detailed("{\"a\": nope}").unwrap_err();
        assert_eq!(e.offset, 6, "{e}");
        let e = Value::parse_detailed("{} trailing").unwrap_err();
        assert_eq!(e.offset, 3, "{e}");
        assert!(e.to_string().contains("at byte 3"));
        let e = Value::parse_detailed("[1, 2").unwrap_err();
        assert_eq!(e.offset, 5, "{e}");
        // The String-typed wrapper renders the same diagnostics.
        assert_eq!(
            Value::parse("{} trailing").unwrap_err(),
            "trailing garbage at byte 3"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{nope}").is_err());
        assert!(Value::parse("").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} x").is_err());
    }

    #[test]
    fn parses_hand_written_documents() {
        let v = Value::parse(r#"{"a": [1, 2.5, null, {"b": "c"}], "d": -3, "e": 1e3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(1000.0));
    }
}
