//! The controller core: connection handshake and event dispatch.

use crate::component::{Component, Ctl, PacketInEvent};
use escape_netem::{CtrlId, NodeCtx, NodeLogic, Time};
use escape_openflow::{OfMessage, PortDesc};
use escape_packet::{FlowKey, Packet};
use escape_telemetry::{Counter, Registry};
use std::collections::HashMap;

/// Timer token: kick off handshakes on registered connections.
const HANDSHAKE_TOKEN: u64 = 0xC0DE;
/// Timer token: components asked to flush queued work (see
/// [`Controller::request_flush`]).
pub const FLUSH_TOKEN: u64 = 0xF1;

/// Counters exposed by the controller — a point-in-time view over the
/// telemetry registry (`pox.*` counters), kept for API compatibility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    pub packet_ins: u64,
    pub flow_mods_sent: u64,
    pub packet_outs_sent: u64,
    pub connections_up: u64,
    pub unhandled_packet_ins: u64,
}

/// Cached registry handles for the controller hot path.
struct CoreCounters {
    packet_ins: Counter,
    flow_mods: Counter,
    packet_outs: Counter,
    connections_up: Counter,
    unhandled_packet_ins: Counter,
}

impl CoreCounters {
    fn new(reg: &Registry) -> CoreCounters {
        CoreCounters {
            packet_ins: reg.counter("pox.packet_ins"),
            flow_mods: reg.counter("pox.flow_mods"),
            packet_outs: reg.counter("pox.packet_outs"),
            connections_up: reg.counter("pox.connections_up"),
            unhandled_packet_ins: reg.counter("pox.unhandled_packet_ins"),
        }
    }
}

struct ConnState {
    dpid: Option<u64>,
    hello_sent: bool,
}

/// The POX-style controller node. Register switch control channels with
/// [`Controller::register_switch`] and components with
/// [`Controller::add_component`]; then arm the handshake with
/// [`Controller::start`].
pub struct Controller {
    conns: HashMap<u32, ConnState>,
    by_dpid: HashMap<u64, CtrlId>,
    ports_by_dpid: HashMap<u64, Vec<PortDesc>>,
    components: Vec<Option<Box<dyn Component>>>,
    telemetry: Registry,
    counters: CoreCounters,
    xid: u32,
}

impl Controller {
    /// An empty controller with a private telemetry registry.
    pub fn new() -> Controller {
        Controller::with_registry(Registry::new())
    }

    /// An empty controller publishing its counters into `registry` —
    /// the environment passes the simulation-wide registry here.
    pub fn with_registry(registry: Registry) -> Controller {
        let counters = CoreCounters::new(&registry);
        Controller {
            conns: HashMap::new(),
            by_dpid: HashMap::new(),
            ports_by_dpid: HashMap::new(),
            components: Vec::new(),
            telemetry: registry,
            counters,
            xid: 0,
        }
    }

    /// The registry this controller publishes `pox.*` counters into.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Current counter values (compat view over the telemetry registry).
    pub fn stats(&self) -> ControllerStats {
        ControllerStats {
            packet_ins: self.counters.packet_ins.get(),
            flow_mods_sent: self.counters.flow_mods.get(),
            packet_outs_sent: self.counters.packet_outs.get(),
            connections_up: self.counters.connections_up.get(),
            unhandled_packet_ins: self.counters.unhandled_packet_ins.get(),
        }
    }

    /// Registers the control channel of one switch. Call before `start`.
    pub fn register_switch(&mut self, conn: CtrlId) {
        self.conns.insert(
            conn.0,
            ConnState {
                dpid: None,
                hello_sent: false,
            },
        );
    }

    /// Adds a component at the end of the dispatch chain. The component's
    /// counters are re-homed into this controller's telemetry registry.
    pub fn add_component(&mut self, mut c: Box<dyn Component>) {
        c.attach_telemetry(&self.telemetry);
        self.components.push(Some(c));
    }

    /// Typed access to a registered component.
    pub fn component_as<T: Component + 'static>(&self) -> Option<&T> {
        self.components
            .iter()
            .filter_map(|c| c.as_deref())
            .find_map(|c| c.as_any().downcast_ref::<T>())
    }

    /// Typed mutable access to a registered component.
    pub fn component_as_mut<T: Component + 'static>(&mut self) -> Option<&mut T> {
        self.components
            .iter_mut()
            .filter_map(|c| c.as_deref_mut())
            .find_map(|c| c.as_any_mut().downcast_mut::<T>())
    }

    /// Arms the handshake timer; call once after building the topology.
    pub fn start(sim: &mut escape_netem::Sim, me: escape_netem::NodeId) {
        sim.set_timer_for(me, Time::ZERO, HANDSHAKE_TOKEN);
    }

    /// Asks the controller to give components a `FLUSH` timer event at
    /// `delay` from now — used by the orchestrator after enqueueing rules
    /// into a component from outside the event loop.
    pub fn request_flush(sim: &mut escape_netem::Sim, me: escape_netem::NodeId, delay: Time) {
        sim.set_timer_for(me, delay, FLUSH_TOKEN);
    }

    /// Datapaths that completed the handshake.
    pub fn connected_dpids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.by_dpid.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Ports reported by a datapath in its features reply.
    pub fn ports_of(&self, dpid: u64) -> Option<&[PortDesc]> {
        self.ports_by_dpid.get(&dpid).map(|v| v.as_slice())
    }

    /// Runs `f` over each component with a [`Ctl`], stopping early if `f`
    /// returns true (event consumed).
    fn dispatch(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        mut f: impl FnMut(&mut Box<dyn Component>, &mut Ctl<'_, '_>) -> bool,
    ) -> bool {
        for i in 0..self.components.len() {
            let Some(mut c) = self.components[i].take() else {
                continue;
            };
            let mut ctl = Ctl {
                ctx,
                by_dpid: &self.by_dpid,
                flow_mods_sent: &self.counters.flow_mods,
                packet_outs_sent: &self.counters.packet_outs,
                xid: &mut self.xid,
            };
            let consumed = f(&mut c, &mut ctl);
            self.components[i] = Some(c);
            if consumed {
                return true;
            }
        }
        false
    }

    fn send_on(&mut self, ctx: &mut NodeCtx<'_>, conn: CtrlId, msg: OfMessage) {
        self.xid = self.xid.wrapping_add(1);
        ctx.ctrl_send(conn, msg.encode(self.xid));
    }
}

impl Default for Controller {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeLogic for Controller {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: u16, _pkt: Packet) {
        // The controller has no dataplane ports in the dedicated
        // control-network configuration.
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        match token {
            HANDSHAKE_TOKEN => {
                let pending: Vec<u32> = self
                    .conns
                    .iter()
                    .filter(|(_, s)| !s.hello_sent)
                    .map(|(&c, _)| c)
                    .collect();
                for c in pending {
                    self.conns.get_mut(&c).unwrap().hello_sent = true;
                    self.send_on(ctx, CtrlId(c), OfMessage::Hello);
                    self.send_on(ctx, CtrlId(c), OfMessage::FeaturesRequest);
                }
            }
            FLUSH_TOKEN => {
                self.dispatch(ctx, |c, ctl| {
                    // Reuse connection-up as the "re-sync your state" hook:
                    // steering flushes queued rules for every known dpid.
                    for dpid in ctl.dpids() {
                        c.on_connection_up(ctl, dpid, &[]);
                    }
                    false
                });
            }
            _ => {}
        }
    }

    fn on_ctrl(&mut self, ctx: &mut NodeCtx<'_>, conn: CtrlId, msg: Vec<u8>) {
        let Ok((msg, _xid)) = OfMessage::decode(&msg) else {
            return;
        };
        match msg {
            OfMessage::Hello => {} // our hello was already sent
            OfMessage::EchoRequest(d) => self.send_on(ctx, conn, OfMessage::EchoReply(d)),
            OfMessage::FeaturesReply {
                datapath_id, ports, ..
            } => {
                if let Some(st) = self.conns.get_mut(&conn.0) {
                    st.dpid = Some(datapath_id);
                }
                self.by_dpid.insert(datapath_id, conn);
                self.ports_by_dpid.insert(datapath_id, ports.clone());
                self.counters.connections_up.inc();
                self.dispatch(ctx, |c, ctl| {
                    c.on_connection_up(ctl, datapath_id, &ports);
                    false
                });
            }
            OfMessage::PacketIn {
                buffer_id,
                total_len,
                in_port,
                data,
                ..
            } => {
                let Some(dpid) = self.conns.get(&conn.0).and_then(|s| s.dpid) else {
                    return;
                };
                self.counters.packet_ins.inc();
                let ev = PacketInEvent {
                    dpid,
                    buffer_id,
                    in_port,
                    total_len,
                    key: FlowKey::extract(&data).ok(),
                    data,
                };
                let consumed = self.dispatch(ctx, |c, ctl| c.on_packet_in(ctl, &ev));
                if !consumed {
                    self.counters.unhandled_packet_ins.inc();
                }
            }
            OfMessage::FlowRemoved { .. } => {
                let Some(dpid) = self.conns.get(&conn.0).and_then(|s| s.dpid) else {
                    return;
                };
                let m = msg.clone();
                self.dispatch(ctx, |c, ctl| {
                    c.on_flow_removed(ctl, dpid, &m);
                    false
                });
            }
            OfMessage::FlowStatsReply(_) | OfMessage::PortStatsReply(_) => {
                let Some(dpid) = self.conns.get(&conn.0).and_then(|s| s.dpid) else {
                    return;
                };
                let m = msg.clone();
                self.dispatch(ctx, |c, _ctl| {
                    c.on_stats(dpid, &m);
                    false
                });
            }
            // Barriers, errors: currently informational.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_netem::Sim;
    use escape_openflow::Switch;

    #[test]
    fn handshake_brings_connections_up() {
        let mut sim = Sim::new(1);
        let s1 = sim.add_node("s1", 2, Box::new(Switch::new(11, 2)));
        let s2 = sim.add_node("s2", 2, Box::new(Switch::new(22, 2)));
        let c = sim.add_node("c0", 0, Box::new(Controller::new()));
        let l1 = sim.ctrl_connect(s1, c, Time::from_us(50));
        let l2 = sim.ctrl_connect(s2, c, Time::from_us(50));
        sim.node_as_mut::<Switch>(s1).unwrap().attach_controller(l1);
        sim.node_as_mut::<Switch>(s2).unwrap().attach_controller(l2);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.register_switch(l1);
            ctl.register_switch(l2);
        }
        Controller::start(&mut sim, c);
        sim.run(100);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        assert_eq!(ctl.connected_dpids(), vec![11, 22]);
        assert_eq!(ctl.stats().connections_up, 2);
        assert_eq!(ctl.ports_of(11).unwrap().len(), 2);
    }

    #[test]
    fn echo_requests_are_answered() {
        // A switch doesn't send echo requests by itself; simulate one.
        let mut sim = Sim::new(1);
        let s1 = sim.add_node("s1", 1, Box::new(Switch::new(1, 1)));
        let c = sim.add_node("c0", 0, Box::new(Controller::new()));
        let l = sim.ctrl_connect(s1, c, Time::from_us(10));
        sim.node_as_mut::<Switch>(s1).unwrap().attach_controller(l);
        sim.node_as_mut::<Controller>(c).unwrap().register_switch(l);
        Controller::start(&mut sim, c);
        sim.run(50);
        // Now fire an echo from the switch side.
        sim.ctrl_send_from(s1, l, OfMessage::EchoRequest(vec![7]).encode(99));
        let before = sim.stats().ctrl_messages;
        sim.run(50);
        assert!(sim.stats().ctrl_messages > before, "echo reply flowed");
    }
}
