//! The classic learning switch (POX `forwarding.l2_learning`).

use crate::component::{Component, Ctl, PacketInEvent};
use escape_netem::Time;
use escape_openflow::{port, switch::NO_BUFFER, Action, Match, OfMessage, PortDesc};
use escape_packet::MacAddr;
use std::collections::HashMap;

/// Per-switch MAC learning plus reactive exact-match flow installation.
pub struct L2Learning {
    /// (dpid, mac) -> port.
    table: HashMap<(u64, MacAddr), u16>,
    /// Idle timeout for installed flows, seconds.
    pub idle_timeout: u16,
    /// Flows installed (diagnostics).
    pub flows_installed: u64,
    /// Floods performed (diagnostics).
    pub floods: u64,
}

impl L2Learning {
    pub fn new() -> L2Learning {
        L2Learning {
            table: HashMap::new(),
            idle_timeout: 10,
            flows_installed: 0,
            floods: 0,
        }
    }

    /// Looks up a learned location.
    pub fn location_of(&self, dpid: u64, mac: MacAddr) -> Option<u16> {
        self.table.get(&(dpid, mac)).copied()
    }
}

impl Default for L2Learning {
    fn default() -> Self {
        Self::new()
    }
}

impl Component for L2Learning {
    fn name(&self) -> &'static str {
        "l2_learning"
    }

    fn on_connection_up(&mut self, _ctl: &mut Ctl<'_, '_>, _dpid: u64, _ports: &[PortDesc]) {}

    fn on_packet_in(&mut self, ctl: &mut Ctl<'_, '_>, ev: &PacketInEvent) -> bool {
        let Some(key) = ev.key else { return false };
        // Learn the source.
        self.table.insert((ev.dpid, key.eth_src), ev.in_port);
        if key.eth_dst.is_unicast() {
            if let Some(&out) = self.table.get(&(ev.dpid, key.eth_dst)) {
                if out == ev.in_port {
                    // Destination is where the packet came from: drop it
                    // to avoid a loop (packet-out with no actions).
                    ctl.packet_out(
                        ev.dpid,
                        ev.buffer_id,
                        ev.in_port,
                        vec![],
                        bytes::Bytes::new(),
                    );
                    return true;
                }
                // Install an exact flow and release the buffered packet
                // through it.
                let m = Match::exact_from_key(&key, ev.in_port);
                ctl.flow_add(
                    ev.dpid,
                    m,
                    100,
                    vec![Action::out(out)],
                    self.idle_timeout,
                    0,
                    ev.buffer_id,
                    0,
                );
                self.flows_installed += 1;
                let _ = Time::ZERO;
                return true;
            }
        }
        // Unknown or broadcast destination: flood.
        self.floods += 1;
        if ev.buffer_id != NO_BUFFER {
            ctl.packet_out(
                ev.dpid,
                ev.buffer_id,
                ev.in_port,
                vec![Action::out(port::FLOOD)],
                bytes::Bytes::new(),
            );
        } else {
            ctl.packet_out(
                ev.dpid,
                NO_BUFFER,
                ev.in_port,
                vec![Action::out(port::FLOOD)],
                ev.data.clone(),
            );
        }
        true
    }

    fn on_flow_removed(&mut self, _ctl: &mut Ctl<'_, '_>, _dpid: u64, _msg: &OfMessage) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Controller;
    use escape_netem::{Host, LinkConfig, Sim};
    use escape_openflow::Switch;
    use std::net::Ipv4Addr;

    /// h1 -- s1 -- h2, controller running l2_learning.
    fn rig() -> (
        Sim,
        escape_netem::NodeId,
        escape_netem::NodeId,
        escape_netem::NodeId,
    ) {
        let mut sim = Sim::new(5);
        let sw = sim.add_node("s1", 2, Box::new(Switch::new(1, 2)));
        let h1 = sim.add_node(
            "h1",
            1,
            Box::new(Host::new(MacAddr::from_id(1), Ipv4Addr::new(10, 0, 0, 1))),
        );
        let h2 = sim.add_node(
            "h2",
            1,
            Box::new(Host::new(MacAddr::from_id(2), Ipv4Addr::new(10, 0, 0, 2))),
        );
        sim.connect((sw, 0), (h1, 0), LinkConfig::lan());
        sim.connect((sw, 1), (h2, 0), LinkConfig::lan());
        let c = sim.add_node("c0", 0, Box::new(Controller::new()));
        let conn = sim.ctrl_connect(sw, c, Time::from_us(200));
        sim.node_as_mut::<Switch>(sw)
            .unwrap()
            .attach_controller(conn);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.register_switch(conn);
            ctl.add_component(Box::new(L2Learning::new()));
        }
        Controller::start(&mut sim, c);
        sim.run(100); // handshake
        (sim, h1, h2, c)
    }

    #[test]
    fn end_to_end_udp_through_learning_switch() {
        let (mut sim, h1, h2, c) = rig();
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            100,
            Time::from_us(500),
            20,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(1_000_000);
        // All 20 datagrams arrive (first goes via ARP + flood + reactive
        // install; the rest ride the installed flow).
        assert_eq!(sim.node_as::<Host>(h2).unwrap().stats.udp_rx, 20);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        let l2 = ctl.component_as::<L2Learning>().unwrap();
        assert!(l2.flows_installed >= 1, "reactive flow installed");
        assert!(l2.floods >= 1, "first packet flooded");
        assert!(ctl.stats().packet_ins >= 2, "ARP + first UDP punted");
        // The learning table knows both hosts.
        assert_eq!(l2.location_of(1, MacAddr::from_id(1)), Some(0));
        assert_eq!(l2.location_of(1, MacAddr::from_id(2)), Some(1));
    }

    #[test]
    fn second_flow_reuses_learned_locations() {
        let (mut sim, h1, h2, c) = rig();
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            100,
            Time::from_us(500),
            5,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(1_000_000);
        let pi_before = sim.node_as::<Controller>(c).unwrap().stats().packet_ins;
        // A second stream (different ports) needs one more reactive
        // install but no flooding (locations known).
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            1001,
            2001,
            100,
            Time::from_us(500),
            5,
        );
        // Re-arm only the new stream (index 1).
        let me = h1;
        sim.set_timer_for(me, Time::from_ms(1), 1);
        sim.run(1_000_000);
        assert_eq!(sim.node_as::<Host>(h2).unwrap().stats.udp_rx, 10);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        assert_eq!(
            ctl.stats().packet_ins,
            pi_before + 1,
            "exactly one more miss"
        );
    }
}
