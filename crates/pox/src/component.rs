//! The component (POX app) model.

use bytes::Bytes;
use escape_netem::{CtrlId, NodeCtx, Time};
use escape_openflow::{port, Action, FlowModCommand, Match, OfMessage, PortDesc};
use escape_packet::FlowKey;
use escape_telemetry::{Counter, Registry};
use std::any::Any;
use std::collections::HashMap;

/// A packet-in event as delivered to components.
#[derive(Debug, Clone)]
pub struct PacketInEvent {
    pub dpid: u64,
    pub buffer_id: u32,
    pub in_port: u16,
    pub total_len: u16,
    pub data: Bytes,
    /// Parsed flow key of the punted frame, if parseable.
    pub key: Option<FlowKey>,
}

/// `Any` plumbing for typed component access in tests and tooling.
pub trait AsAnyComponent {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAnyComponent for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A controller component (a "POX app").
///
/// Events are offered to components in registration order; a component
/// returning `true` from [`Component::on_packet_in`] consumes the event.
pub trait Component: AsAnyComponent + Send {
    /// Component name (diagnostics).
    fn name(&self) -> &'static str;

    /// Called once when the component is added to a controller; counters
    /// the component owns should be re-homed into `registry` so they show
    /// up in the environment-wide telemetry snapshot.
    fn attach_telemetry(&mut self, _registry: &Registry) {}

    /// A switch completed the handshake.
    fn on_connection_up(&mut self, _ctl: &mut Ctl<'_, '_>, _dpid: u64, _ports: &[PortDesc]) {}

    /// A packet was punted to the controller. Return `true` to consume.
    fn on_packet_in(&mut self, _ctl: &mut Ctl<'_, '_>, _ev: &PacketInEvent) -> bool {
        false
    }

    /// A flow entry expired or was deleted on a switch.
    fn on_flow_removed(&mut self, _ctl: &mut Ctl<'_, '_>, _dpid: u64, _msg: &OfMessage) {}

    /// A statistics reply arrived from a switch.
    fn on_stats(&mut self, _dpid: u64, _msg: &OfMessage) {}
}

/// The capability handle components use to talk to switches.
pub struct Ctl<'a, 'b> {
    pub(crate) ctx: &'a mut NodeCtx<'b>,
    pub(crate) by_dpid: &'a HashMap<u64, CtrlId>,
    pub(crate) flow_mods_sent: &'a Counter,
    pub(crate) packet_outs_sent: &'a Counter,
    pub(crate) xid: &'a mut u32,
}

impl Ctl<'_, '_> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Datapaths currently connected.
    pub fn dpids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.by_dpid.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Sends a raw OpenFlow message to a switch. Returns false if the
    /// datapath is unknown.
    pub fn send(&mut self, dpid: u64, msg: OfMessage) -> bool {
        let Some(&conn) = self.by_dpid.get(&dpid) else {
            return false;
        };
        *self.xid = self.xid.wrapping_add(1);
        if matches!(msg, OfMessage::FlowMod { .. }) {
            self.flow_mods_sent.inc();
        }
        if matches!(msg, OfMessage::PacketOut { .. }) {
            self.packet_outs_sent.inc();
        }
        let wire = msg.encode(*self.xid);
        self.ctx.ctrl_send(conn, wire);
        true
    }

    /// Installs a flow: `OFPFC_ADD` with the given parameters and an
    /// opaque cookie (the flight recorder reads it back from flow-match
    /// trace records to attribute packets to chains).
    #[allow(clippy::too_many_arguments)]
    pub fn flow_add_with_cookie(
        &mut self,
        dpid: u64,
        match_: Match,
        priority: u16,
        actions: Vec<Action>,
        idle_timeout: u16,
        hard_timeout: u16,
        buffer_id: u32,
        flags: u16,
        cookie: u64,
    ) -> bool {
        self.send(
            dpid,
            OfMessage::FlowMod {
                match_,
                cookie,
                command: FlowModCommand::Add,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                out_port: port::NONE,
                flags,
                actions,
            },
        )
    }

    /// Installs a flow with cookie 0.
    #[allow(clippy::too_many_arguments)]
    pub fn flow_add(
        &mut self,
        dpid: u64,
        match_: Match,
        priority: u16,
        actions: Vec<Action>,
        idle_timeout: u16,
        hard_timeout: u16,
        buffer_id: u32,
        flags: u16,
    ) -> bool {
        self.flow_add_with_cookie(
            dpid,
            match_,
            priority,
            actions,
            idle_timeout,
            hard_timeout,
            buffer_id,
            flags,
            0,
        )
    }

    /// Removes flows matching `match_` (non-strict).
    pub fn flow_delete(&mut self, dpid: u64, match_: Match) -> bool {
        self.flow_delete_with_cookie(dpid, match_, 0)
    }

    /// Removes flows matching `match_` (non-strict) that carry `cookie`
    /// (0 = any). Steering uses the chain id as the cookie, so teardown
    /// and resteer only touch the one chain's rules even when another
    /// chain's match overlaps.
    pub fn flow_delete_with_cookie(&mut self, dpid: u64, match_: Match, cookie: u64) -> bool {
        self.send(
            dpid,
            OfMessage::FlowMod {
                match_,
                cookie,
                command: FlowModCommand::Delete,
                idle_timeout: 0,
                hard_timeout: 0,
                priority: 0,
                buffer_id: escape_openflow::switch::NO_BUFFER,
                out_port: port::NONE,
                flags: 0,
                actions: vec![],
            },
        )
    }

    /// Emits a packet-out, either releasing a buffered packet or carrying
    /// `data`.
    pub fn packet_out(
        &mut self,
        dpid: u64,
        buffer_id: u32,
        in_port: u16,
        actions: Vec<Action>,
        data: Bytes,
    ) -> bool {
        self.send(
            dpid,
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quiet;
    impl Component for Quiet {
        fn name(&self) -> &'static str {
            "quiet"
        }
    }

    #[test]
    fn default_component_ignores_packet_in() {
        // A packet-in event value can be constructed and inspected.
        let ev = PacketInEvent {
            dpid: 1,
            buffer_id: 2,
            in_port: 3,
            total_len: 64,
            data: Bytes::from_static(b"x"),
            key: None,
        };
        assert_eq!(ev.dpid, 1);
        let q = Quiet;
        assert_eq!(q.name(), "quiet");
    }
}
