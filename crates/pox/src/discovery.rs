//! Topology discovery (POX's `openflow.discovery`).
//!
//! The controller injects LLDP-style probe frames out of every switch
//! port via packet-out; probes that re-appear as packet-ins on another
//! switch reveal a switch-to-switch link. The discovered adjacency is the
//! controller's own view of the infrastructure — which the orchestrator's
//! resource view can be validated against.

use crate::component::{Component, Ctl, PacketInEvent};
use bytes::Bytes;
use escape_openflow::{switch::NO_BUFFER, Action, PortDesc};
use escape_packet::{EtherType, EthernetFrame, MacAddr};
use std::collections::BTreeSet;

/// The ethertype probes are sent with (LLDP's 0x88cc).
pub const LLDP_ETHERTYPE: u16 = 0x88cc;

/// A discovered unidirectional switch link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DiscoveredLink {
    pub src_dpid: u64,
    pub src_port: u16,
    pub dst_dpid: u64,
    pub dst_port: u16,
}

/// The discovery component: floods probes on connection-up and collects
/// the resulting adjacency.
#[derive(Default)]
pub struct Discovery {
    links: BTreeSet<DiscoveredLink>,
    probes_sent: u64,
    probes_seen: u64,
}

impl Discovery {
    pub fn new() -> Discovery {
        Discovery::default()
    }

    /// Discovered links so far (sorted, deterministic).
    pub fn links(&self) -> Vec<DiscoveredLink> {
        self.links.iter().copied().collect()
    }

    /// Bidirectional link count (each unordered pair counted once).
    pub fn bidirectional_links(&self) -> usize {
        let mut pairs = BTreeSet::new();
        for l in &self.links {
            let key = if l.src_dpid <= l.dst_dpid {
                (l.src_dpid, l.src_port, l.dst_dpid, l.dst_port)
            } else {
                (l.dst_dpid, l.dst_port, l.src_dpid, l.src_port)
            };
            pairs.insert(key);
        }
        pairs.len()
    }

    /// Encodes (dpid, port) into a probe frame. The payload carries both
    /// values; the source MAC marks the frame as ours.
    fn probe(dpid: u64, port: u16) -> Bytes {
        let mut payload = Vec::with_capacity(10);
        payload.extend_from_slice(&dpid.to_be_bytes());
        payload.extend_from_slice(&port.to_be_bytes());
        EthernetFrame::new(
            MacAddr([0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e]), // LLDP multicast
            MacAddr::from_id(0xD15C),
            EtherType::Other(LLDP_ETHERTYPE),
            Bytes::from(payload),
        )
        .encode()
    }

    fn parse_probe(data: &[u8]) -> Option<(u64, u16)> {
        let eth = EthernetFrame::decode(data).ok()?;
        if eth.ethertype != EtherType::Other(LLDP_ETHERTYPE) || eth.payload.len() < 10 {
            return None;
        }
        let mut d = [0u8; 8];
        d.copy_from_slice(&eth.payload[0..8]);
        let port = u16::from_be_bytes([eth.payload[8], eth.payload[9]]);
        Some((u64::from_be_bytes(d), port))
    }

    /// Re-probes every port of every connected switch.
    pub fn reprobe(&mut self, ctl: &mut Ctl<'_, '_>, ports_of: &dyn Fn(u64) -> Vec<u16>) {
        for dpid in ctl.dpids() {
            for port in ports_of(dpid) {
                self.probes_sent += 1;
                ctl.packet_out(
                    dpid,
                    NO_BUFFER,
                    escape_openflow::port::NONE,
                    vec![Action::out(port)],
                    Self::probe(dpid, port),
                );
            }
        }
    }
}

impl Component for Discovery {
    fn name(&self) -> &'static str {
        "discovery"
    }

    fn on_connection_up(&mut self, ctl: &mut Ctl<'_, '_>, dpid: u64, ports: &[PortDesc]) {
        // Probe every port of the newly connected switch.
        for p in ports {
            self.probes_sent += 1;
            ctl.packet_out(
                dpid,
                NO_BUFFER,
                escape_openflow::port::NONE,
                vec![Action::out(p.port_no)],
                Self::probe(dpid, p.port_no),
            );
        }
    }

    fn on_packet_in(&mut self, _ctl: &mut Ctl<'_, '_>, ev: &PacketInEvent) -> bool {
        let Some((src_dpid, src_port)) = Self::parse_probe(&ev.data) else {
            return false; // not ours
        };
        self.probes_seen += 1;
        self.links.insert(DiscoveredLink {
            src_dpid,
            src_port,
            dst_dpid: ev.dpid,
            dst_port: ev.in_port,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Controller;
    use escape_netem::{LinkConfig, Sim, Time};
    use escape_openflow::Switch;

    /// Three switches in a line: s1 -(p1:p0)- s2 -(p1:p0)- s3.
    fn rig() -> (Sim, escape_netem::NodeId) {
        let mut sim = Sim::new(4);
        let s1 = sim.add_node("s1", 2, Box::new(Switch::new(1, 2)));
        let s2 = sim.add_node("s2", 2, Box::new(Switch::new(2, 2)));
        let s3 = sim.add_node("s3", 2, Box::new(Switch::new(3, 2)));
        sim.connect((s1, 1), (s2, 0), LinkConfig::lan());
        sim.connect((s2, 1), (s3, 0), LinkConfig::lan());
        let c = sim.add_node("c0", 0, Box::new(Controller::new()));
        for &sw in &[s1, s2, s3] {
            let conn = sim.ctrl_connect(sw, c, Time::from_us(100));
            sim.node_as_mut::<Switch>(sw)
                .unwrap()
                .attach_controller(conn);
            sim.node_as_mut::<Controller>(c)
                .unwrap()
                .register_switch(conn);
        }
        sim.node_as_mut::<Controller>(c)
            .unwrap()
            .add_component(Box::new(Discovery::new()));
        Controller::start(&mut sim, c);
        (sim, c)
    }

    #[test]
    fn discovers_switch_links_in_both_directions() {
        let (mut sim, c) = rig();
        sim.run(10_000);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        let d = ctl.component_as::<Discovery>().unwrap();
        let links = d.links();
        // s1<->s2 and s2<->s3, both directions each.
        assert_eq!(links.len(), 4, "{links:?}");
        assert!(links.contains(&DiscoveredLink {
            src_dpid: 1,
            src_port: 1,
            dst_dpid: 2,
            dst_port: 0
        }));
        assert!(links.contains(&DiscoveredLink {
            src_dpid: 2,
            src_port: 0,
            dst_dpid: 1,
            dst_port: 1
        }));
        assert!(links.contains(&DiscoveredLink {
            src_dpid: 2,
            src_port: 1,
            dst_dpid: 3,
            dst_port: 0
        }));
        assert_eq!(d.bidirectional_links(), 2);
    }

    #[test]
    fn probe_roundtrip_encoding() {
        let frame = Discovery::probe(0xdead_beef_cafe, 42);
        let (dpid, port) = Discovery::parse_probe(&frame).unwrap();
        assert_eq!(dpid, 0xdead_beef_cafe);
        assert_eq!(port, 42);
        // Non-probe frames are ignored.
        assert!(Discovery::parse_probe(b"junk").is_none());
        let udp = escape_packet::PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            std::net::Ipv4Addr::new(1, 1, 1, 1),
            std::net::Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            Bytes::from_static(b"x"),
        );
        assert!(Discovery::parse_probe(&udp).is_none());
    }

    #[test]
    fn non_probe_packet_ins_pass_through() {
        // Discovery must not consume ordinary traffic events.
        let (mut sim, c) = rig();
        sim.run(10_000);
        // Track unhandled count: inject a real frame at s1 port 0 (an
        // edge port) so it misses and punts.
        let s1 = escape_netem::NodeId(0);
        let udp = escape_packet::PacketBuilder::udp(
            MacAddr::from_id(9),
            MacAddr::from_id(8),
            std::net::Ipv4Addr::new(1, 1, 1, 1),
            std::net::Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            Bytes::from_static(b"user"),
        );
        sim.inject(s1, 0, udp, sim.now());
        sim.run(1_000);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        assert_eq!(
            ctl.stats().unhandled_packet_ins,
            1,
            "user traffic left to other apps"
        );
    }
}
