//! ESCAPE's traffic steering component.
//!
//! The orchestrator compiles a mapped service chain into per-switch
//! steering rules (match → actions). This component owns those rules and
//! installs them either **proactively** — pushed to the switches as soon
//! as they are queued (chain deployment time) — or **reactively** — held
//! back until the first packet of the flow misses and punts, then
//! installed with the buffered packet released through them (design
//! choice D1 in DESIGN.md).

use crate::component::{Component, Ctl, PacketInEvent};
use escape_openflow::{switch::NO_BUFFER, Action, Match, OfMessage, PortDesc};
use escape_telemetry::{Counter, Registry};
use std::collections::HashMap;

/// Install strategy for steering rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringMode {
    Proactive,
    Reactive,
}

/// One steering rule on one switch.
#[derive(Debug, Clone)]
pub struct SteeringRule {
    pub dpid: u64,
    pub match_: Match,
    pub priority: u16,
    pub actions: Vec<Action>,
    /// Seconds; 0 = permanent.
    pub idle_timeout: u16,
    /// Seconds; 0 = permanent.
    pub hard_timeout: u16,
    /// Chain identifier, so a chain can be torn down as a unit.
    pub chain_id: u64,
}

/// The steering component. Queue rules with [`TrafficSteering::queue_rules`]
/// (typically via the orchestrator), then let the controller flush them.
pub struct TrafficSteering {
    pub mode: SteeringMode,
    /// Rules not yet pushed to switches (proactive) or armed for misses
    /// (reactive keeps them here permanently).
    queued: Vec<SteeringRule>,
    /// Rules already pushed, by chain id (for teardown).
    installed: HashMap<u64, Vec<SteeringRule>>,
    /// Shadow sets: rules staged by a deployment transaction, invisible
    /// to flushes until committed (or thrown away by a rollback).
    staged: HashMap<u64, Vec<SteeringRule>>,
    /// Rules awaiting deletion from switches at the next flush.
    pending_removal: Vec<SteeringRule>,
    /// Rules installed reactively on a miss (`pox.steering.reactive_installs`).
    reactive_ctr: Counter,
    /// Rules pushed proactively (`pox.steering.proactive_installs`).
    proactive_ctr: Counter,
    /// Chains re-steered after a fault (`pox.steering.resteers`).
    resteer_ctr: Counter,
}

impl TrafficSteering {
    pub fn new(mode: SteeringMode) -> TrafficSteering {
        // A private registry until the controller re-homes the counters
        // (handles outlive the registry, so counts are never lost).
        let reg = Registry::new();
        TrafficSteering {
            mode,
            queued: Vec::new(),
            installed: HashMap::new(),
            staged: HashMap::new(),
            pending_removal: Vec::new(),
            reactive_ctr: reg.counter("pox.steering.reactive_installs"),
            proactive_ctr: reg.counter("pox.steering.proactive_installs"),
            resteer_ctr: reg.counter("pox.steering.resteers"),
        }
    }

    /// Count of rules installed reactively on a miss.
    pub fn reactive_installs(&self) -> u64 {
        self.reactive_ctr.get()
    }

    /// Count of rules pushed proactively.
    pub fn proactive_installs(&self) -> u64 {
        self.proactive_ctr.get()
    }

    /// Queues rules for installation (or reactive arming).
    pub fn queue_rules(&mut self, rules: Vec<SteeringRule>) {
        self.queued.extend(rules);
    }

    /// Number of rules awaiting proactive installation.
    pub fn pending(&self) -> usize {
        self.queued.len()
    }

    /// Rules currently installed for a chain.
    pub fn installed_for(&self, chain_id: u64) -> usize {
        self.installed.get(&chain_id).map_or(0, |v| v.len())
    }

    // ------------- staged (shadow) rule sets ------------------------

    /// Stages a chain's rules into its shadow set: they are held apart
    /// from the live queue and never reach a switch until
    /// [`TrafficSteering::commit_staged`] activates them. A deployment
    /// transaction stages during *prepare* so a failure can discard the
    /// whole set without a single flow-mod having left the controller.
    pub fn stage_rules(&mut self, chain_id: u64, rules: Vec<SteeringRule>) {
        self.staged.entry(chain_id).or_default().extend(rules);
    }

    /// Number of rules currently staged for a chain.
    pub fn staged_for(&self, chain_id: u64) -> usize {
        self.staged.get(&chain_id).map_or(0, |v| v.len())
    }

    /// Atomically activates a chain's staged set: the rules move to the
    /// live queue in one step and install at the next flush. Returns the
    /// number of rules committed.
    pub fn commit_staged(&mut self, chain_id: u64) -> usize {
        let rules = self.staged.remove(&chain_id).unwrap_or_default();
        let n = rules.len();
        self.queue_rules(rules);
        n
    }

    /// Throws a chain's staged set away (deployment rollback). Nothing
    /// was ever sent to a switch, so there is nothing to delete. Returns
    /// the number of rules discarded.
    pub fn discard_staged(&mut self, chain_id: u64) -> usize {
        self.staged.remove(&chain_id).map_or(0, |v| v.len())
    }

    /// Every chain id this component holds rules for, in any state
    /// (queued, installed, staged or awaiting removal), sorted. Leak
    /// audits compare this against the set of live chains.
    pub fn tracked_chains(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .installed
            .keys()
            .chain(self.staged.keys())
            .copied()
            .chain(self.queued.iter().map(|r| r.chain_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Queues a teardown: installed rules of `chain_id` are deleted from
    /// their switches at the next flush. Returns the affected rules.
    pub fn remove_chain(&mut self, chain_id: u64) -> Vec<SteeringRule> {
        // Also drop still-queued and still-staged rules of that chain.
        self.queued.retain(|r| r.chain_id != chain_id);
        self.staged.remove(&chain_id);
        let removed = self.installed.remove(&chain_id).unwrap_or_default();
        self.pending_removal.extend(removed.clone());
        removed
    }

    /// Re-steers a chain after a fault: its stale rules are queued for
    /// deletion and the replacement rules for installation, all applied
    /// at the next flush so switches never see a half-updated chain.
    /// Returns the number of stale rules torn down.
    pub fn resteer_chain(&mut self, chain_id: u64, rules: Vec<SteeringRule>) -> usize {
        let stale = self.remove_chain(chain_id).len();
        self.queue_rules(rules);
        self.resteer_ctr.inc();
        stale
    }

    /// Count of chains re-steered after faults.
    pub fn resteers(&self) -> u64 {
        self.resteer_ctr.get()
    }

    fn push_rule(ctl: &mut Ctl<'_, '_>, r: &SteeringRule, buffer_id: u32) -> bool {
        // The chain id rides along as the flow cookie so the flight
        // recorder can attribute matched packets back to the chain.
        ctl.flow_add_with_cookie(
            r.dpid,
            r.match_,
            r.priority,
            r.actions.clone(),
            r.idle_timeout,
            r.hard_timeout,
            buffer_id,
            0,
            r.chain_id,
        )
    }

    /// Installs every queued rule whose switch is connected (proactive
    /// mode only) and pushes pending deletions. Returns the number
    /// installed.
    fn flush(&mut self, ctl: &mut Ctl<'_, '_>) -> usize {
        for r in std::mem::take(&mut self.pending_removal) {
            // Cookie-scoped: only this chain's rule dies, even if another
            // chain installed an overlapping match on the same switch.
            ctl.flow_delete_with_cookie(r.dpid, r.match_, r.chain_id);
        }
        if self.mode != SteeringMode::Proactive {
            return 0;
        }
        let mut kept = Vec::new();
        let mut n = 0;
        for r in self.queued.drain(..) {
            if Self::push_rule(ctl, &r, NO_BUFFER) {
                self.proactive_ctr.inc();
                n += 1;
                self.installed.entry(r.chain_id).or_default().push(r);
            } else {
                kept.push(r); // switch not up yet
            }
        }
        self.queued = kept;
        n
    }
}

impl Component for TrafficSteering {
    fn name(&self) -> &'static str {
        "traffic_steering"
    }

    fn attach_telemetry(&mut self, registry: &Registry) {
        self.reactive_ctr = registry.counter("pox.steering.reactive_installs");
        self.proactive_ctr = registry.counter("pox.steering.proactive_installs");
        self.resteer_ctr = registry.counter("pox.steering.resteers");
    }

    /// Called both on real connection-up and on the controller's FLUSH
    /// event; both are moments to sync queued rules down to switches.
    fn on_connection_up(&mut self, ctl: &mut Ctl<'_, '_>, _dpid: u64, _ports: &[PortDesc]) {
        self.flush(ctl);
    }

    fn on_packet_in(&mut self, ctl: &mut Ctl<'_, '_>, ev: &PacketInEvent) -> bool {
        if self.mode != SteeringMode::Reactive {
            return false;
        }
        let Some(key) = ev.key else { return false };
        // Find the highest-priority armed rule covering this packet on
        // this switch.
        let best = self
            .queued
            .iter()
            .enumerate()
            .filter(|(_, r)| r.dpid == ev.dpid && r.match_.matches(&key, ev.in_port))
            .max_by_key(|(_, r)| r.priority)
            .map(|(i, _)| i);
        let Some(i) = best else { return false };
        let r = self.queued[i].clone();
        // Install with the buffered packet so it rides the new flow. The
        // rule stays armed: packets already in flight during the control
        // round-trip also punt, and each re-install (idempotent on the
        // switch — same match and priority) releases its buffered packet.
        Self::push_rule(ctl, &r, ev.buffer_id);
        self.reactive_ctr.inc();
        let chain = self.installed.entry(r.chain_id).or_default();
        if !chain
            .iter()
            .any(|x| x.dpid == r.dpid && x.match_ == r.match_ && x.priority == r.priority)
        {
            chain.push(r);
        }
        true
    }

    fn on_flow_removed(&mut self, _ctl: &mut Ctl<'_, '_>, dpid: u64, msg: &OfMessage) {
        // Re-arm reactive rules whose flow expired so the next packet
        // re-installs them.
        if self.mode != SteeringMode::Reactive {
            return;
        }
        if let OfMessage::FlowRemoved {
            match_, priority, ..
        } = msg
        {
            for rules in self.installed.values_mut() {
                if let Some(pos) = rules
                    .iter()
                    .position(|r| r.dpid == dpid && r.match_ == *match_ && r.priority == *priority)
                {
                    let r = rules.remove(pos);
                    let already_armed = self.queued.iter().any(|q| {
                        q.dpid == r.dpid && q.match_ == r.match_ && q.priority == r.priority
                    });
                    if !already_armed {
                        self.queued.push(r);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Controller;
    use escape_netem::{Host, LinkConfig, Sim, Time};
    use escape_openflow::Switch;
    use escape_packet::MacAddr;
    use std::net::Ipv4Addr;

    /// h1 -- s1 -- h2 with steering rules forwarding by IP.
    fn rig(
        mode: SteeringMode,
    ) -> (
        Sim,
        escape_netem::NodeId,
        escape_netem::NodeId,
        escape_netem::NodeId,
    ) {
        let mut sim = Sim::new(9);
        let sw = sim.add_node("s1", 2, Box::new(Switch::new(1, 2)));
        let h1 = sim.add_node(
            "h1",
            1,
            Box::new(Host::new(MacAddr::from_id(1), Ipv4Addr::new(10, 0, 0, 1))),
        );
        let h2 = sim.add_node(
            "h2",
            1,
            Box::new(Host::new(MacAddr::from_id(2), Ipv4Addr::new(10, 0, 0, 2))),
        );
        sim.connect((sw, 0), (h1, 0), LinkConfig::lan());
        sim.connect((sw, 1), (h2, 0), LinkConfig::lan());
        let c = sim.add_node("c0", 0, Box::new(Controller::new()));
        let conn = sim.ctrl_connect(sw, c, Time::from_us(200));
        sim.node_as_mut::<Switch>(sw)
            .unwrap()
            .attach_controller(conn);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.register_switch(conn);
            ctl.add_component(Box::new(TrafficSteering::new(mode)));
        }
        // Static ARP both ways: steering setups pre-provision ARP.
        sim.node_as_mut::<Host>(h1)
            .unwrap()
            .static_arp(Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_id(2));
        sim.node_as_mut::<Host>(h2)
            .unwrap()
            .static_arp(Ipv4Addr::new(10, 0, 0, 1), MacAddr::from_id(1));
        Controller::start(&mut sim, c);
        sim.run(100);
        (sim, h1, h2, c)
    }

    fn rules_for_chain() -> Vec<SteeringRule> {
        vec![
            SteeringRule {
                dpid: 1,
                match_: Match::any().with_nw_dst(Ipv4Addr::new(10, 0, 0, 2), 32),
                priority: 500,
                actions: vec![Action::out(1)],
                idle_timeout: 0,
                hard_timeout: 0,
                chain_id: 1,
            },
            SteeringRule {
                dpid: 1,
                match_: Match::any().with_nw_dst(Ipv4Addr::new(10, 0, 0, 1), 32),
                priority: 500,
                actions: vec![Action::out(0)],
                idle_timeout: 0,
                hard_timeout: 0,
                chain_id: 1,
            },
        ]
    }

    #[test]
    fn proactive_rules_avoid_packet_ins() {
        let (mut sim, h1, h2, c) = rig(SteeringMode::Proactive);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.component_as_mut::<TrafficSteering>()
                .unwrap()
                .queue_rules(rules_for_chain());
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        {
            let ctl = sim.node_as::<Controller>(c).unwrap();
            let st = ctl.component_as::<TrafficSteering>().unwrap();
            assert_eq!(st.proactive_installs(), 2);
            assert_eq!(st.pending(), 0);
            assert_eq!(st.installed_for(1), 2);
        }
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            64,
            Time::from_us(100),
            10,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(100_000);
        assert_eq!(sim.node_as::<Host>(h2).unwrap().stats.udp_rx, 10);
        assert_eq!(sim.node_as::<Controller>(c).unwrap().stats().packet_ins, 0);
    }

    #[test]
    fn reactive_rules_install_on_first_miss() {
        let (mut sim, h1, h2, c) = rig(SteeringMode::Reactive);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.component_as_mut::<TrafficSteering>()
                .unwrap()
                .queue_rules(rules_for_chain());
        }
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            64,
            Time::from_us(100),
            10,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(100_000);
        assert_eq!(sim.node_as::<Host>(h2).unwrap().stats.udp_rx, 10);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        let st = ctl.component_as::<TrafficSteering>().unwrap();
        // Packets in flight during the control round-trip also punt; all
        // are released, and installs stop once the flow serves traffic.
        assert!(st.reactive_installs() >= 1);
        assert!(ctl.stats().packet_ins < 10, "flow took over after install");
        assert_eq!(ctl.stats().unhandled_packet_ins, 0);
    }

    #[test]
    fn chain_teardown_forgets_rules() {
        let (mut sim, _h1, _h2, c) = rig(SteeringMode::Proactive);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.component_as_mut::<TrafficSteering>()
                .unwrap()
                .queue_rules(rules_for_chain());
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        let removed = {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.component_as_mut::<TrafficSteering>()
                .unwrap()
                .remove_chain(1)
        };
        assert_eq!(removed.len(), 2);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        assert_eq!(
            ctl.component_as::<TrafficSteering>()
                .unwrap()
                .installed_for(1),
            0
        );
    }

    #[test]
    fn teardown_is_cookie_scoped_under_overlapping_chains() {
        let (mut sim, h1, h2, c) = rig(SteeringMode::Proactive);
        // Chain 2 shares chain 1's exact match on the same switch (lower
        // priority). A match-only delete would kill both; the cookie
        // (chain id) keeps the teardown surgical.
        let chain2 = vec![SteeringRule {
            dpid: 1,
            match_: Match::any().with_nw_dst(Ipv4Addr::new(10, 0, 0, 2), 32),
            priority: 400,
            actions: vec![Action::out(1)],
            idle_timeout: 0,
            hard_timeout: 0,
            chain_id: 2,
        }];
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            let st = ctl.component_as_mut::<TrafficSteering>().unwrap();
            st.queue_rules(rules_for_chain());
            st.queue_rules(chain2);
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        let sw = sim.find_node("s1").unwrap();
        assert_eq!(sim.node_as::<Switch>(sw).unwrap().table.len(), 3);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.component_as_mut::<TrafficSteering>()
                .unwrap()
                .remove_chain(1);
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        {
            let t = &sim.node_as::<Switch>(sw).unwrap().table;
            assert_eq!(t.len(), 1, "only chain 1's rules died");
            assert_eq!(t.entries()[0].cookie, 2);
        }
        // Chain 2 still forwards h1 -> h2.
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            64,
            Time::from_us(100),
            5,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(100_000);
        assert_eq!(sim.node_as::<Host>(h2).unwrap().stats.udp_rx, 5);
    }

    #[test]
    fn resteer_replaces_rules_atomically_at_flush() {
        let (mut sim, h1, h2, c) = rig(SteeringMode::Proactive);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.component_as_mut::<TrafficSteering>()
                .unwrap()
                .queue_rules(rules_for_chain());
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        // Re-steer the chain onto a fresh (identical-shape) rule set, as
        // the environment does after rerouting around a failed link.
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            let st = ctl.component_as_mut::<TrafficSteering>().unwrap();
            let stale = st.resteer_chain(1, rules_for_chain());
            assert_eq!(stale, 2);
            assert_eq!(st.resteers(), 1);
            assert_eq!(st.installed_for(1), 0, "stale rules gone immediately");
            assert_eq!(st.pending(), 2, "replacements wait for the flush");
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        {
            let ctl = sim.node_as::<Controller>(c).unwrap();
            let st = ctl.component_as::<TrafficSteering>().unwrap();
            assert_eq!(st.installed_for(1), 2);
            assert_eq!(st.pending(), 0);
        }
        // Traffic still flows through the re-steered chain.
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            64,
            Time::from_us(100),
            10,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(100_000);
        assert_eq!(sim.node_as::<Host>(h2).unwrap().stats.udp_rx, 10);
    }

    #[test]
    fn staged_rules_stay_invisible_until_committed() {
        let (mut sim, h1, h2, c) = rig(SteeringMode::Proactive);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            let st = ctl.component_as_mut::<TrafficSteering>().unwrap();
            st.stage_rules(1, rules_for_chain());
            assert_eq!(st.staged_for(1), 2);
            assert_eq!(st.pending(), 0, "staged rules are not queued");
            assert_eq!(st.tracked_chains(), vec![1]);
        }
        // A flush while staged must not install anything.
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            let st = ctl.component_as_mut::<TrafficSteering>().unwrap();
            assert_eq!(st.proactive_installs(), 0);
            assert_eq!(st.installed_for(1), 0);
            // Commit moves the whole set to the live queue atomically.
            assert_eq!(st.commit_staged(1), 2);
            assert_eq!(st.staged_for(1), 0);
            assert_eq!(st.pending(), 2);
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        {
            let ctl = sim.node_as::<Controller>(c).unwrap();
            let st = ctl.component_as::<TrafficSteering>().unwrap();
            assert_eq!(st.installed_for(1), 2);
        }
        // Traffic flows through the committed rules.
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            64,
            Time::from_us(100),
            10,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(100_000);
        assert_eq!(sim.node_as::<Host>(h2).unwrap().stats.udp_rx, 10);
    }

    #[test]
    fn discarded_staged_rules_never_reach_a_switch() {
        let (mut sim, _h1, _h2, c) = rig(SteeringMode::Proactive);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            let st = ctl.component_as_mut::<TrafficSteering>().unwrap();
            st.stage_rules(7, rules_for_chain());
            assert_eq!(st.discard_staged(7), 2);
            assert_eq!(st.staged_for(7), 0);
            assert_eq!(st.commit_staged(7), 0, "nothing left to commit");
            assert!(st.tracked_chains().is_empty());
        }
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run(100);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        let st = ctl.component_as::<TrafficSteering>().unwrap();
        assert_eq!(st.proactive_installs(), 0);
        // remove_chain also clears any staged leftovers.
        let ctl = sim.node_as_mut::<Controller>(c).unwrap();
        let st = ctl.component_as_mut::<TrafficSteering>().unwrap();
        st.stage_rules(8, rules_for_chain());
        st.remove_chain(8);
        assert_eq!(st.staged_for(8), 0);
    }

    #[test]
    fn unmatched_packet_in_is_not_consumed() {
        let (mut sim, h1, _h2, c) = rig(SteeringMode::Reactive);
        // No rules queued: packet-ins go unhandled.
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            64,
            Time::from_us(100),
            1,
        );
        Host::start_streams(&mut sim, h1, Time::from_ms(1));
        sim.run(100_000);
        let ctl = sim.node_as::<Controller>(c).unwrap();
        assert_eq!(ctl.stats().unhandled_packet_ins, ctl.stats().packet_ins);
        assert!(ctl.stats().packet_ins >= 1);
    }
}
