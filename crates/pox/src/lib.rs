//! # escape-pox
//!
//! An event-driven OpenFlow controller platform — the POX role in
//! ESCAPE-RS.
//!
//! POX structures a controller as *components* subscribing to events
//! (ConnectionUp, PacketIn, FlowRemoved). This crate reproduces that
//! model:
//!
//! * [`core::Controller`] — an [`escape_netem::NodeLogic`] terminating one
//!   control channel per switch, running the OpenFlow handshake
//!   (hello → features) and dispatching events to registered components in
//!   order until one claims the event;
//! * [`component::Component`] — the POX-app trait, with [`component::Ctl`]
//!   as the capability handle for sending flow-mods/packet-outs;
//! * [`l2::L2Learning`] — the classic learning-switch app (POX's
//!   `forwarding.l2_learning`), used for the control-network and baseline
//!   forwarding;
//! * [`discovery::Discovery`] — LLDP-style topology discovery (POX's
//!   `openflow.discovery`);
//! * [`stats::StatsCollector`] — flow/port statistics polling, feeding
//!   the orchestration layer's global resource view;
//! * [`steering::TrafficSteering`] — ESCAPE's traffic steering app: it
//!   holds per-switch steering rules compiled from mapped service chains
//!   and installs them proactively (on connection-up / on demand) or
//!   reactively (on first packet), per the D1 design-choice ablation in
//!   DESIGN.md.

pub mod component;
pub mod core;
pub mod discovery;
pub mod l2;
pub mod stats;
pub mod steering;

pub use crate::core::{Controller, ControllerStats};
pub use component::{Component, Ctl, PacketInEvent};
pub use discovery::{DiscoveredLink, Discovery};
pub use l2::L2Learning;
pub use stats::StatsCollector;
pub use steering::{SteeringMode, SteeringRule, TrafficSteering};
