//! Flow/port statistics collection (POX's `openflow.of_01` stats plumbing
//! plus what ESCAPE's orchestration layer uses for its "global network and
//! resource view").
//!
//! The component records every stats reply the controller receives;
//! polls are triggered explicitly (the environment or a test asks for a
//! sweep via [`StatsCollector::poll_all`]) or on every controller flush.

use crate::component::{Component, Ctl};
use escape_openflow::{port, FlowStats, Match, OfMessage, PortDesc, PortStats};
use escape_telemetry::{Counter, Registry};
use std::collections::HashMap;

/// Latest statistics per datapath.
pub struct StatsCollector {
    pub flows: HashMap<u64, Vec<FlowStats>>,
    pub ports: HashMap<u64, Vec<PortStats>>,
    /// Poll requests sent (`pox.stats.polls_sent`).
    polls_ctr: Counter,
    /// Stats replies recorded (`pox.stats.replies_seen`).
    replies_ctr: Counter,
    /// When true, a poll sweep is issued on every connection-up/flush.
    pub poll_on_flush: bool,
}

impl Default for StatsCollector {
    fn default() -> Self {
        let reg = Registry::new();
        StatsCollector {
            flows: HashMap::new(),
            ports: HashMap::new(),
            polls_ctr: reg.counter("pox.stats.polls_sent"),
            replies_ctr: reg.counter("pox.stats.replies_seen"),
            poll_on_flush: false,
        }
    }
}

impl StatsCollector {
    pub fn new() -> StatsCollector {
        StatsCollector {
            poll_on_flush: true,
            ..Default::default()
        }
    }

    /// Poll requests sent so far.
    pub fn polls_sent(&self) -> u64 {
        self.polls_ctr.get()
    }

    /// Stats replies recorded so far.
    pub fn replies_seen(&self) -> u64 {
        self.replies_ctr.get()
    }

    /// Requests flow + port stats from every connected switch.
    pub fn poll_all(&mut self, ctl: &mut Ctl<'_, '_>) {
        for dpid in ctl.dpids() {
            self.polls_ctr.add(2);
            ctl.send(
                dpid,
                OfMessage::FlowStatsRequest {
                    match_: Match::any(),
                    out_port: port::NONE,
                },
            );
            ctl.send(
                dpid,
                OfMessage::PortStatsRequest {
                    port_no: port::NONE,
                },
            );
        }
    }

    /// Total packets counted across all flows of a datapath.
    pub fn total_flow_packets(&self, dpid: u64) -> u64 {
        self.flows
            .get(&dpid)
            .map_or(0, |v| v.iter().map(|f| f.packet_count).sum())
    }

    /// Aggregate rx packets across all ports of a datapath.
    pub fn total_rx_packets(&self, dpid: u64) -> u64 {
        self.ports
            .get(&dpid)
            .map_or(0, |v| v.iter().map(|p| p.rx_packets).sum())
    }
}

impl Component for StatsCollector {
    fn name(&self) -> &'static str {
        "stats_collector"
    }

    fn attach_telemetry(&mut self, registry: &Registry) {
        self.polls_ctr = registry.counter("pox.stats.polls_sent");
        self.replies_ctr = registry.counter("pox.stats.replies_seen");
    }

    fn on_connection_up(&mut self, ctl: &mut Ctl<'_, '_>, _dpid: u64, _ports: &[PortDesc]) {
        if self.poll_on_flush {
            self.poll_all(ctl);
        }
    }

    fn on_stats(&mut self, dpid: u64, msg: &OfMessage) {
        match msg {
            OfMessage::FlowStatsReply(v) => {
                self.replies_ctr.inc();
                self.flows.insert(dpid, v.clone());
            }
            OfMessage::PortStatsReply(v) => {
                self.replies_ctr.inc();
                self.ports.insert(dpid, v.clone());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Controller;
    use crate::l2::L2Learning;
    use escape_netem::{Host, LinkConfig, Sim, Time};
    use escape_openflow::Switch;
    use escape_packet::MacAddr;
    use std::net::Ipv4Addr;

    #[test]
    fn collects_flow_and_port_stats() {
        let mut sim = Sim::new(12);
        let sw = sim.add_node("s1", 2, Box::new(Switch::new(1, 2)));
        let h1 = sim.add_node(
            "h1",
            1,
            Box::new(Host::new(MacAddr::from_id(1), Ipv4Addr::new(10, 0, 0, 1))),
        );
        let h2 = sim.add_node(
            "h2",
            1,
            Box::new(Host::new(MacAddr::from_id(2), Ipv4Addr::new(10, 0, 0, 2))),
        );
        sim.connect((sw, 0), (h1, 0), LinkConfig::lan());
        sim.connect((sw, 1), (h2, 0), LinkConfig::lan());
        let c = sim.add_node("c0", 0, Box::new(Controller::new()));
        let conn = sim.ctrl_connect(sw, c, Time::from_us(100));
        sim.node_as_mut::<Switch>(sw)
            .unwrap()
            .attach_controller(conn);
        {
            let ctl = sim.node_as_mut::<Controller>(c).unwrap();
            ctl.register_switch(conn);
            ctl.add_component(Box::new(L2Learning::new()));
            ctl.add_component(Box::new(StatsCollector::new()));
        }
        Controller::start(&mut sim, c);
        sim.run(1000);

        // Move some traffic so counters are non-zero.
        sim.node_as_mut::<Host>(h1).unwrap().add_stream(
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            100,
            Time::from_us(200),
            10,
        );
        Host::start_streams(&mut sim, h1, Time::ZERO);
        // Bound by *virtual time*: running the queue dry would fire the
        // 10 s idle-timeout and expire the very flows we want to poll.
        sim.run_until(Time::from_ms(50));

        // Trigger a poll sweep via the controller flush hook.
        Controller::request_flush(&mut sim, c, Time::ZERO);
        sim.run_until(Time::from_ms(60));

        let ctl = sim.node_as::<Controller>(c).unwrap();
        let sc = ctl.component_as::<StatsCollector>().unwrap();
        assert!(sc.replies_seen() >= 2, "{} replies", sc.replies_seen());
        assert!(
            sc.total_rx_packets(1) >= 10,
            "port counters live: {}",
            sc.total_rx_packets(1)
        );
        assert!(sc.total_flow_packets(1) > 0, "flow counters live");
        assert!(!sc.flows.get(&1).unwrap().is_empty());
    }
}
