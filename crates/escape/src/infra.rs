//! Infrastructure bring-up: from a [`ResourceTopology`] to a running
//! emulated network (switches, containers, SAP hosts, control network).

use crate::container::VnfContainer;
use escape_netem::{CtrlId, Host, LinkConfig, NodeCtx, NodeId, NodeLogic, Sim, Time};
use escape_openflow::Switch;
use escape_packet::{MacAddr, Packet};
use escape_pox::{Controller, SteeringMode, TrafficSteering};
use escape_sg::topo::TopoNodeKind;
use escape_sg::ResourceTopology;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Attachment points pre-provisioned per container-switch adjacency
/// (parallel veth pairs in Mininet terms). Each VNF port connection
/// consumes one.
pub const ATTACH_POINTS_PER_LINK: u16 = 8;

/// Latency of the dedicated control network (NETCONF sessions and the
/// OpenFlow control channel).
pub const CTRL_LATENCY: Time = Time::from_us(200);

/// The management-side relay node: the orchestrator process's foothold in
/// the emulation. It terminates the manager ends of the NETCONF control
/// channels and buffers whatever arrives for the (out-of-sim) deployment
/// driver to drain.
#[derive(Default)]
pub struct ManagerRelay {
    /// (channel, raw bytes) in arrival order.
    pub inbox: Vec<(CtrlId, Vec<u8>)>,
}

impl NodeLogic for ManagerRelay {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _port: u16, _pkt: Packet) {}
    fn on_ctrl(&mut self, _ctx: &mut NodeCtx<'_>, conn: CtrlId, msg: Vec<u8>) {
        self.inbox.push((conn, msg));
    }
}

/// Everything the environment needs to address the emulated network.
pub struct Infra {
    /// Topology node name -> emulator node.
    pub nodes: HashMap<String, NodeId>,
    /// Switch name -> datapath id.
    pub dpid: HashMap<String, u64>,
    /// (switch name, adjacent non-container node name) -> switch port.
    pub switch_port: HashMap<(String, String), u16>,
    /// SAP name -> (MAC, IP).
    pub sap_addr: HashMap<String, (MacAddr, Ipv4Addr)>,
    /// Container name -> NETCONF control channel (manager side).
    pub netconf_conn: HashMap<String, CtrlId>,
    /// Control channel id -> container name (for inbox routing).
    pub conn_owner: HashMap<u32, String>,
    /// The POX controller node.
    pub controller: NodeId,
    /// The manager relay node.
    pub manager: NodeId,
}

/// A planned emulator link.
struct PlannedLink {
    a: String,
    a_port: u16,
    b: String,
    b_port: u16,
    cfg: LinkConfig,
}

impl Infra {
    /// Builds the emulated network in `sim` from `topo`:
    /// * each switch becomes a [`Switch`] with a dpid and enough ports;
    /// * each container becomes a [`VnfContainer`] with
    ///   [`ATTACH_POINTS_PER_LINK`] parallel links per switch adjacency
    ///   and an embedded NETCONF agent wired to the manager relay;
    /// * each SAP becomes a [`Host`] with deterministic MAC/IP;
    /// * a controller node runs [`TrafficSteering`] in the given mode over
    ///   a dedicated control channel per switch.
    ///
    /// Constraints checked here: SAPs and containers attach only to
    /// switches, and each SAP has exactly one uplink.
    pub fn build(
        sim: &mut Sim,
        topo: &ResourceTopology,
        mode: SteeringMode,
        seed: u64,
    ) -> Result<Infra, String> {
        topo.validate()?;
        let kind_of = |name: &str| topo.node(name).map(|n| &n.kind);
        let is_switch = |name: &str| matches!(kind_of(name), Some(TopoNodeKind::Switch));
        let is_container =
            |name: &str| matches!(kind_of(name), Some(TopoNodeKind::Container { .. }));

        // Plan ports and links.
        let mut next_port: HashMap<String, u16> = HashMap::new();
        let mut planned: Vec<PlannedLink> = Vec::new();
        let mut switch_port: HashMap<(String, String), u16> = HashMap::new();
        let mut container_attach: HashMap<String, Vec<(String, u16, u16)>> = HashMap::new();
        let mut sap_links: HashMap<String, u32> = HashMap::new();

        for l in &topo.links {
            let cfg = LinkConfig::lan()
                .with_bandwidth((l.bandwidth_mbps * 1_000_000.0) as u64)
                .with_delay(Time::from_us(l.delay_us));
            let endpoints_ok = match (is_switch(&l.a), is_switch(&l.b)) {
                (true, true) => true,
                (true, false) | (false, true) => true,
                (false, false) => false,
            };
            if !endpoints_ok {
                return Err(format!(
                    "link {}-{}: SAPs and containers must attach to switches",
                    l.a, l.b
                ));
            }
            // Normalize: `sw` is a switch; `peer` is the other end.
            let (sw, peer) = if is_switch(&l.a) {
                (&l.a, &l.b)
            } else {
                (&l.b, &l.a)
            };
            if is_container(peer) {
                for _ in 0..ATTACH_POINTS_PER_LINK {
                    let sp = alloc_port(&mut next_port, sw);
                    let cp = alloc_port(&mut next_port, peer);
                    planned.push(PlannedLink {
                        a: sw.clone(),
                        a_port: sp,
                        b: peer.clone(),
                        b_port: cp,
                        cfg,
                    });
                    container_attach
                        .entry(peer.clone())
                        .or_default()
                        .push((sw.clone(), cp, sp));
                }
            } else {
                let sp = alloc_port(&mut next_port, sw);
                let pp = alloc_port(&mut next_port, peer);
                planned.push(PlannedLink {
                    a: sw.clone(),
                    a_port: sp,
                    b: peer.clone(),
                    b_port: pp,
                    cfg,
                });
                switch_port.insert((sw.clone(), peer.clone()), sp);
                if is_switch(peer) {
                    // Switch-switch: record both directions.
                    switch_port.insert((peer.clone(), sw.clone()), pp);
                } else {
                    *sap_links.entry(peer.clone()).or_insert(0) += 1;
                }
            }
        }
        for sap in topo.saps() {
            if sap_links.get(&sap.name).copied().unwrap_or(0) != 1 {
                return Err(format!("SAP {:?} must have exactly one uplink", sap.name));
            }
        }

        // Create nodes.
        let mut nodes = HashMap::new();
        let mut dpid = HashMap::new();
        let mut sap_addr = HashMap::new();
        let mut next_dpid = 1u64;
        let mut sap_idx = 0u32;
        let mut container_idx = 0u32;
        for n in &topo.nodes {
            let ports = next_port.get(&n.name).copied().unwrap_or(0).max(1);
            let id = match &n.kind {
                TopoNodeKind::Switch => {
                    let d = next_dpid;
                    next_dpid += 1;
                    dpid.insert(n.name.clone(), d);
                    let mut sw = Switch::new(d, ports);
                    // Flow-cache hit/miss/invalidation counters land in
                    // the environment-wide snapshot (all switches share
                    // the `openflow.cache_*` series).
                    sw.attach_telemetry(sim.telemetry());
                    sim.add_node(n.name.clone(), ports, Box::new(sw))
                }
                TopoNodeKind::Container { .. } => {
                    container_idx += 1;
                    let attach = container_attach.remove(&n.name).unwrap_or_default();
                    sim.add_node(
                        n.name.clone(),
                        ports,
                        Box::new(VnfContainer::new(
                            n.name.clone(),
                            container_idx,
                            attach,
                            seed.wrapping_add(container_idx as u64),
                        )),
                    )
                }
                TopoNodeKind::Sap => {
                    sap_idx += 1;
                    let mac = MacAddr::from_id(0x5A50_0000 + sap_idx as u64);
                    let ip = sap_ip(sap_idx);
                    sap_addr.insert(n.name.clone(), (mac, ip));
                    sim.add_node(n.name.clone(), 1, Box::new(Host::new(mac, ip)))
                }
            };
            nodes.insert(n.name.clone(), id);
        }

        // Wire links.
        for p in &planned {
            sim.connect((nodes[&p.a], p.a_port), (nodes[&p.b], p.b_port), p.cfg);
        }

        // Control network: controller <-> every switch. The controller
        // publishes its counters into the simulation-wide registry.
        let mut controller = Controller::with_registry(sim.telemetry().clone());
        controller.add_component(Box::new(TrafficSteering::new(mode)));
        let controller_node = sim.add_node("controller", 0, Box::new(controller));
        for (name, &node) in &nodes {
            if dpid.contains_key(name) {
                let conn = sim.ctrl_connect(node, controller_node, CTRL_LATENCY);
                sim.node_as_mut::<Switch>(node)
                    .expect("switch node")
                    .attach_controller(conn);
                sim.node_as_mut::<Controller>(controller_node)
                    .expect("controller node")
                    .register_switch(conn);
            }
        }
        Controller::start(sim, controller_node);

        // Management network: manager relay <-> every container agent.
        let manager = sim.add_node("manager", 0, Box::new(ManagerRelay::default()));
        let mut netconf_conn = HashMap::new();
        let mut conn_owner = HashMap::new();
        for n in topo.containers() {
            let conn = sim.ctrl_connect(manager, nodes[&n.name], CTRL_LATENCY);
            netconf_conn.insert(n.name.clone(), conn);
            conn_owner.insert(conn.0, n.name.clone());
        }

        Ok(Infra {
            nodes,
            dpid,
            switch_port,
            sap_addr,
            netconf_conn,
            conn_owner,
            controller: controller_node,
            manager,
        })
    }

    /// The emulator node of a topology node.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.nodes.get(name).copied()
    }
}

fn alloc_port(next: &mut HashMap<String, u16>, name: &str) -> u16 {
    let e = next.entry(name.to_string()).or_insert(0);
    let p = *e;
    *e += 1;
    p
}

fn sap_ip(i: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250 + 1) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_netconf::VnfInstrumentation;
    use escape_sg::topo::builders;

    #[test]
    fn linear_topology_builds() {
        let topo = builders::linear(3, 4.0);
        let mut sim = Sim::new(1);
        let infra = Infra::build(&mut sim, &topo, SteeringMode::Proactive, 7).unwrap();
        // Nodes: 2 saps + 3 switches + 3 containers + controller + manager.
        assert_eq!(sim.node_count(), 10);
        assert_eq!(infra.dpid.len(), 3);
        assert_eq!(infra.sap_addr.len(), 2);
        assert_eq!(infra.netconf_conn.len(), 3);
        // Handshake completes.
        sim.run(10_000);
        let ctl = sim.node_as::<Controller>(infra.controller).unwrap();
        assert_eq!(ctl.connected_dpids().len(), 3);
    }

    #[test]
    fn sap_addresses_are_unique_and_deterministic() {
        let topo = builders::star(5, 1.0);
        let mut sim = Sim::new(1);
        let infra = Infra::build(&mut sim, &topo, SteeringMode::Proactive, 7).unwrap();
        let mut macs: Vec<_> = infra.sap_addr.values().map(|(m, _)| *m).collect();
        macs.sort_unstable();
        macs.dedup();
        assert_eq!(macs.len(), 5);
        // Deterministic across builds.
        let mut sim2 = Sim::new(1);
        let infra2 = Infra::build(&mut sim2, &topo, SteeringMode::Proactive, 7).unwrap();
        assert_eq!(infra.sap_addr, infra2.sap_addr);
    }

    #[test]
    fn switch_ports_recorded_for_steering() {
        let topo = builders::linear(2, 1.0);
        let mut sim = Sim::new(1);
        let infra = Infra::build(&mut sim, &topo, SteeringMode::Proactive, 7).unwrap();
        // s0 connects to: c0 (8 attach ports), s1, sap0.
        assert!(infra.switch_port.contains_key(&("s0".into(), "s1".into())));
        assert!(infra.switch_port.contains_key(&("s1".into(), "s0".into())));
        assert!(infra
            .switch_port
            .contains_key(&("s0".into(), "sap0".into())));
        // Container adjacency is not in switch_port (allocated per VNF).
        assert!(!infra.switch_port.contains_key(&("s0".into(), "c0".into())));
    }

    #[test]
    fn container_attach_points_provisioned() {
        let topo = builders::linear(1, 1.0);
        let mut sim = Sim::new(1);
        let infra = Infra::build(&mut sim, &topo, SteeringMode::Proactive, 7).unwrap();
        let c0 = infra.node("c0").unwrap();
        let host = sim.node_as_mut::<VnfContainer>(c0).unwrap().host_mut();
        let id = host.initiate("monitor", None, &[]).unwrap();
        // Exactly ATTACH_POINTS_PER_LINK bindings to s0 succeed (connect
        // is binding-level, so distinct device numbers suffice).
        for dev in 0..ATTACH_POINTS_PER_LINK {
            host.connect(&id, dev, "s0").unwrap();
        }
        assert!(
            host.connect(&id, 100, "s0").is_err(),
            "attach points exhausted"
        );
    }

    #[test]
    fn invalid_attachments_rejected() {
        // Container-to-container link.
        let mut topo = ResourceTopology::new();
        topo.add_container("c0", 1.0, 64)
            .add_container("c1", 1.0, 64)
            .add_link("c0", "c1", 100.0, 10);
        let mut sim = Sim::new(1);
        assert!(Infra::build(&mut sim, &topo, SteeringMode::Proactive, 7)
            .err()
            .unwrap()
            .contains("switches"));
        // SAP with two uplinks.
        let mut topo = ResourceTopology::new();
        topo.add_switch("s0")
            .add_switch("s1")
            .add_sap("sap0")
            .add_sap("sap1")
            .add_link("sap0", "s0", 100.0, 10)
            .add_link("sap0", "s1", 100.0, 10)
            .add_link("sap1", "s1", 100.0, 10)
            .add_link("s0", "s1", 100.0, 10);
        let mut sim = Sim::new(1);
        assert!(Infra::build(&mut sim, &topo, SteeringMode::Proactive, 7)
            .err()
            .unwrap()
            .contains("exactly one uplink"));
    }
}
