//! # escape
//!
//! ESCAPE-RS: an Extensible Service ChAin Prototyping Environment — the
//! paper's contribution, reimplemented in Rust over simulated substrates.
//!
//! The stack, bottom-up (see DESIGN.md for the full inventory):
//!
//! * **Infrastructure layer** — [`escape_netem`] emulates the network
//!   (Mininet's role); [`escape_openflow::Switch`] is the software switch
//!   (Open vSwitch's role); [`container::VnfContainer`] hosts Click-based
//!   VNFs with cgroup-style CPU isolation and an embedded NETCONF agent
//!   (OpenYuma's role).
//! * **Orchestration layer** — [`escape_orch::Orchestrator`] maps service
//!   graphs to resources; the deployment pipeline in [`env::Escape`]
//!   drives `vnf_starter` RPCs over the emulated control network and
//!   compiles mappings into steering rules for
//!   [`escape_pox::TrafficSteering`].
//! * **Service layer** — [`escape_sg`] service graphs (built
//!   programmatically, from the DSL, or from JSON — the MiniEdit-GUI
//!   stand-ins) and the [`monitor`] module ("Clicky") for live VNF
//!   handler inspection.
//!
//! The one-stop entry point is [`env::Escape`]:
//!
//! ```
//! use escape::env::Escape;
//! use escape_orch::GreedyFirstFit;
//! use escape_pox::SteeringMode;
//! use escape_sg::{topo::builders, ServiceGraph};
//!
//! let topo = builders::linear(2, 4.0);
//! let mut esc = Escape::build(topo, Box::new(GreedyFirstFit), SteeringMode::Proactive, 1)
//!     .unwrap();
//! let sg = ServiceGraph::new()
//!     .sap("sap0")
//!     .sap("sap1")
//!     .vnf("mon", "monitor", 0.5, 64)
//!     .chain("c1", &["sap0", "mon", "sap1"], 50.0, None);
//! let report = esc.deploy(&sg).unwrap();
//! assert_eq!(report.chains.len(), 1);
//! esc.start_udp("sap0", "sap1", 64, 100, 10).unwrap();
//! esc.run_for_ms(50);
//! assert_eq!(esc.sap_stats("sap1").unwrap().udp_rx, 10);
//! ```

pub mod container;
pub mod domains;
pub mod env;
pub mod error;
pub mod flight;
pub mod infra;
pub mod journal;
pub mod monitor;
pub mod session;
pub mod soak;

pub use container::{VnfContainer, VnfHost};
pub use domains::MultiDomainEscape;
pub use env::{AdmissionConfig, DeploymentReport, Escape};
pub use error::{AdmissionVerdict, DeployPhase, EscapeError, RollbackReport, RollbackStep};
pub use flight::{FlightRecord, Journey, Outcome, SlaVerdict};
pub use journal::{Journal, JournalEvent, JournalKind, Severity};
pub use session::{Session, SessionConfig, SessionStatus};
pub use soak::{SoakConfig, SoakReport};
