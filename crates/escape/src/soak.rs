//! Leak-hunting soak harness.
//!
//! Drives a single [`Escape`] environment through a long, seeded,
//! randomized sequence of deploys, teardowns, fault injections and
//! recovery windows — with admission control enabled — and asserts the
//! conservation invariants ([`Escape::check_invariants`]) after **every
//! step**. Any residual state a rollback, recovery action or teardown
//! leaves behind (a reservation without a chain, a flow rule without a
//! live cookie, a running VNF outside the embedding, a dangling NETCONF
//! session) fails the run on the exact step that leaked it.
//!
//! The harness is fully deterministic: the op sequence comes from a
//! seeded [`SmallRng`] and the environment runs in virtual time, so the
//! same `(steps, seed)` pair reproduces the same [`SoakReport`] —
//! including the final state fingerprint — byte for byte.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use escape_netem::{FaultKind, FaultPlan};
use escape_orch::GreedyFirstFit;
use escape_pox::SteeringMode;
use escape_sg::{ResourceTopology, ServiceGraph};

use crate::env::{AdmissionConfig, Escape};
use crate::error::EscapeError;

/// Parameters for one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Number of randomized steps to execute.
    pub steps: u64,
    /// Seed for the op-sequence RNG *and* the environment.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            steps: 500,
            seed: 42,
        }
    }
}

/// What a soak run did and what it found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoakReport {
    /// Steps actually executed (== config unless a violation aborted).
    pub steps: u64,
    /// Chains deployed successfully.
    pub deploys: u64,
    /// Deploys that failed mid-transaction and rolled back.
    pub rollbacks: u64,
    /// Deploys the orchestrator rejected outright (no capacity).
    pub mapping_rejections: u64,
    /// Deploys queued or rejected by the admission controller.
    pub admission_queued: u64,
    pub admission_rejected: u64,
    /// Chains torn down.
    pub teardowns: u64,
    /// Teardowns that hit a stalled agent and will be retried.
    pub teardown_retries: u64,
    /// Fault plans injected.
    pub faults: u64,
    /// Chains still live when the run ended.
    pub live_at_end: usize,
    /// First invariant violations found, tagged with the step number.
    /// Empty on a clean run.
    pub violations: Vec<String>,
    /// [`Escape::state_fingerprint`] at the end of the run — the
    /// determinism witness (same config ⇒ same fingerprint).
    pub fingerprint: String,
}

impl SoakReport {
    /// True when every step kept every invariant.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-screen human summary.
    pub fn summary(&self) -> String {
        format!(
            "soak: {} steps | {} deploys, {} rollbacks, {} no-capacity, \
             {} queued, {} rejected | {} teardowns ({} retried) | {} faults | \
             {} live at end | {}",
            self.steps,
            self.deploys,
            self.rollbacks,
            self.mapping_rejections,
            self.admission_queued,
            self.admission_rejected,
            self.teardowns,
            self.teardown_retries,
            self.faults,
            self.live_at_end,
            if self.clean() {
                "invariants clean".to_string()
            } else {
                format!("{} VIOLATION(S)", self.violations.len())
            }
        )
    }
}

/// The soak substrate: a diamond of switches with two disjoint paths
/// between the SAP edges, so single-link faults are always reroutable,
/// and three containers so placement (and admission pressure) has room
/// to move.
///
/// ```text
///   sap0 - s0 - s1 - s3 - sap1
///           \       /
///            - s2 -
///   c0@s1  c1@s2  c2@s0
/// ```
fn soak_topology() -> ResourceTopology {
    let mut t = ResourceTopology::new();
    t.add_sap("sap0").add_sap("sap1");
    t.add_switch("s0")
        .add_switch("s1")
        .add_switch("s2")
        .add_switch("s3");
    t.add_container("c0", 4.0, 4096)
        .add_container("c1", 4.0, 4096)
        .add_container("c2", 4.0, 4096);
    t.add_link("sap0", "s0", 1000.0, 50)
        .add_link("sap1", "s3", 1000.0, 50)
        .add_link("s0", "s1", 1000.0, 50)
        .add_link("s1", "s3", 1000.0, 50)
        .add_link("s0", "s2", 1000.0, 50)
        .add_link("s2", "s3", 1000.0, 50)
        .add_link("s1", "c0", 1000.0, 20)
        .add_link("s2", "c1", 1000.0, 20)
        .add_link("s0", "c2", 1000.0, 20);
    t
}

/// Inter-switch links eligible for link faults. Container and SAP
/// access links stay healthy so every fault is recoverable.
const FAULTABLE_LINKS: [(&str, &str); 4] = [("s0", "s1"), ("s1", "s3"), ("s0", "s2"), ("s2", "s3")];

const CONTAINERS: [&str; 3] = ["c0", "c1", "c2"];

/// Builds a small service graph for soak step `n`: 1–2 monitor VNFs
/// between the two SAPs, random CPU demand.
fn soak_graph(n: u64, rng: &mut SmallRng) -> ServiceGraph {
    let hops: u32 = if rng.gen_bool(0.5) { 1 } else { 2 };
    let cpu = 0.5 + rng.gen_range(0u32..11) as f64 * 0.1;
    let bw = 10.0 + rng.gen_range(0u32..9) as f64 * 10.0;
    let mut sg = ServiceGraph::new().sap("sap0").sap("sap1");
    let mut names: Vec<String> = vec!["sap0".into()];
    for h in 0..hops {
        let name = format!("soak{n}v{h}");
        sg = sg.vnf(&name, "monitor", cpu, 64);
        names.push(name);
    }
    names.push("sap1".into());
    let hop_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    sg.chain(&format!("soak{n}"), &hop_refs, bw, None)
}

/// One randomized fault plan: link flap, loss spike + clear, delay
/// spike + clear, or a VNF stall (short, bridged by RPC retries — or
/// occasionally long enough to defeat the whole retry schedule and
/// force rollbacks). Every fault heals within the returned settle
/// window, so plans never overlap destructively.
fn soak_fault(n: u64, rng: &mut SmallRng) -> (FaultPlan, u64) {
    let name = format!("soakfault{n}");
    match rng.gen_range(0u32..4) {
        0 => {
            let (a, b) = FAULTABLE_LINKS[rng.gen_range(0..FAULTABLE_LINKS.len())];
            let up_ms = 2 + rng.gen_range(0u64..4);
            let plan = FaultPlan::new(&name)
                .at_ms(
                    0,
                    FaultKind::LinkDown {
                        a: a.into(),
                        b: b.into(),
                    },
                )
                .at_ms(
                    up_ms,
                    FaultKind::LinkUp {
                        a: a.into(),
                        b: b.into(),
                    },
                );
            (plan, up_ms + 2)
        }
        1 => {
            let (a, b) = FAULTABLE_LINKS[rng.gen_range(0..FAULTABLE_LINKS.len())];
            let clear_ms = 2 + rng.gen_range(0u64..4);
            // ≥ 0.25 loss counts as a link failure and triggers reroute.
            let loss = if rng.gen_bool(0.5) { 0.4 } else { 0.1 };
            let plan = FaultPlan::new(&name)
                .at_ms(
                    0,
                    FaultKind::LossSpike {
                        a: a.into(),
                        b: b.into(),
                        loss,
                    },
                )
                .at_ms(
                    clear_ms,
                    FaultKind::LossClear {
                        a: a.into(),
                        b: b.into(),
                    },
                );
            (plan, clear_ms + 2)
        }
        2 => {
            let (a, b) = FAULTABLE_LINKS[rng.gen_range(0..FAULTABLE_LINKS.len())];
            let clear_ms = 2 + rng.gen_range(0u64..4);
            let plan = FaultPlan::new(&name)
                .at_ms(
                    0,
                    FaultKind::DelaySpike {
                        a: a.into(),
                        b: b.into(),
                        delay_us: 500,
                    },
                )
                .at_ms(
                    clear_ms,
                    FaultKind::DelayClear {
                        a: a.into(),
                        b: b.into(),
                    },
                );
            (plan, clear_ms + 2)
        }
        _ => {
            let node = CONTAINERS[rng.gen_range(0..CONTAINERS.len())];
            // Mostly short stalls (bridged by retries); occasionally a
            // stall longer than the whole RPC retry budget, so deploys
            // and teardowns that land on this container fail and
            // exercise rollback / teardown-retry.
            let stall_ms = if rng.gen_bool(0.25) {
                700 + rng.gen_range(0u64..200)
            } else {
                1 + rng.gen_range(0u64..15)
            };
            let plan = FaultPlan::new(&name).at_ms(
                0,
                FaultKind::VnfStall {
                    node: node.into(),
                    for_us: stall_ms * 1000,
                },
            );
            // Don't wait out long stalls here — let subsequent ops land
            // on the stalled container.
            (plan, stall_ms.min(16) + 2)
        }
    }
}

/// Runs the soak loop. Aborts on the first step whose invariant check
/// fails and records the violations in the report.
pub fn run_soak(cfg: SoakConfig) -> SoakReport {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut esc = Escape::build(
        soak_topology(),
        Box::new(GreedyFirstFit),
        SteeringMode::Proactive,
        cfg.seed,
    )
    .expect("soak topology is valid");
    esc.set_admission(AdmissionConfig::default());

    let mut report = SoakReport::default();
    for step in 0..cfg.steps {
        match rng.gen_range(0u32..100) {
            // Deploy a fresh small chain.
            0..=39 => match esc.deploy(&soak_graph(step, &mut rng)) {
                Ok(_) => report.deploys += 1,
                Err(EscapeError::DeployFailed { .. }) => report.rollbacks += 1,
                Err(EscapeError::MappingFailed(_)) => report.mapping_rejections += 1,
                Err(EscapeError::Admission(_)) => report.admission_queued += 1,
                Err(e) => panic!("soak step {step}: unexpected deploy error: {e}"),
            },
            // Tear down a random live chain.
            40..=64 => {
                let live = esc.deployed_chains();
                if !live.is_empty() {
                    let victim = live[rng.gen_range(0..live.len())].clone();
                    match esc.teardown(&victim) {
                        Ok(()) => report.teardowns += 1,
                        // Stalled agent: chain stays live, retried by a
                        // later teardown step.
                        Err(EscapeError::RpcTimeout { .. }) => report.teardown_retries += 1,
                        Err(e) => panic!("soak step {step}: unexpected teardown error: {e}"),
                    }
                }
            }
            // Inject a fault plan, then run recovery past its window.
            65..=79 => {
                let (plan, settle_ms) = soak_fault(step, &mut rng);
                esc.load_fault_plan(&plan)
                    .expect("soak fault targets exist");
                report.faults += 1;
                esc.run_with_recovery(settle_ms);
            }
            // Just let time pass (pumps the admission queue too).
            _ => esc.run_with_recovery(1 + rng.gen_range(0u64..4)),
        }
        report.steps = step + 1;
        let violations = esc.check_invariants();
        if !violations.is_empty() {
            report
                .violations
                .extend(violations.into_iter().map(|v| format!("step {step}: {v}")));
            break;
        }
    }

    // Drain whatever is still queued in admission, then account.
    esc.run_with_recovery(200);
    let final_violations = esc.check_invariants();
    report
        .violations
        .extend(final_violations.into_iter().map(|v| format!("final: {v}")));
    let snap = esc.metrics();
    report.admission_queued = snap.counter("escape.admission_queued", &[]).unwrap_or(0);
    report.admission_rejected = snap.counter("escape.admission_rejected", &[]).unwrap_or(0);
    report.live_at_end = esc.deployed_chains().len();
    report.fingerprint = esc.state_fingerprint();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_is_clean_and_deterministic() {
        let cfg = SoakConfig { steps: 60, seed: 9 };
        let a = run_soak(cfg);
        assert!(a.clean(), "violations: {:?}", a.violations);
        assert!(
            a.deploys > 0,
            "soak never deployed anything: {}",
            a.summary()
        );
        let b = run_soak(cfg);
        assert_eq!(a, b, "same seed must reproduce the same report");
    }
}
