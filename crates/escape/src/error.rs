//! Error type for the environment.

use escape_orch::MapError;

/// Anything that can go wrong building the environment or deploying a
/// service graph.
#[derive(Debug, Clone, PartialEq)]
pub enum EscapeError {
    /// Topology or service graph failed validation.
    Invalid(String),
    /// The orchestrator rejected one or more chains.
    MappingFailed(Vec<(String, MapError)>),
    /// A NETCONF operation failed or timed out (virtual time budget).
    Netconf(String),
    /// A NETCONF RPC exhausted its retry budget without a reply — the
    /// agent is unreachable (crashed container, partitioned control
    /// network, or a stall longer than the whole backoff schedule).
    RpcTimeout {
        container: String,
        /// Attempts made (first try + retries).
        attempts: u32,
    },
    /// Steering rules could not be installed.
    Steering(String),
    /// A named entity does not exist.
    NotFound(String),
}

impl std::fmt::Display for EscapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscapeError::Invalid(m) => write!(f, "invalid input: {m}"),
            EscapeError::MappingFailed(rej) => {
                write!(f, "mapping failed for {} chain(s): ", rej.len())?;
                for (c, e) in rej {
                    write!(f, "[{c}: {e}] ")?;
                }
                Ok(())
            }
            EscapeError::Netconf(m) => write!(f, "netconf: {m}"),
            EscapeError::RpcTimeout {
                container,
                attempts,
            } => write!(
                f,
                "netconf: rpc to {container} timed out after {attempts} attempt(s)"
            ),
            EscapeError::Steering(m) => write!(f, "steering: {m}"),
            EscapeError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for EscapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EscapeError::Invalid("x".into()).to_string().contains("x"));
        let e = EscapeError::MappingFailed(vec![("c1".into(), MapError::NoCapacity("fw".into()))]);
        assert!(e.to_string().contains("c1"));
        assert!(e.to_string().contains("fw"));
        assert!(EscapeError::NotFound("sap9".into())
            .to_string()
            .contains("sap9"));
        let t = EscapeError::RpcTimeout {
            container: "c0".into(),
            attempts: 5,
        };
        assert!(t.to_string().contains("c0"));
        assert!(t.to_string().contains("5 attempt"));
    }
}
