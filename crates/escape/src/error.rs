//! Error type for the environment.

use escape_orch::MapError;

/// Anything that can go wrong building the environment or deploying a
/// service graph.
#[derive(Debug, Clone, PartialEq)]
pub enum EscapeError {
    /// Topology or service graph failed validation.
    Invalid(String),
    /// The orchestrator rejected one or more chains.
    MappingFailed(Vec<(String, MapError)>),
    /// A NETCONF operation failed or timed out (virtual time budget).
    Netconf(String),
    /// Steering rules could not be installed.
    Steering(String),
    /// A named entity does not exist.
    NotFound(String),
}

impl std::fmt::Display for EscapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscapeError::Invalid(m) => write!(f, "invalid input: {m}"),
            EscapeError::MappingFailed(rej) => {
                write!(f, "mapping failed for {} chain(s): ", rej.len())?;
                for (c, e) in rej {
                    write!(f, "[{c}: {e}] ")?;
                }
                Ok(())
            }
            EscapeError::Netconf(m) => write!(f, "netconf: {m}"),
            EscapeError::Steering(m) => write!(f, "steering: {m}"),
            EscapeError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for EscapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EscapeError::Invalid("x".into()).to_string().contains("x"));
        let e = EscapeError::MappingFailed(vec![("c1".into(), MapError::NoCapacity("fw".into()))]);
        assert!(e.to_string().contains("c1"));
        assert!(e.to_string().contains("fw"));
        assert!(EscapeError::NotFound("sap9".into())
            .to_string()
            .contains("sap9"));
    }
}
