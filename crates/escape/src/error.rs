//! Error type for the environment.

use escape_netem::FaultPlanError;
use escape_orch::MapError;

/// Phase of a deployment transaction in which a failure occurred.
///
/// A deploy runs *plan* (reserve resources in the orchestrator), then
/// *prepare* (start VNFs over NETCONF, stage steering rules in a shadow
/// set), then *commit* (activate the staged rules and publish the
/// chain). Rollback undoes exactly the steps the failing phase — and
/// every phase before it — completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployPhase {
    /// Resource reservation (orchestrator embedding).
    Plan,
    /// VNF startup and shadow rule staging.
    Prepare,
    /// Activation of the staged state.
    Commit,
}

impl std::fmt::Display for DeployPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeployPhase::Plan => "plan",
            DeployPhase::Prepare => "prepare",
            DeployPhase::Commit => "commit",
        })
    }
}

/// One undo action taken while rolling a failed deployment back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackStep {
    /// What was undone ("stop-vnf", "disconnect-vnf", "discard-rules",
    /// "remove-rules", "release-reservation").
    pub action: &'static str,
    /// The entity the action applied to (VNF id, chain name, ...).
    pub target: String,
    /// Whether the undo itself succeeded. A `false` here means the
    /// rollback was best-effort for this step (e.g. the agent that
    /// timed out during deploy also ignored the stop request).
    pub ok: bool,
}

/// Ordered record of everything a rollback undid, newest action first
/// (rollback walks the transaction log in reverse).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RollbackReport {
    pub steps: Vec<RollbackStep>,
}

impl RollbackReport {
    /// True when every undo step succeeded — the environment is
    /// byte-identical to its pre-deploy state.
    pub fn complete(&self) -> bool {
        self.steps.iter().all(|s| s.ok)
    }
}

impl std::fmt::Display for RollbackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rollback of {} step(s)", self.steps.len())?;
        if self.complete() {
            write!(f, " (complete)")?;
        } else {
            let failed = self.steps.iter().filter(|s| !s.ok).count();
            write!(f, " ({failed} best-effort)")?;
        }
        for s in &self.steps {
            write!(
                f,
                "; {} {}{}",
                s.action,
                s.target,
                if s.ok { "" } else { " [failed]" }
            )?;
        }
        Ok(())
    }
}

/// The admission controller's decision on a deploy request that could
/// not be admitted immediately.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionVerdict {
    /// Utilization is at or above the hard watermark: the request is
    /// rejected outright and never queued.
    RejectedHard {
        /// Compute utilization at decision time (0..=1).
        utilization: f64,
        /// The configured hard watermark it met or exceeded.
        hard_watermark: f64,
    },
    /// Utilization is between the soft and hard watermarks: the request
    /// was parked on the admission queue and will retry with seeded
    /// deterministic backoff as capacity frees up.
    Queued {
        /// Position in the queue (0 = head).
        position: usize,
        /// Compute utilization at decision time (0..=1).
        utilization: f64,
    },
    /// The admission queue itself is full.
    QueueFull { capacity: usize },
    /// A queued request used up its retry budget without utilization
    /// ever dropping below the soft watermark.
    RetriesExhausted { attempts: u32 },
}

impl std::fmt::Display for AdmissionVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionVerdict::RejectedHard {
                utilization,
                hard_watermark,
            } => write!(
                f,
                "rejected: utilization {utilization:.2} >= hard watermark {hard_watermark:.2}"
            ),
            AdmissionVerdict::Queued {
                position,
                utilization,
            } => write!(
                f,
                "queued at position {position} (utilization {utilization:.2})"
            ),
            AdmissionVerdict::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} waiting)")
            }
            AdmissionVerdict::RetriesExhausted { attempts } => {
                write!(f, "gave up after {attempts} queued attempt(s)")
            }
        }
    }
}

/// Anything that can go wrong building the environment or deploying a
/// service graph.
#[derive(Debug, Clone, PartialEq)]
pub enum EscapeError {
    /// Topology or service graph failed validation.
    Invalid(String),
    /// A fault plan referenced a node or link that does not exist.
    FaultPlan(FaultPlanError),
    /// The orchestrator rejected one or more chains.
    MappingFailed(Vec<(String, MapError)>),
    /// A NETCONF operation failed or timed out (virtual time budget).
    Netconf(String),
    /// A NETCONF agent sent a reply the client could not parse —
    /// truncated or malformed XML, or bytes that are not UTF-8 at all.
    MalformedReply { container: String, reason: String },
    /// A NETCONF RPC exhausted its retry budget without a reply — the
    /// agent is unreachable (crashed container, partitioned control
    /// network, or a stall longer than the whole backoff schedule).
    RpcTimeout {
        container: String,
        /// Attempts made (first try + retries).
        attempts: u32,
    },
    /// Steering rules could not be installed.
    Steering(String),
    /// A named entity does not exist.
    NotFound(String),
    /// The admission controller declined the deploy request.
    Admission(AdmissionVerdict),
    /// A deployment transaction failed partway and was rolled back.
    /// `cause` is the underlying failure; `rollback` records exactly
    /// which completed steps were undone, in reverse order.
    DeployFailed {
        phase: DeployPhase,
        cause: Box<EscapeError>,
        rollback: RollbackReport,
    },
}

impl std::fmt::Display for EscapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscapeError::Invalid(m) => write!(f, "invalid input: {m}"),
            EscapeError::FaultPlan(e) => write!(f, "fault plan: {e}"),
            EscapeError::MappingFailed(rej) => {
                write!(f, "mapping failed for {} chain(s): ", rej.len())?;
                for (c, e) in rej {
                    write!(f, "[{c}: {e}] ")?;
                }
                Ok(())
            }
            EscapeError::Netconf(m) => write!(f, "netconf: {m}"),
            EscapeError::MalformedReply { container, reason } => {
                write!(f, "netconf: malformed reply from {container}: {reason}")
            }
            EscapeError::RpcTimeout {
                container,
                attempts,
            } => write!(
                f,
                "netconf: rpc to {container} timed out after {attempts} attempt(s)"
            ),
            EscapeError::Steering(m) => write!(f, "steering: {m}"),
            EscapeError::NotFound(m) => write!(f, "not found: {m}"),
            EscapeError::Admission(v) => write!(f, "admission: {v}"),
            EscapeError::DeployFailed {
                phase,
                cause,
                rollback,
            } => write!(f, "deploy failed in {phase}: {cause} ({rollback})"),
        }
    }
}

impl std::error::Error for EscapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EscapeError::Invalid("x".into()).to_string().contains("x"));
        let e = EscapeError::MappingFailed(vec![("c1".into(), MapError::NoCapacity("fw".into()))]);
        assert!(e.to_string().contains("c1"));
        assert!(e.to_string().contains("fw"));
        assert!(EscapeError::NotFound("sap9".into())
            .to_string()
            .contains("sap9"));
        let t = EscapeError::RpcTimeout {
            container: "c0".into(),
            attempts: 5,
        };
        assert!(t.to_string().contains("c0"));
        assert!(t.to_string().contains("5 attempt"));
    }

    #[test]
    fn display_transaction_variants() {
        let fp = EscapeError::FaultPlan(FaultPlanError::UnknownNode {
            plan: "p".into(),
            index: 2,
            node: "ghost".into(),
        });
        assert!(fp.to_string().contains("ghost"));
        assert!(fp.to_string().starts_with("fault plan:"));

        let m = EscapeError::MalformedReply {
            container: "c1".into(),
            reason: "not well-formed XML".into(),
        };
        assert!(m.to_string().contains("c1"));
        assert!(m.to_string().contains("XML"));

        let rb = RollbackReport {
            steps: vec![
                RollbackStep {
                    action: "discard-rules",
                    target: "chain".into(),
                    ok: true,
                },
                RollbackStep {
                    action: "stop-vnf",
                    target: "c0/1".into(),
                    ok: false,
                },
            ],
        };
        assert!(!rb.complete());
        let d = EscapeError::DeployFailed {
            phase: DeployPhase::Prepare,
            cause: Box::new(EscapeError::RpcTimeout {
                container: "c0".into(),
                attempts: 5,
            }),
            rollback: rb,
        };
        let s = d.to_string();
        assert!(s.contains("prepare"), "{s}");
        assert!(s.contains("timed out"), "{s}");
        assert!(s.contains("stop-vnf c0/1 [failed]"), "{s}");

        let a = EscapeError::Admission(AdmissionVerdict::RejectedHard {
            utilization: 0.97,
            hard_watermark: 0.95,
        });
        assert!(a.to_string().contains("0.97"));
        assert!(AdmissionVerdict::Queued {
            position: 0,
            utilization: 0.9
        }
        .to_string()
        .contains("position 0"));
        assert!(AdmissionVerdict::QueueFull { capacity: 4 }
            .to_string()
            .contains("4"));
        assert!(AdmissionVerdict::RetriesExhausted { attempts: 3 }
            .to_string()
            .contains("3"));
    }
}
