//! The VNF container: a managed node hosting Click-based VNFs.
//!
//! One container node = Mininet host + cgroup + OpenYuma agent in the
//! paper's setup. It terminates a NETCONF control channel (the agent),
//! owns a [`CpuModel`] shared by its VNF processes, and forwards
//! dataplane frames through the Click routers of the VNFs bound to its
//! ports. Packet processing cost (from the Click engine) is charged to
//! the owning process under its isolation mode, and outputs are released
//! when the virtual CPU finishes the work.

use escape_catalog::Catalog;
use escape_click::{Registry, Router};
use escape_netconf::agent::{Agent, VnfInstrumentation, VnfStatusInfo};
use escape_netem::process::ProcId;
use escape_netem::{
    CpuModel, CtrlId, DropReason, HopDetail, IsolationMode, NodeCtx, NodeLogic, Time,
};
use escape_packet::Packet;
use std::collections::{BinaryHeap, HashMap};

/// Handlers sampled for `getVNFInfo` (the Clicky view).
const MONITOR_HANDLERS: &[&str] = &[
    "count",
    "byte_count",
    "rate",
    "dropped",
    "passed",
    "matches",
    "length",
    "drops",
    "expired",
    "mappings",
];

/// Where a VNF device is wired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// To the physical fabric: a container port (and the switch port on
    /// the far side, as reported back to the orchestrator).
    External {
        container_port: u16,
        switch_port: u16,
        switch: String,
    },
    /// Directly into another VNF on the same container (service chaining
    /// without leaving the box).
    Internal { vnf: usize, dev: u16 },
}

/// Lifecycle state of a hosted VNF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VnfStatus {
    Initiated,
    Running,
    Stopped,
    Failed,
}

impl VnfStatus {
    fn as_str(&self) -> &'static str {
        match self {
            VnfStatus::Initiated => "initiated",
            VnfStatus::Running => "running",
            VnfStatus::Stopped => "stopped",
            VnfStatus::Failed => "failed",
        }
    }
}

/// One hosted VNF instance.
pub struct VnfSlot {
    pub id: String,
    pub vnf_type: String,
    pub router: Router,
    pub status: VnfStatus,
    pub proc: ProcId,
    pub bindings: HashMap<u16, Binding>,
    /// Frames dropped because the VNF was not running.
    pub dropped_not_running: u64,
}

/// The container's VNF table and attachment inventory — also the
/// [`VnfInstrumentation`] the NETCONF agent drives. This is the
/// "instrumentation part" the paper says is all that changes on a real
/// platform.
pub struct VnfHost {
    pub name: String,
    pub vnfs: Vec<VnfSlot>,
    by_id: HashMap<String, usize>,
    pub cpu: CpuModel,
    catalog: Catalog,
    registry: Registry,
    /// Free attachment points: switch name -> (container port, switch
    /// port) pairs pre-provisioned at build time.
    attach_free: HashMap<String, Vec<(u16, u16)>>,
    /// Ingress dispatch: container port -> (vnf index, device).
    port_bindings: HashMap<u16, (usize, u16)>,
    seed: u64,
    next_vnf: u32,
    /// Frames that arrived on an unbound port.
    pub unbound_rx: u64,
    /// When set, [`VnfHost::process`] collects the Click elements each
    /// frame traverses (the flight recorder's per-element view).
    trace_paths: bool,
}

impl VnfHost {
    /// Creates the host. `attach` lists pre-provisioned attachment points
    /// as (switch name, container port, switch port).
    pub fn new(name: impl Into<String>, attach: Vec<(String, u16, u16)>, seed: u64) -> VnfHost {
        let mut attach_free: HashMap<String, Vec<(u16, u16)>> = HashMap::new();
        for (sw, cport, sport) in attach {
            attach_free.entry(sw).or_default().push((cport, sport));
        }
        // Deterministic allocation order.
        for v in attach_free.values_mut() {
            v.sort_unstable();
            v.reverse(); // pop() takes the lowest pair
        }
        VnfHost {
            name: name.into(),
            vnfs: Vec::new(),
            by_id: HashMap::new(),
            cpu: CpuModel::new(),
            catalog: Catalog::standard(),
            registry: Registry::standard(),
            attach_free,
            port_bindings: HashMap::new(),
            seed,
            next_vnf: 0,
            unbound_rx: 0,
            trace_paths: false,
        }
    }

    /// Enables per-element path collection (see [`VnfHost::process`]).
    pub fn set_trace_paths(&mut self, on: bool) {
        self.trace_paths = on;
    }

    /// Index of a VNF by id.
    pub fn vnf_index(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    fn parse_isolation(options: &[(String, String)]) -> Result<IsolationMode, String> {
        match options
            .iter()
            .find(|(k, _)| k == "isolation")
            .map(|(_, v)| v.as_str())
        {
            None | Some("none") => Ok(IsolationMode::None),
            Some(v) => {
                let parts: Vec<&str> = v.split(':').collect();
                match parts.as_slice() {
                    ["share", w, t] => {
                        let weight = w.parse().map_err(|_| format!("bad share weight {w:?}"))?;
                        let total = t.parse().map_err(|_| format!("bad share total {t:?}"))?;
                        Ok(IsolationMode::CpuShare { weight, total })
                    }
                    ["quota", q, p] => {
                        let quota_ns = q.parse().map_err(|_| format!("bad quota {q:?}"))?;
                        let period_ns = p.parse().map_err(|_| format!("bad period {p:?}"))?;
                        Ok(IsolationMode::CpuQuota {
                            quota_ns,
                            period_ns,
                        })
                    }
                    _ => Err(format!("bad isolation spec {v:?}")),
                }
            }
        }
    }

    /// Runs a frame through a VNF (following internal bindings), charging
    /// CPU. Returns frames to emit as (container port, packet), the CPU
    /// completion time, and — when path tracing is enabled — the Click
    /// elements the frame was pushed through (elements of chained
    /// co-located VNFs are prefixed with their VNF id).
    pub fn process(
        &mut self,
        vnf: usize,
        dev: u16,
        pkt: Packet,
        now: Time,
    ) -> (Vec<(u16, Packet)>, Time, Vec<String>) {
        let mut total_work = 0u64;
        let mut external = Vec::new();
        let mut path = Vec::new();
        // (vnf, dev, pkt) work queue for internal chaining.
        let mut queue = vec![(vnf, dev, pkt)];
        let mut hops = 0;
        let entry_proc = self.vnfs[vnf].proc;
        let trace_paths = self.trace_paths;
        while let Some((vi, d, p)) = queue.pop() {
            hops += 1;
            if hops > 32 {
                break; // internal wiring loop guard
            }
            let slot = &mut self.vnfs[vi];
            if slot.status != VnfStatus::Running {
                slot.dropped_not_running += 1;
                continue;
            }
            slot.router.trace_paths = trace_paths;
            let out = slot.router.push_external(d, p, now);
            total_work += out.work_ns;
            for elem in out.path {
                if vi == vnf {
                    path.push(elem);
                } else {
                    path.push(format!("{}:{}", slot.id, elem));
                }
            }
            for (out_dev, out_pkt) in out.external {
                match slot.bindings.get(&out_dev) {
                    Some(Binding::External { container_port, .. }) => {
                        external.push((*container_port, out_pkt));
                    }
                    Some(&Binding::Internal { vnf: nv, dev: nd }) => {
                        queue.push((nv, nd, out_pkt));
                    }
                    None => {} // unbound output: dropped on the floor
                }
            }
        }
        let done = if total_work == 0 {
            now
        } else {
            self.cpu.run(entry_proc, now, total_work)
        };
        (external, done, path)
    }

    /// Drives time-based element work (shapers, sources) of one VNF.
    pub fn tick_vnf(&mut self, vnf: usize, now: Time) -> (Vec<(u16, Packet)>, Time) {
        let slot = &mut self.vnfs[vnf];
        if slot.status != VnfStatus::Running {
            return (Vec::new(), now);
        }
        let out = slot.router.tick(now);
        let work = out.work_ns;
        let mut external = Vec::new();
        let mut internal = Vec::new();
        for (out_dev, out_pkt) in out.external {
            match slot.bindings.get(&out_dev) {
                Some(Binding::External { container_port, .. }) => {
                    external.push((*container_port, out_pkt))
                }
                Some(&Binding::Internal { vnf: nv, dev: nd }) => internal.push((nv, nd, out_pkt)),
                None => {}
            }
        }
        let proc_ = slot.proc;
        let mut done = if work == 0 {
            now
        } else {
            self.cpu.run(proc_, now, work)
        };
        for (nv, nd, p) in internal {
            // Path attribution is not collected for tick-driven work —
            // deferred frames left the recorded journey at the shaper.
            let (more, d2, _path) = self.process(nv, nd, p, now);
            external.extend(more);
            done = done.max(d2);
        }
        (external, done)
    }

    /// Earliest pending element wake across running VNFs.
    pub fn next_wake(&self) -> Option<Time> {
        self.vnfs
            .iter()
            .filter(|v| v.status == VnfStatus::Running)
            .filter_map(|v| v.router.next_wake())
            .min()
    }

    /// Ingress dispatch for a container port.
    pub fn binding_at(&self, port: u16) -> Option<(usize, u16)> {
        self.port_bindings.get(&port).copied()
    }

    /// Wires one VNF device directly into another VNF on this container
    /// (used by the deployment pipeline for co-located chain hops).
    pub fn bind_internal(
        &mut self,
        from_id: &str,
        from_dev: u16,
        to_id: &str,
        to_dev: u16,
    ) -> Result<(), String> {
        let from = self
            .vnf_index(from_id)
            .ok_or_else(|| format!("no vnf {from_id}"))?;
        let to = self
            .vnf_index(to_id)
            .ok_or_else(|| format!("no vnf {to_id}"))?;
        self.vnfs[from].bindings.insert(
            from_dev,
            Binding::Internal {
                vnf: to,
                dev: to_dev,
            },
        );
        Ok(())
    }

    /// Reads one handler of one VNF (Clicky's probe).
    pub fn read_handler(&self, vnf_id: &str, spec: &str) -> Option<String> {
        let idx = self.vnf_index(vnf_id)?;
        self.vnfs[idx].router.read_handler(spec)
    }

    /// Writes one handler of one VNF (live reconfiguration).
    pub fn write_handler(&mut self, vnf_id: &str, spec: &str, value: &str) -> Result<(), String> {
        let idx = self
            .vnf_index(vnf_id)
            .ok_or_else(|| format!("no vnf {vnf_id}"))?;
        self.vnfs[idx].router.write_handler(spec, value)
    }
}

impl VnfInstrumentation for VnfHost {
    fn initiate(
        &mut self,
        vnf_type: &str,
        click_config: Option<&str>,
        options: &[(String, String)],
    ) -> Result<String, String> {
        let isolation = Self::parse_isolation(options)?;
        let overrides: Vec<(String, String)> = options
            .iter()
            .filter(|(k, _)| k != "isolation")
            .cloned()
            .collect();
        let config = match click_config {
            Some(cfg) if !cfg.is_empty() => cfg.to_string(),
            _ => self
                .catalog
                .render(vnf_type, &overrides)
                .map_err(|e| e.to_string())?,
        };
        self.next_vnf += 1;
        let seed = self
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(self.next_vnf as u64);
        let router =
            Router::from_config(&config, &self.registry, seed).map_err(|e| e.to_string())?;
        let proc_ = self.cpu.add_process(isolation);
        let id = format!("{}-vnf{}", self.name, self.next_vnf);
        self.by_id.insert(id.clone(), self.vnfs.len());
        self.vnfs.push(VnfSlot {
            id: id.clone(),
            vnf_type: vnf_type.to_string(),
            router,
            status: VnfStatus::Initiated,
            proc: proc_,
            bindings: HashMap::new(),
            dropped_not_running: 0,
        });
        Ok(id)
    }

    fn start(&mut self, vnf_id: &str) -> Result<(), String> {
        let idx = self
            .vnf_index(vnf_id)
            .ok_or_else(|| format!("no vnf {vnf_id}"))?;
        self.vnfs[idx].status = VnfStatus::Running;
        Ok(())
    }

    fn stop(&mut self, vnf_id: &str) -> Result<(), String> {
        let idx = self
            .vnf_index(vnf_id)
            .ok_or_else(|| format!("no vnf {vnf_id}"))?;
        self.vnfs[idx].status = VnfStatus::Stopped;
        Ok(())
    }

    fn connect(&mut self, vnf_id: &str, vnf_port: u16, switch_id: &str) -> Result<u16, String> {
        let idx = self
            .vnf_index(vnf_id)
            .ok_or_else(|| format!("no vnf {vnf_id}"))?;
        if self.vnfs[idx].bindings.contains_key(&vnf_port) {
            return Err(format!("vnf {vnf_id} port {vnf_port} already connected"));
        }
        let free = self
            .attach_free
            .get_mut(switch_id)
            .ok_or_else(|| format!("container {} has no link to switch {switch_id}", self.name))?;
        let (container_port, switch_port) = free
            .pop()
            .ok_or_else(|| format!("no free attachment points toward {switch_id}"))?;
        self.vnfs[idx].bindings.insert(
            vnf_port,
            Binding::External {
                container_port,
                switch_port,
                switch: switch_id.to_string(),
            },
        );
        self.port_bindings.insert(container_port, (idx, vnf_port));
        Ok(switch_port)
    }

    fn disconnect(&mut self, vnf_id: &str, vnf_port: u16) -> Result<(), String> {
        let idx = self
            .vnf_index(vnf_id)
            .ok_or_else(|| format!("no vnf {vnf_id}"))?;
        match self.vnfs[idx].bindings.remove(&vnf_port) {
            Some(Binding::External {
                container_port,
                switch_port,
                switch,
            }) => {
                self.port_bindings.remove(&container_port);
                self.attach_free
                    .entry(switch)
                    .or_default()
                    .push((container_port, switch_port));
                Ok(())
            }
            Some(Binding::Internal { .. }) => Ok(()),
            None => Err(format!("vnf {vnf_id} port {vnf_port} not connected")),
        }
    }

    fn info(&self, vnf_id: Option<&str>) -> Vec<VnfStatusInfo> {
        self.vnfs
            .iter()
            .filter(|v| vnf_id.is_none_or(|id| v.id == id))
            .map(|v| VnfStatusInfo {
                id: v.id.clone(),
                vnf_type: v.vnf_type.clone(),
                status: v.status.as_str().to_string(),
                ports: v
                    .bindings
                    .iter()
                    .map(|(dev, b)| {
                        let loc = match b {
                            Binding::External { switch, .. } => switch.clone(),
                            Binding::Internal { vnf, .. } => {
                                format!("internal:{}", self.vnfs[*vnf].id)
                            }
                        };
                        (*dev, loc)
                    })
                    .collect(),
                handlers: v.router.snapshot_handlers(MONITOR_HANDLERS),
            })
            .collect()
    }
}

/// Timer token layout for the container node.
const TOKEN_KIND_SHIFT: u64 = 48;
const KIND_TICK: u64 = 1;
const KIND_RELEASE: u64 = 2;

/// A deferred emission waiting for the virtual CPU.
struct PendingOut {
    at: Time,
    seq: u64,
    port: u16,
    pkt: Packet,
}

impl PartialEq for PendingOut {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl Eq for PendingOut {}
impl PartialOrd for PendingOut {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for PendingOut {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Min-heap on (at, seq).
        (o.at, o.seq).cmp(&(self.at, self.seq))
    }
}

/// The emulator node: NETCONF agent + dataplane forwarding through the
/// hosted VNFs.
pub struct VnfContainer {
    pub agent: Agent<VnfHost>,
    conn: Option<CtrlId>,
    pending: BinaryHeap<PendingOut>,
    seq: u64,
}

impl VnfContainer {
    /// Creates a container node. `session_id` seeds the agent; `attach`
    /// pre-provisions attachment points (see [`VnfHost::new`]).
    pub fn new(
        name: impl Into<String>,
        session_id: u32,
        attach: Vec<(String, u16, u16)>,
        seed: u64,
    ) -> VnfContainer {
        VnfContainer {
            agent: Agent::new(session_id, VnfHost::new(name, attach, seed)),
            conn: None,
            pending: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// The hosted VNF table.
    pub fn host(&self) -> &VnfHost {
        &self.agent.instr
    }

    /// Mutable access to the hosted VNF table (tests, fault injection).
    pub fn host_mut(&mut self) -> &mut VnfHost {
        &mut self.agent.instr
    }

    fn schedule_outputs(&mut self, ctx: &mut NodeCtx<'_>, outputs: Vec<(u16, Packet)>, done: Time) {
        let now = ctx.now();
        if done <= now {
            for (port, pkt) in outputs {
                ctx.send(port, pkt);
            }
        } else {
            for (port, pkt) in outputs {
                self.seq += 1;
                self.pending.push(PendingOut {
                    at: done,
                    seq: self.seq,
                    port,
                    pkt,
                });
            }
            ctx.set_timer(
                Time::from_ns(done.since(now)),
                KIND_RELEASE << TOKEN_KIND_SHIFT,
            );
        }
    }

    fn arm_ticks(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        for (i, v) in self.agent.instr.vnfs.iter().enumerate() {
            if v.status != VnfStatus::Running {
                continue;
            }
            if let Some(w) = v.router.next_wake() {
                let delay = Time::from_ns(w.since(now).max(1));
                ctx.set_timer(delay, (KIND_TICK << TOKEN_KIND_SHIFT) | i as u64);
            }
        }
    }
}

impl NodeLogic for VnfContainer {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: u16, pkt: Packet) {
        let (pkt_id, pkt_len) = (pkt.id, pkt.len());
        let Some((vnf, dev)) = self.agent.instr.binding_at(port) else {
            self.agent.instr.unbound_rx += 1;
            ctx.trace_drop(pkt_id, pkt_len, port, DropReason::NoRoute);
            return;
        };
        let now = ctx.now();
        self.agent.instr.set_trace_paths(ctx.tracing());
        let was_running = self.agent.instr.vnfs[vnf].status == VnfStatus::Running;
        let (outputs, done, path) = self.agent.instr.process(vnf, dev, pkt, now);
        if !path.is_empty() {
            ctx.trace_hop(
                pkt_id,
                pkt_len,
                port,
                HopDetail::VnfPath {
                    vnf: self.agent.instr.vnfs[vnf].id.clone(),
                    elements: path,
                },
            );
        }
        if outputs.is_empty() {
            if !was_running {
                ctx.trace_drop(pkt_id, pkt_len, port, DropReason::VnfDown);
            } else if self.agent.instr.next_wake().is_none() {
                // Nothing deferred anywhere: the VNF consumed the frame
                // (e.g. a firewall deny rule). A frame parked behind a
                // shaper would have left a pending wake instead.
                ctx.trace_drop(pkt_id, pkt_len, port, DropReason::Filtered);
            }
        }
        self.schedule_outputs(ctx, outputs, done);
        self.arm_ticks(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let kind = token >> TOKEN_KIND_SHIFT;
        match kind {
            KIND_RELEASE => {
                let now = ctx.now();
                while self.pending.peek().is_some_and(|p| p.at <= now) {
                    let p = self.pending.pop().unwrap();
                    ctx.send(p.port, p.pkt);
                }
                if let Some(p) = self.pending.peek() {
                    let at = p.at;
                    ctx.set_timer(
                        Time::from_ns(at.since(now).max(1)),
                        KIND_RELEASE << TOKEN_KIND_SHIFT,
                    );
                }
            }
            KIND_TICK => {
                let vnf = (token & 0xffff_ffff) as usize;
                if vnf < self.agent.instr.vnfs.len() {
                    let now = ctx.now();
                    let due = self.agent.instr.vnfs[vnf]
                        .router
                        .next_wake()
                        .is_some_and(|w| w <= now);
                    if due {
                        let (outputs, done) = self.agent.instr.tick_vnf(vnf, now);
                        self.schedule_outputs(ctx, outputs, done);
                    }
                    self.arm_ticks(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_ctrl(&mut self, ctx: &mut NodeCtx<'_>, conn: CtrlId, msg: Vec<u8>) {
        if self.conn.is_none() {
            // First contact: this is our management session — greet.
            self.conn = Some(conn);
            let hello = self.agent.start();
            ctx.ctrl_send(conn, hello);
        }
        let out = self.agent.on_bytes(&msg);
        if !out.is_empty() {
            ctx.ctrl_send(conn, out);
        }
        // Control actions may have started VNFs with scheduled work.
        self.arm_ticks(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use escape_netem::{LinkConfig, Sim};
    use escape_packet::{MacAddr, PacketBuilder};
    use std::net::Ipv4Addr;

    fn frame(dport: u16) -> Bytes {
        PacketBuilder::udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            7,
            dport,
            Bytes::from_static(b"container"),
        )
    }

    fn attach4() -> Vec<(String, u16, u16)> {
        (0..4).map(|i| ("s0".to_string(), i, 10 + i)).collect()
    }

    #[test]
    fn instrumentation_lifecycle_direct() {
        let mut h = VnfHost::new("c0", attach4(), 1);
        let id = h.initiate("monitor", None, &[]).unwrap();
        assert_eq!(id, "c0-vnf1");
        let sp = h.connect(&id, 0, "s0").unwrap();
        assert_eq!(sp, 10);
        let sp = h.connect(&id, 1, "s0").unwrap();
        assert_eq!(sp, 11);
        assert!(h.connect(&id, 1, "s0").is_err(), "double connect refused");
        assert!(h.connect(&id, 2, "s9").is_err(), "unknown switch refused");
        h.start(&id).unwrap();
        let info = h.info(None);
        assert_eq!(info[0].status, "running");
        assert_eq!(info[0].ports.len(), 2);
        h.disconnect(&id, 0).unwrap();
        // The attachment point is recycled.
        let sp = h.connect(&id, 0, "s0").unwrap();
        assert_eq!(sp, 10);
    }

    #[test]
    fn isolation_options_are_parsed() {
        let mut h = VnfHost::new("c0", attach4(), 1);
        h.initiate("monitor", None, &[("isolation".into(), "share:1:4".into())])
            .unwrap();
        h.initiate(
            "monitor",
            None,
            &[("isolation".into(), "quota:1000:10000".into())],
        )
        .unwrap();
        assert!(h
            .initiate("monitor", None, &[("isolation".into(), "bogus".into())])
            .is_err());
    }

    #[test]
    fn catalog_params_pass_through_options() {
        let mut h = VnfHost::new("c0", attach4(), 1);
        let id = h
            .initiate(
                "firewall",
                None,
                &[("rules".into(), "deny udp, allow all".into())],
            )
            .unwrap();
        assert_eq!(h.read_handler(&id, "fw.rules").unwrap(), "2");
    }

    #[test]
    fn raw_click_config_overrides_catalog() {
        let mut h = VnfHost::new("c0", attach4(), 1);
        let id = h
            .initiate(
                "custom",
                Some("FromDevice(0) -> c :: Counter -> ToDevice(1);"),
                &[],
            )
            .unwrap();
        assert!(h.read_handler(&id, "c.count").is_some());
        assert!(h.initiate("custom", Some("syntax error ("), &[]).is_err());
    }

    /// Sink node capturing frames.
    #[derive(Default)]
    struct Sink {
        rx: Vec<(u16, Packet)>,
    }
    impl NodeLogic for Sink {
        fn on_packet(&mut self, _: &mut NodeCtx<'_>, port: u16, pkt: Packet) {
            self.rx.push((port, pkt));
        }
    }

    /// Wires container port k <-> sink port k for k in 0..2, then binds a
    /// monitor VNF between them, mimicking what deployment does.
    fn rigged_sim() -> (Sim, escape_netem::NodeId, escape_netem::NodeId, String) {
        let mut sim = Sim::new(2);
        let attach = vec![("s0".to_string(), 0u16, 0u16), ("s0".to_string(), 1, 1)];
        let c = sim.add_node("c0", 2, Box::new(VnfContainer::new("c0", 1, attach, 7)));
        let sink = sim.add_node("peer", 2, Box::new(Sink::default()));
        sim.connect((c, 0), (sink, 0), LinkConfig::ideal());
        sim.connect((c, 1), (sink, 1), LinkConfig::ideal());
        let vnf_id = {
            let host = sim.node_as_mut::<VnfContainer>(c).unwrap().host_mut();
            let id = host.initiate("monitor", None, &[]).unwrap();
            host.connect(&id, 0, "s0").unwrap();
            host.connect(&id, 1, "s0").unwrap();
            host.start(&id).unwrap();
            id
        };
        (sim, c, sink, vnf_id)
    }

    #[test]
    fn dataplane_flows_through_vnf() {
        let (mut sim, c, sink, vnf_id) = rigged_sim();
        sim.inject(c, 0, frame(80), Time::ZERO);
        sim.run(1000);
        let s = sim.node_as::<Sink>(sink).unwrap();
        assert_eq!(s.rx.len(), 1);
        assert_eq!(s.rx[0].0, 1, "exited through dev 1 -> container port 1");
        let host = sim.node_as::<VnfContainer>(c).unwrap().host();
        assert_eq!(host.read_handler(&vnf_id, "in_cnt.count").unwrap(), "1");
        // Reverse direction.
        sim.inject(c, 1, frame(81), sim.now());
        sim.run(1000);
        let s = sim.node_as::<Sink>(sink).unwrap();
        assert_eq!(s.rx.len(), 2);
        assert_eq!(s.rx[1].0, 0);
    }

    #[test]
    fn stopped_vnf_drops() {
        let (mut sim, c, sink, vnf_id) = rigged_sim();
        sim.node_as_mut::<VnfContainer>(c)
            .unwrap()
            .host_mut()
            .stop(&vnf_id)
            .unwrap();
        sim.inject(c, 0, frame(80), Time::ZERO);
        sim.run(1000);
        assert!(sim.node_as::<Sink>(sink).unwrap().rx.is_empty());
        assert_eq!(
            sim.node_as::<VnfContainer>(c).unwrap().host().vnfs[0].dropped_not_running,
            1
        );
    }

    #[test]
    fn unbound_port_counts() {
        let mut sim = Sim::new(0);
        let c = sim.add_node("c0", 1, Box::new(VnfContainer::new("c0", 1, vec![], 0)));
        sim.inject(c, 0, frame(80), Time::ZERO);
        sim.run(100);
        assert_eq!(sim.node_as::<VnfContainer>(c).unwrap().host().unbound_rx, 1);
    }

    #[test]
    fn vnf_path_hop_and_vnf_down_drop_are_recorded() {
        let (mut sim, c, _sink, vnf_id) = rigged_sim();
        sim.enable_trace(1000);
        let id = sim.inject(c, 0, frame(80), Time::ZERO);
        sim.run(1000);
        {
            let tr = sim.trace.as_ref().unwrap();
            let hop = tr
                .for_packet(id)
                .find(|r| r.dir == escape_netem::TraceDir::Hop)
                .expect("VNF hop recorded");
            let Some(HopDetail::VnfPath { vnf, elements }) = &hop.hop else {
                panic!("expected VnfPath, got {:?}", hop.hop);
            };
            assert_eq!(vnf, &vnf_id);
            assert!(
                elements.iter().any(|e| e == "in_cnt"),
                "monitor's counter missing from path {elements:?}"
            );
        }
        // Stopped VNF: the drop is typed and counted.
        sim.node_as_mut::<VnfContainer>(c)
            .unwrap()
            .host_mut()
            .stop(&vnf_id)
            .unwrap();
        let id2 = sim.inject(c, 0, frame(80), sim.now());
        sim.run(1000);
        let tr = sim.trace.as_ref().unwrap();
        let drop = tr
            .for_packet(id2)
            .find(|r| r.dir == escape_netem::TraceDir::Drop)
            .expect("drop recorded");
        assert_eq!(drop.drop, Some(DropReason::VnfDown));
        let snap = sim.telemetry().snapshot();
        assert_eq!(
            snap.counter("netem.drops", &[("reason", "vnf_down")]),
            Some(1)
        );
    }

    #[test]
    fn firewall_deny_is_attributed_as_filtered() {
        let mut sim = Sim::new(2);
        let attach = vec![("s0".to_string(), 0u16, 0u16), ("s0".to_string(), 1, 1)];
        let c = sim.add_node("c0", 2, Box::new(VnfContainer::new("c0", 1, attach, 7)));
        let sink = sim.add_node("peer", 2, Box::new(Sink::default()));
        sim.connect((c, 0), (sink, 0), LinkConfig::ideal());
        sim.connect((c, 1), (sink, 1), LinkConfig::ideal());
        {
            let host = sim.node_as_mut::<VnfContainer>(c).unwrap().host_mut();
            let id = host
                .initiate("firewall", None, &[("rules".into(), "deny udp".into())])
                .unwrap();
            host.connect(&id, 0, "s0").unwrap();
            host.connect(&id, 1, "s0").unwrap();
            host.start(&id).unwrap();
        }
        sim.enable_trace(1000);
        let id = sim.inject(c, 0, frame(80), Time::ZERO);
        sim.run(1000);
        assert!(sim.node_as::<Sink>(sink).unwrap().rx.is_empty());
        let tr = sim.trace.as_ref().unwrap();
        let drop = tr
            .for_packet(id)
            .find(|r| r.dir == escape_netem::TraceDir::Drop)
            .expect("filtered frame leaves a drop record");
        assert_eq!(drop.drop, Some(DropReason::Filtered));
    }

    #[test]
    fn cpu_cost_delays_emission() {
        // A DPI VNF charges per-byte work; under a tight CPU quota the
        // output is deferred.
        let mut sim = Sim::new(2);
        let attach = vec![("s0".to_string(), 0u16, 0u16), ("s0".to_string(), 1, 1)];
        let c = sim.add_node("c0", 2, Box::new(VnfContainer::new("c0", 1, attach, 7)));
        let sink = sim.add_node("peer", 2, Box::new(Sink::default()));
        sim.connect((c, 0), (sink, 0), LinkConfig::ideal());
        sim.connect((c, 1), (sink, 1), LinkConfig::ideal());
        {
            let host = sim.node_as_mut::<VnfContainer>(c).unwrap().host_mut();
            let id = host
                .initiate(
                    "dpi",
                    None,
                    &[("isolation".into(), "share:1:100".into())], // 1% of a CPU
                )
                .unwrap();
            host.connect(&id, 0, "s0").unwrap();
            host.connect(&id, 1, "s0").unwrap();
            host.start(&id).unwrap();
        }
        sim.inject(c, 0, frame(80), Time::ZERO);
        sim.run(10_000);
        let s = sim.node_as::<Sink>(sink).unwrap();
        assert_eq!(s.rx.len(), 1);
        // The work is inflated 100x; emission must be visibly later than 0.
        assert!(sim.now() > Time::from_us(10), "emitted at {}", sim.now());
    }

    #[test]
    fn internal_chaining_between_colocated_vnfs() {
        let mut sim = Sim::new(2);
        let attach = vec![("s0".to_string(), 0u16, 0u16), ("s0".to_string(), 1, 1)];
        let c = sim.add_node("c0", 2, Box::new(VnfContainer::new("c0", 1, attach, 7)));
        let sink = sim.add_node("peer", 2, Box::new(Sink::default()));
        sim.connect((c, 0), (sink, 0), LinkConfig::ideal());
        sim.connect((c, 1), (sink, 1), LinkConfig::ideal());
        let (_v1, v2) = {
            let host = sim.node_as_mut::<VnfContainer>(c).unwrap().host_mut();
            let v1 = host.initiate("monitor", None, &[]).unwrap();
            let v2 = host.initiate("monitor", None, &[]).unwrap();
            host.connect(&v1, 0, "s0").unwrap(); // in from fabric
            host.bind_internal(&v1, 1, &v2, 0).unwrap(); // v1 -> v2 inside
            host.connect(&v2, 1, "s0").unwrap(); // out to fabric
            host.start(&v1).unwrap();
            host.start(&v2).unwrap();
            (v1, v2)
        };
        sim.inject(c, 0, frame(80), Time::ZERO);
        sim.run(1000);
        let s = sim.node_as::<Sink>(sink).unwrap();
        assert_eq!(s.rx.len(), 1);
        let host = sim.node_as::<VnfContainer>(c).unwrap().host();
        assert_eq!(host.read_handler(&v2, "in_cnt.count").unwrap(), "1");
    }

    #[test]
    fn netconf_over_ctrl_channel_manages_vnfs() {
        use escape_netconf::{Client, ClientEvent};
        // Relay node standing in for the orchestrator.
        #[derive(Default)]
        struct Relay {
            inbox: Vec<Vec<u8>>,
        }
        impl NodeLogic for Relay {
            fn on_packet(&mut self, _: &mut NodeCtx<'_>, _: u16, _: Packet) {}
            fn on_ctrl(&mut self, _: &mut NodeCtx<'_>, _: CtrlId, msg: Vec<u8>) {
                self.inbox.push(msg);
            }
        }
        let mut sim = Sim::new(1);
        let attach = vec![("s0".to_string(), 0u16, 0u16)];
        let c = sim.add_node("c0", 1, Box::new(VnfContainer::new("c0", 1, attach, 7)));
        let mgr = sim.add_node("mgr", 0, Box::new(Relay::default()));
        let conn = sim.ctrl_connect(mgr, c, Time::from_us(100));

        let mut client = Client::new();
        sim.ctrl_send_from(mgr, conn, client.start());
        sim.run(100);
        // Agent's hello arrived at the relay.
        let hello = sim.node_as_mut::<Relay>(mgr).unwrap().inbox.remove(0);
        let ev = client.on_bytes(&hello);
        assert!(matches!(ev[0], ClientEvent::HelloReceived { .. }));
        assert!(client.has_vnf_starter());

        let (_, req) = client.initiate_vnf("monitor", None, &[]);
        sim.ctrl_send_from(mgr, conn, req);
        sim.run(100);
        let reply = sim.node_as_mut::<Relay>(mgr).unwrap().inbox.remove(0);
        let ev = client.on_bytes(&reply);
        let ClientEvent::Reply(r) = &ev[0] else {
            panic!()
        };
        let vnf_id = escape_netconf::client::vnf_id_of(r).unwrap();
        assert_eq!(vnf_id, "c0-vnf1");
    }
}
