//! Packet flight recorder: hop-by-hop journey reconstruction.
//!
//! The netem trace is a flat stream of per-node [`TraceRecord`]s. This
//! module correlates them by packet id into end-to-end [`Journey`]s: an
//! ordered list of node visits ([`Hop`]s) with arrival/departure virtual
//! timestamps, the flow rule or Click elements that handled the packet at
//! each hop, and — for lost packets — the exact node and typed
//! [`DropReason`] where the journey ended. Journeys are attributed to
//! deployed chains through the steering cookie carried on
//! [`HopDetail::FlowMatch`] records, which makes per-chain latency
//! aggregation and [SLA](escape_sg::Sla) verdicts possible after a
//! traffic run.

use escape_netem::{DropReason, HopDetail, NodeId, Time, TraceDir, TraceRecord};
use escape_sg::Sla;
use escape_telemetry::{ChromeEvent, Registry, DURATION_BOUNDS_NS};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;

/// What role a visited node plays in the emulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A SAP host (traffic source or sink).
    Host,
    /// An OpenFlow switch.
    Switch,
    /// A VNF container.
    Container,
    /// Anything else (controller, manager relay, raw nodes).
    Other,
}

impl NodeKind {
    /// Short lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Host => "host",
            NodeKind::Switch => "switch",
            NodeKind::Container => "container",
            NodeKind::Other => "node",
        }
    }
}

/// One node visit within a journey.
#[derive(Debug, Clone)]
pub struct Hop {
    /// Node name (topology name where known, emulator name otherwise).
    pub node: String,
    pub kind: NodeKind,
    /// When the packet arrived here (for the origin host: when it was
    /// transmitted).
    pub arrived: Time,
    /// When the packet left; `None` if it was consumed or dropped here.
    pub departed: Option<Time>,
    /// What handled the packet here (flow match, table miss, VNF path).
    pub details: Vec<HopDetail>,
    /// Set when the packet died at this hop.
    pub drop: Option<DropReason>,
}

impl Hop {
    /// Virtual ns spent at this node, if the packet left again.
    pub fn dwell_ns(&self) -> Option<u64> {
        self.departed.map(|d| d.since(self.arrived))
    }
}

/// How a journey ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Reached a host that consumed it.
    Delivered { at: Time },
    /// Died mid-path.
    Dropped { node: String, reason: DropReason },
    /// Still queued or in transit when the trace was cut.
    InFlight,
}

/// One packet's reconstructed end-to-end path.
#[derive(Debug, Clone)]
pub struct Journey {
    pub packet_id: u64,
    /// Deployed chain this packet was steered by, if any hop matched a
    /// steering rule whose cookie belongs to a deployed chain.
    pub chain: Option<String>,
    /// The first steering cookie observed along the path.
    pub cookie: Option<u64>,
    /// Node visits in virtual-time order.
    pub hops: Vec<Hop>,
    pub outcome: Outcome,
}

impl Journey {
    /// When the packet first entered the network.
    pub fn started_at(&self) -> Time {
        self.hops.first().map(|h| h.arrived).unwrap_or(Time::ZERO)
    }

    /// End-to-end latency in virtual ns, for delivered packets.
    pub fn e2e_latency_ns(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Delivered { at } => Some(at.since(self.started_at())),
            _ => None,
        }
    }
}

/// The full set of journeys reconstructed from one trace.
#[derive(Debug, Clone, Default)]
pub struct FlightRecord {
    /// Journeys ordered by packet id.
    pub journeys: Vec<Journey>,
}

/// Correlates a flat trace into journeys.
///
/// `resolve` maps emulator node ids to display names and kinds;
/// `chains` maps steering cookies to deployed chain names. Records must
/// arrive in virtual-time order (the trace ring preserves it).
pub fn reconstruct<'a>(
    records: impl Iterator<Item = &'a TraceRecord>,
    resolve: impl Fn(NodeId) -> (String, NodeKind),
    chains: &HashMap<u64, String>,
) -> FlightRecord {
    // Group by packet id; BTreeMap keeps journey order deterministic.
    let mut by_packet: BTreeMap<u64, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        by_packet.entry(r.packet_id).or_default().push(r);
    }
    let journeys = by_packet
        .into_iter()
        .map(|(packet_id, recs)| build_journey(packet_id, &recs, &resolve, chains))
        .collect();
    FlightRecord { journeys }
}

fn build_journey(
    packet_id: u64,
    recs: &[&TraceRecord],
    resolve: &impl Fn(NodeId) -> (String, NodeKind),
    chains: &HashMap<u64, String>,
) -> Journey {
    let mut hops: Vec<Hop> = Vec::new();
    let mut outcome = Outcome::InFlight;
    for r in recs {
        let (node, kind) = resolve(r.node);
        // Does this record continue the current node visit?
        let open = hops
            .last()
            .is_some_and(|h| h.node == node && h.departed.is_none() && h.drop.is_none());
        match r.dir {
            TraceDir::Rx => hops.push(Hop {
                node,
                kind,
                arrived: r.time,
                departed: None,
                details: Vec::new(),
                drop: None,
            }),
            TraceDir::Hop => {
                if !open {
                    hops.push(Hop {
                        node,
                        kind,
                        arrived: r.time,
                        departed: None,
                        details: Vec::new(),
                        drop: None,
                    });
                }
                if let Some(d) = &r.hop {
                    hops.last_mut()
                        .expect("hop pushed above")
                        .details
                        .push(d.clone());
                }
            }
            TraceDir::Tx => {
                if open {
                    hops.last_mut().expect("open visit").departed = Some(r.time);
                } else {
                    // Origin host: the first record is the transmit itself.
                    hops.push(Hop {
                        node,
                        kind,
                        arrived: r.time,
                        departed: Some(r.time),
                        details: Vec::new(),
                        drop: None,
                    });
                }
            }
            TraceDir::Drop => {
                if !open {
                    hops.push(Hop {
                        node: node.clone(),
                        kind,
                        arrived: r.time,
                        departed: None,
                        details: Vec::new(),
                        drop: None,
                    });
                }
                let h = hops.last_mut().expect("drop hop exists");
                h.drop = r.drop;
                if let Some(reason) = r.drop {
                    outcome = Outcome::Dropped { node, reason };
                }
            }
        }
    }
    // Delivered: the last visit is a host that kept the packet.
    if outcome == Outcome::InFlight {
        if let Some(last) = hops.last() {
            if last.kind == NodeKind::Host && last.departed.is_none() && last.drop.is_none() {
                outcome = Outcome::Delivered { at: last.arrived };
            }
        }
    }
    // Chain attribution: first steering cookie seen along the path.
    let cookie = hops.iter().flat_map(|h| &h.details).find_map(|d| match d {
        HopDetail::FlowMatch { cookie, .. } => Some(*cookie),
        _ => None,
    });
    let chain = cookie.and_then(|c| chains.get(&c).cloned());
    Journey {
        packet_id,
        chain,
        cookie,
        hops,
        outcome,
    }
}

impl FlightRecord {
    /// Journeys attributed to the named chain.
    pub fn for_chain<'a>(&'a self, chain: &'a str) -> impl Iterator<Item = &'a Journey> {
        self.journeys
            .iter()
            .filter(move |j| j.chain.as_deref() == Some(chain))
    }

    /// The journey of one packet.
    pub fn journey(&self, packet_id: u64) -> Option<&Journey> {
        self.journeys.iter().find(|j| j.packet_id == packet_id)
    }

    /// Publishes per-chain aggregates into the registry: delivered and
    /// dropped counters (`chain.delivered`, `chain.dropped{reason=…}`),
    /// in-flight counts, and an end-to-end latency histogram
    /// (`chain.e2e_latency_ns`). Unattributed journeys land under
    /// `chain="unattributed"`.
    pub fn aggregate(&self, registry: &Registry) {
        for j in &self.journeys {
            let chain = j.chain.as_deref().unwrap_or("unattributed");
            match &j.outcome {
                Outcome::Delivered { .. } => {
                    registry
                        .counter_with("chain.delivered", &[("chain", chain)])
                        .inc();
                    if let Some(ns) = j.e2e_latency_ns() {
                        registry
                            .histogram_with(
                                "chain.e2e_latency_ns",
                                &[("chain", chain)],
                                DURATION_BOUNDS_NS,
                            )
                            .observe(ns);
                    }
                }
                Outcome::Dropped { reason, .. } => {
                    registry
                        .counter_with(
                            "chain.dropped",
                            &[("chain", chain), ("reason", reason.label())],
                        )
                        .inc();
                }
                Outcome::InFlight => {
                    registry
                        .counter_with("chain.in_flight", &[("chain", chain)])
                        .inc();
                }
            }
        }
    }

    /// Human-readable timeline of one journey.
    pub fn timeline(&self, j: &Journey) -> String {
        let mut out = String::new();
        let start = j.started_at();
        let chain = j.chain.as_deref().unwrap_or("-");
        let verdict = match &j.outcome {
            Outcome::Delivered { at } => {
                format!("delivered in {}", Time::from_ns(at.since(start)))
            }
            Outcome::Dropped { node, reason } => format!("DROPPED at {node} ({reason})"),
            Outcome::InFlight => "in flight".to_string(),
        };
        let _ = writeln!(out, "packet {} chain={chain} {verdict}", j.packet_id);
        for h in &j.hops {
            let rel = Time::from_ns(h.arrived.since(start));
            let dwell = match h.dwell_ns() {
                Some(ns) => format!(" dwell {}", Time::from_ns(ns)),
                None => String::new(),
            };
            let _ = writeln!(out, "  +{rel:<12} {} [{}]{dwell}", h.node, h.kind.label());
            for d in &h.details {
                let _ = writeln!(out, "      {d}");
            }
            if let Some(reason) = h.drop {
                let _ = writeln!(out, "      dropped: {reason}");
            }
        }
        out
    }

    /// Timelines for every journey, in packet-id order.
    pub fn timelines(&self) -> String {
        self.journeys.iter().map(|j| self.timeline(j)).collect()
    }

    /// Converts journeys to Chrome trace events: one lane (tid) per node,
    /// a complete event per traversed hop, an instant event per drop.
    /// Order is (packet id, hop index) — fully deterministic.
    pub fn chrome_events(&self) -> Vec<ChromeEvent> {
        // Stable node -> tid assignment across the whole record.
        let nodes: BTreeSet<&str> = self
            .journeys
            .iter()
            .flat_map(|j| j.hops.iter().map(|h| h.node.as_str()))
            .collect();
        let tid_of: HashMap<&str, u64> = nodes
            .into_iter()
            .enumerate()
            .map(|(i, n)| (n, i as u64 + 1))
            .collect();
        let mut events = Vec::new();
        for j in &self.journeys {
            let cat = j.chain.clone().unwrap_or_else(|| "unattributed".into());
            for h in &j.hops {
                let mut args = vec![
                    ("packet".to_string(), j.packet_id.to_string()),
                    ("kind".to_string(), h.kind.label().to_string()),
                ];
                for d in &h.details {
                    args.push(("detail".to_string(), d.to_string()));
                }
                events.push(ChromeEvent {
                    name: format!("{} #{}", h.node, j.packet_id),
                    cat: cat.clone(),
                    ts_us: h.arrived.as_us(),
                    // A consumed/dropped packet still gets a sliver so the
                    // visit is visible; dwell otherwise.
                    dur_us: Some(h.dwell_ns().map(|ns| ns / 1_000).unwrap_or(0).max(1)),
                    pid: 1,
                    tid: tid_of[h.node.as_str()],
                    args,
                });
                if let Some(reason) = h.drop {
                    events.push(ChromeEvent {
                        name: format!("drop: {reason}"),
                        cat: cat.clone(),
                        ts_us: h.arrived.as_us(),
                        dur_us: None,
                        pid: 1,
                        tid: tid_of[h.node.as_str()],
                        args: vec![("packet".to_string(), j.packet_id.to_string())],
                    });
                }
            }
        }
        events
    }

    /// The Chrome trace-event JSON document for the whole record.
    pub fn chrome_json(&self) -> String {
        escape_telemetry::chrome::render(&self.chrome_events())
    }
}

/// Post-run verdict of one chain's SLA against recorded traffic.
#[derive(Debug, Clone)]
pub struct SlaVerdict {
    pub chain: String,
    pub delivered: u64,
    pub dropped: u64,
    pub in_flight: u64,
    /// Worst end-to-end latency among delivered packets (virtual ns).
    pub max_latency_ns: Option<u64>,
    /// Observed loss ratio over finished journeys.
    pub loss: f64,
    pub pass: bool,
    /// One line per violated objective; empty when passing.
    pub violations: Vec<String>,
}

impl std::fmt::Display for SlaVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chain {} {}: {} delivered, {} dropped (loss {:.1}%), max latency {}",
            self.chain,
            if self.pass { "PASS" } else { "FAIL" },
            self.delivered,
            self.dropped,
            self.loss * 100.0,
            self.max_latency_ns
                .map(|ns| Time::from_ns(ns).to_string())
                .unwrap_or_else(|| "-".into()),
        )?;
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

/// Checks `sla` against the journeys attributed to `chain`.
pub fn evaluate_sla<'a>(
    chain: &str,
    sla: &Sla,
    journeys: impl Iterator<Item = &'a Journey>,
) -> SlaVerdict {
    let (mut delivered, mut dropped, mut in_flight) = (0u64, 0u64, 0u64);
    let mut max_latency_ns: Option<u64> = None;
    for j in journeys {
        match &j.outcome {
            Outcome::Delivered { .. } => {
                delivered += 1;
                if let Some(ns) = j.e2e_latency_ns() {
                    max_latency_ns = Some(max_latency_ns.unwrap_or(0).max(ns));
                }
            }
            Outcome::Dropped { .. } => dropped += 1,
            Outcome::InFlight => in_flight += 1,
        }
    }
    let finished = delivered + dropped;
    let loss = if finished == 0 {
        0.0
    } else {
        dropped as f64 / finished as f64
    };
    let mut violations = Vec::new();
    if let (Some(budget_us), Some(worst)) = (sla.max_latency_us, max_latency_ns) {
        let budget_ns = budget_us * 1_000;
        if worst > budget_ns {
            violations.push(format!(
                "max latency {} exceeds sla {}",
                Time::from_ns(worst),
                Time::from_us(budget_us)
            ));
        }
    }
    if let Some(max_loss) = sla.max_loss {
        if loss > max_loss {
            violations.push(format!(
                "loss {:.1}% exceeds sla {:.1}%",
                loss * 100.0,
                max_loss * 100.0
            ));
        }
    }
    SlaVerdict {
        chain: chain.to_string(),
        delivered,
        dropped,
        in_flight,
        max_latency_ns,
        loss,
        pass: violations.is_empty(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time_us: u64, node: u32, dir: TraceDir) -> TraceRecord {
        TraceRecord::wire(Time::from_us(time_us), NodeId(node), 0, dir, 64, 7)
    }

    fn resolve(n: NodeId) -> (String, NodeKind) {
        match n.0 {
            0 => ("sap0".into(), NodeKind::Host),
            1 => ("s0".into(), NodeKind::Switch),
            2 => ("c0".into(), NodeKind::Container),
            3 => ("sap1".into(), NodeKind::Host),
            _ => (format!("n{}", n.0), NodeKind::Other),
        }
    }

    fn chains() -> HashMap<u64, String> {
        HashMap::from([(9, "demo".to_string())])
    }

    fn delivered_trace() -> Vec<TraceRecord> {
        let mut v = vec![rec(0, 0, TraceDir::Tx), rec(10, 1, TraceDir::Rx)];
        let mut m = rec(10, 1, TraceDir::Hop);
        m.hop = Some(HopDetail::FlowMatch {
            dpid: 1,
            cookie: 9,
            priority: 500,
        });
        v.push(m);
        v.extend([
            rec(12, 1, TraceDir::Tx),
            rec(20, 2, TraceDir::Rx),
            rec(25, 2, TraceDir::Tx),
            rec(30, 1, TraceDir::Rx),
            rec(31, 1, TraceDir::Tx),
            rec(40, 3, TraceDir::Rx),
        ]);
        v
    }

    #[test]
    fn delivered_journey_reconstructs_hops_and_latency() {
        let trace = delivered_trace();
        let fr = reconstruct(trace.iter(), resolve, &chains());
        assert_eq!(fr.journeys.len(), 1);
        let j = &fr.journeys[0];
        assert_eq!(j.chain.as_deref(), Some("demo"));
        assert_eq!(j.cookie, Some(9));
        let names: Vec<&str> = j.hops.iter().map(|h| h.node.as_str()).collect();
        assert_eq!(names, ["sap0", "s0", "c0", "s0", "sap1"]);
        assert_eq!(
            j.outcome,
            Outcome::Delivered {
                at: Time::from_us(40)
            }
        );
        assert_eq!(j.e2e_latency_ns(), Some(40_000));
        assert_eq!(j.hops[1].dwell_ns(), Some(2_000));
        // Arrival times are monotonic.
        assert!(j.hops.windows(2).all(|w| w[0].arrived <= w[1].arrived));
    }

    #[test]
    fn dropped_journey_points_at_the_right_hop() {
        let mut trace = delivered_trace();
        trace.truncate(4); // up to the first switch Tx
        let mut d = rec(12, 1, TraceDir::Drop);
        d.drop = Some(DropReason::LinkDown);
        trace.push(d);
        let fr = reconstruct(trace.iter(), resolve, &chains());
        let j = &fr.journeys[0];
        assert_eq!(
            j.outcome,
            Outcome::Dropped {
                node: "s0".into(),
                reason: DropReason::LinkDown
            }
        );
        assert_eq!(j.e2e_latency_ns(), None);
        // The drop is pinned on the switch visit (departed already set, so
        // a fresh terminal hop carries it).
        let last = j.hops.last().unwrap();
        assert_eq!(last.node, "s0");
        assert_eq!(last.drop, Some(DropReason::LinkDown));
    }

    #[test]
    fn aggregate_publishes_chain_metrics() {
        let trace = delivered_trace();
        let fr = reconstruct(trace.iter(), resolve, &chains());
        let reg = Registry::new();
        fr.aggregate(&reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("chain.delivered", &[("chain", "demo")]),
            Some(1)
        );
        let h = snap
            .histogram("chain.e2e_latency_ns", &[("chain", "demo")])
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 40_000);
    }

    #[test]
    fn sla_verdicts_pass_and_fail() {
        let trace = delivered_trace();
        let fr = reconstruct(trace.iter(), resolve, &chains());
        let loose = Sla {
            max_latency_us: Some(1_000),
            max_loss: Some(0.5),
        };
        let v = evaluate_sla("demo", &loose, fr.for_chain("demo"));
        assert!(v.pass, "loose sla should pass: {v}");
        let tight = Sla {
            max_latency_us: Some(10),
            max_loss: None,
        };
        let v = evaluate_sla("demo", &tight, fr.for_chain("demo"));
        assert!(!v.pass);
        assert_eq!(v.violations.len(), 1);
        assert!(v.to_string().contains("FAIL"));
    }

    #[test]
    fn timeline_and_chrome_export_cover_the_journey() {
        let trace = delivered_trace();
        let fr = reconstruct(trace.iter(), resolve, &chains());
        let text = fr.timelines();
        assert!(text.contains("packet 7 chain=demo delivered"));
        assert!(text.contains("flow-match"));
        let doc = fr.chrome_json();
        let v = escape_json::Value::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5); // one complete event per hop
        assert_eq!(fr.chrome_json(), doc); // deterministic
    }
}
