//! Multi-domain ESCAPE: one full [`Escape`] environment per
//! infrastructure domain, stitched by a global coordinator.
//!
//! This is the runtime half of the hierarchical orchestration the paper
//! sketches for multi-operator deployments:
//!
//! * [`escape_domain::partition`] carves the shared topology into local
//!   domains joined by gateway links;
//! * each domain gets its own simulator, POX controller, NETCONF agents
//!   and local orchestrator — a complete single-domain ESCAPE;
//! * the [`escape_domain::GlobalOrchestrator`] plans cross-domain chains
//!   over the aggregated views and delegates per-domain legs to the
//!   local orchestrators;
//! * [`MultiDomainEscape::run_for_ms`] drives all domain simulators in
//!   epoch lockstep, optionally on parallel worker threads, ferrying
//!   packets between gateway SAP pairs at the epoch barriers.
//!
//! # Determinism
//!
//! Domain simulators only interact at epoch barriers, on the coordinator
//! thread, in a fixed order (domain index, then gateway, then arrival
//! time). A handed-off packet is re-injected exactly one [`EPOCH`] after
//! it reached the egress gateway — a fixed, virtual-time handoff cost
//! that stands in for the inter-domain control-plane hop. Worker threads
//! only ever advance *disjoint* simulators between barriers, so the
//! merged event and flight traces are byte-identical for any worker
//! count and across repeated runs with the same seed.

use crate::env::{AdmissionConfig, Escape};
use crate::error::{AdmissionVerdict, EscapeError};
use crate::journal::{Journal, JournalKind, Severity, DEFAULT_JOURNAL_CAP};
use escape_domain::{merge_event_logs, ChainPlan, DomainSpec, GlobalOrchestrator, Partition};
use escape_netem::{LinkState, Time};
use escape_orch::{MapError, MappingAlgorithm};
use escape_pox::SteeringMode;
use escape_sg::{ResourceTopology, ServiceGraph};
use escape_telemetry::{Registry, Snapshot};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Epoch length: how far each domain simulator runs between coordinator
/// barriers. Also the fixed virtual cost of a gateway handoff, which
/// guarantees a ferried packet is never injected into a domain's past.
pub const EPOCH: Time = Time::from_us(500);

/// One domain's runtime: its name and its complete ESCAPE environment.
struct DomainRuntime {
    name: String,
    esc: Escape,
}

/// First chain-identifying source port handed out by the coordinator.
/// Every leg of a chain — the first (via [`MultiDomainEscape::
/// start_chain_udp`]) and each gateway re-origination — carries the
/// chain's own port, so chains sharing a source SAP or a gateway path
/// stay distinguishable on the wire.
const CHAIN_PORT_BASE: u16 = 41_000;

/// Where payloads surfacing at an egress gateway SAP continue.
#[derive(Debug, Clone)]
struct Handoff {
    chain: String,
    to_domain: usize,
    /// Ingress gateway SAP in the next domain (re-origination point).
    from_sap: String,
    /// The next leg's exit SAP (the new destination address).
    to_sap: String,
    /// The chain's wire-identity port, stamped on the re-originated leg.
    port: u16,
}

/// `(egress domain index, egress gateway SAP, leg source IP, leg source
/// port)` — enough to route a drained payload onto its next leg. The
/// port matters from the second handoff on, where the source IP is the
/// ingress gateway SAP shared by every chain crossing that gateway.
type HandoffKey = (usize, String, Ipv4Addr, u16);

/// The multi-domain environment: per-domain [`Escape`] instances under a
/// global orchestrator and an epoch-stepped coordinator.
pub struct MultiDomainEscape {
    parts: Vec<DomainRuntime>,
    global: GlobalOrchestrator,
    /// Gateway SAPs to drain, in deterministic (domain, gateway) order.
    gw_saps: Vec<(usize, String)>,
    plans: HashMap<String, ChainPlan>,
    /// Originating service graph per chain, for global re-stitching.
    graphs: HashMap<String, ServiceGraph>,
    handoffs: HashMap<HandoffKey, Handoff>,
    /// Chain → wire-identity port. Assigned in deploy order, never
    /// reused, so identical deploy sequences get identical ports.
    ports: HashMap<String, u16>,
    next_port: u16,
    workers: usize,
    /// Coordinator-level event log: (virtual ns, message).
    events: Vec<(u64, String)>,
    /// Coordinator-level typed event journal (stitches, escalations,
    /// gateway faults). Per-domain journals live in each [`Escape`];
    /// [`MultiDomainEscape::journal_json_lines`] merges them all.
    journal: Journal,
    /// Coordinator-level metrics (handoffs, re-stitches).
    registry: Registry,
    clock: Time,
    /// Hard-watermark admission gate over the mean domain utilization.
    admission: Option<AdmissionConfig>,
}

/// Per-domain seeds must differ (identical seeds would produce eerily
/// synchronized jitter) but derive deterministically from the base seed
/// and the domain *index* — never from worker assignment.
fn domain_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

impl MultiDomainEscape {
    /// Partitions `topo` per `spec` and builds one [`Escape`] per domain.
    /// `algorithm` is a factory because each local orchestrator owns its
    /// instance. `workers` caps the simulator threads used per epoch
    /// (`1` = fully sequential; results are identical either way).
    pub fn build(
        topo: &ResourceTopology,
        spec: &DomainSpec,
        algorithm: &dyn Fn() -> Box<dyn MappingAlgorithm>,
        mode: SteeringMode,
        seed: u64,
        workers: usize,
    ) -> Result<MultiDomainEscape, EscapeError> {
        // Worker threads move whole `Escape` instances across threads.
        fn assert_send<T: Send>() {}
        assert_send::<Escape>();

        let partition = escape_domain::partition(topo, spec).map_err(EscapeError::Invalid)?;
        let mut parts = Vec::with_capacity(partition.domains.len());
        for (i, d) in partition.domains.iter().enumerate() {
            let mut esc = Escape::build(d.topo.clone(), algorithm(), mode, domain_seed(seed, i))?;
            for g in &partition.gateways {
                if let Some(sap) = g.sap_in(&d.name) {
                    esc.set_gateway_sap(sap)?;
                }
            }
            parts.push(DomainRuntime {
                name: d.name.clone(),
                esc,
            });
        }
        let mut gw_saps = Vec::new();
        for g in &partition.gateways {
            for domain in [&g.a_domain, &g.b_domain] {
                let di = partition.domain_index(domain).unwrap();
                gw_saps.push((di, g.sap_in(domain).unwrap().to_string()));
            }
        }
        gw_saps.sort();
        let registry = Registry::new();
        let mut md = MultiDomainEscape {
            global: GlobalOrchestrator::new(partition),
            parts,
            gw_saps,
            plans: HashMap::new(),
            graphs: HashMap::new(),
            handoffs: HashMap::new(),
            ports: HashMap::new(),
            next_port: CHAIN_PORT_BASE,
            workers: workers.max(1),
            events: Vec::new(),
            journal: Journal::new(&registry, DEFAULT_JOURNAL_CAP),
            registry,
            clock: Time::ZERO,
            admission: None,
        };
        md.align();
        Ok(md)
    }

    /// Current coordinator virtual time (all domains are at least here).
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Domain names, in partition order.
    pub fn domains(&self) -> Vec<&str> {
        self.parts.iter().map(|rt| rt.name.as_str()).collect()
    }

    /// The global orchestrator (aggregated views, failed gateways).
    pub fn global(&self) -> &GlobalOrchestrator {
        &self.global
    }

    /// The partition this environment runs over.
    pub fn partition(&self) -> &Partition {
        self.global.partition()
    }

    /// One domain's full single-domain environment (inspection only).
    pub fn domain_escape(&self, name: &str) -> Option<&Escape> {
        self.parts
            .iter()
            .find(|rt| rt.name == name)
            .map(|rt| &rt.esc)
    }

    /// Mutable access to one domain's environment — for arming local
    /// fault plans or other domain-scoped interventions. The epoch loop
    /// keeps driving the domain as usual afterwards.
    pub fn domain_escape_mut(&mut self, name: &str) -> Option<&mut Escape> {
        self.parts
            .iter_mut()
            .find(|rt| rt.name == name)
            .map(|rt| &mut rt.esc)
    }

    /// The global plan for a deployed chain.
    pub fn plan(&self, chain: &str) -> Option<&ChainPlan> {
        self.plans.get(chain)
    }

    fn note(&mut self, msg: String) {
        self.events.push((self.clock.as_ns(), msg));
    }

    /// Appends a typed entry to the coordinator journal at the current
    /// coordinator (virtual) time.
    fn journal_event(&mut self, severity: Severity, kind: JournalKind, detail: String) {
        self.journal
            .record(self.clock.as_ns(), severity, kind, detail);
    }

    /// The coordinator's own typed event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Merged, domain-labelled journal as JSON lines: the coordinator's
    /// entries (`"domain":"global"`) and every domain's, stably ordered
    /// by virtual timestamp (ties keep global-then-partition-order, the
    /// same discipline as [`MultiDomainEscape::event_trace`]).
    /// Byte-identical across same-seed runs and any worker count.
    pub fn journal_json_lines(&self) -> String {
        let mut rows: Vec<(u64, String)> = Vec::new();
        for e in self.journal.entries() {
            rows.push((e.at_ns, e.json_value().set("domain", "global").to_string()));
        }
        for rt in &self.parts {
            for e in rt.esc.journal().entries() {
                rows.push((
                    e.at_ns,
                    e.json_value().set("domain", rt.name.as_str()).to_string(),
                ));
            }
        }
        rows.sort_by_key(|(at, _)| *at); // stable: ties keep stream order
        let mut out = String::new();
        for (_, line) in rows {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    fn domain_index(&self, name: &str) -> usize {
        self.global.partition().domain_index(name).unwrap()
    }

    // ---------------- deployment ------------------------------------

    /// Enables coordinator-level admission control: deploys are rejected
    /// outright once the *mean* domain compute utilization reaches the
    /// hard watermark. The soft watermark is not used here — queueing a
    /// half-planned cross-domain chain would risk deploying stale legs
    /// against a moved resource view, so overload at the coordinator is
    /// always a typed, immediate rejection.
    pub fn set_admission(&mut self, cfg: AdmissionConfig) {
        self.admission = Some(cfg);
    }

    /// Mean compute utilization across all domains.
    pub fn cpu_utilization(&self) -> f64 {
        if self.parts.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .parts
            .iter()
            .map(|p| p.esc.orchestrator().cpu_utilization())
            .sum();
        total / self.parts.len() as f64
    }

    /// Plans every chain globally, deploys each leg through the owning
    /// domain's local orchestrator and wires the gateway handoffs.
    pub fn deploy(&mut self, sg: &ServiceGraph) -> Result<(), EscapeError> {
        sg.validate().map_err(EscapeError::Invalid)?;
        if let Some(cfg) = self.admission {
            let utilization = self.cpu_utilization();
            if utilization >= cfg.hard_watermark {
                self.note(format!(
                    "admission: rejected (mean utilization {utilization:.2} >= hard {:.2})",
                    cfg.hard_watermark
                ));
                self.journal_event(
                    Severity::Warn,
                    JournalKind::AdmissionRejected,
                    format!(
                        "mean utilization {utilization:.2} >= hard watermark {:.2}",
                        cfg.hard_watermark
                    ),
                );
                return Err(EscapeError::Admission(AdmissionVerdict::RejectedHard {
                    utilization,
                    hard_watermark: cfg.hard_watermark,
                }));
            }
        }
        for chain in &sg.chains {
            let plan = self.global.plan_chain(sg, chain).map_err(|e| {
                EscapeError::MappingFailed(vec![(
                    chain.name.clone(),
                    MapError::Infeasible(e.to_string()),
                )])
            })?;
            self.deploy_plan(sg, &plan)?;
            self.global.commit(sg, &plan);
            self.note(format!(
                "chain {} stitched across {:?} ({} legs, {}us inter-domain)",
                plan.chain,
                plan.domain_path,
                plan.legs.len(),
                plan.inter_domain_us
            ));
            self.journal_event(
                Severity::Info,
                JournalKind::DeployCommitted,
                format!(
                    "chain {} stitched across {:?} ({} legs)",
                    plan.chain,
                    plan.domain_path,
                    plan.legs.len()
                ),
            );
            self.plans.insert(plan.chain.clone(), plan);
            self.graphs.insert(chain.name.clone(), sg.clone());
        }
        self.align();
        Ok(())
    }

    /// Deploys all legs of one plan; on a partial failure tears down the
    /// legs already placed so no half-stitched chain lingers.
    fn deploy_plan(&mut self, sg: &ServiceGraph, plan: &ChainPlan) -> Result<(), EscapeError> {
        let mut placed: Vec<usize> = Vec::new();
        for leg in &plan.legs {
            let di = self.domain_index(&leg.domain);
            let leg_sg = leg_service_graph(sg, leg);
            match self.parts[di].esc.deploy(&leg_sg) {
                Ok(_) => placed.push(di),
                Err(e) => {
                    for di in placed {
                        let _ = self.parts[di].esc.teardown(&plan.chain);
                    }
                    return Err(e);
                }
            }
        }
        self.register_handoffs(plan)?;
        Ok(())
    }

    /// Wires the egress-gateway routing table for one plan.
    fn register_handoffs(&mut self, plan: &ChainPlan) -> Result<(), EscapeError> {
        let port = match self.ports.get(&plan.chain) {
            Some(&p) => p,
            None => {
                let p = self.next_port;
                self.next_port += 1;
                self.ports.insert(plan.chain.clone(), p);
                p
            }
        };
        for w in plan.legs.windows(2) {
            let (leg, next) = (&w[0], &w[1]);
            let gid = leg.egress_gw.expect("non-final leg has an egress gateway");
            let g = &self.global.partition().gateways[gid];
            let di = self.domain_index(&leg.domain);
            let egress_sap = g.sap_in(&leg.domain).unwrap().to_string();
            let src_sap = &leg.chain.hops[0];
            let src_ip = self.parts[di]
                .esc
                .infra
                .sap_addr
                .get(src_sap)
                .ok_or_else(|| EscapeError::NotFound(format!("sap {src_sap}")))?
                .1;
            let handoff = Handoff {
                chain: plan.chain.clone(),
                to_domain: self.domain_index(&next.domain),
                from_sap: g.sap_in(&next.domain).unwrap().to_string(),
                to_sap: next.chain.hops.last().unwrap().clone(),
                port,
            };
            let key = (di, egress_sap.clone(), src_ip, port);
            if let Some(prev) = self.handoffs.get(&key) {
                if prev.chain != handoff.chain {
                    return Err(EscapeError::Invalid(format!(
                        "ambiguous handoff at {egress_sap}: chains {:?} and {:?} share \
                         source {src_sap} and the same gateway",
                        prev.chain, handoff.chain
                    )));
                }
            }
            self.handoffs.insert(key, handoff);
        }
        Ok(())
    }

    /// Removes a stitched chain everywhere: legs, handoffs, global CPU.
    pub fn teardown(&mut self, chain: &str) -> Result<(), EscapeError> {
        let plan = self
            .plans
            .remove(chain)
            .ok_or_else(|| EscapeError::NotFound(format!("chain {chain}")))?;
        for leg in &plan.legs {
            let di = self.domain_index(&leg.domain);
            self.parts[di].esc.teardown(chain)?;
        }
        self.handoffs.retain(|_, h| h.chain != chain);
        self.global.release(chain);
        self.graphs.remove(chain);
        self.note(format!("chain {chain} torn down"));
        self.journal_event(
            Severity::Info,
            JournalKind::Teardown,
            format!("chain {chain}"),
        );
        self.align();
        Ok(())
    }

    /// Starts paced UDP traffic on a stitched chain: frames enter at the
    /// chain's real source SAP and ride the first leg; gateway handoffs
    /// carry them onward with their birth timestamps intact.
    pub fn start_chain_udp(
        &mut self,
        chain: &str,
        frame_len: usize,
        interval_us: u64,
        count: u64,
    ) -> Result<(), EscapeError> {
        let plan = self
            .plans
            .get(chain)
            .ok_or_else(|| EscapeError::NotFound(format!("chain {chain}")))?;
        let leg = &plan.legs[0];
        let (from, to) = (
            leg.chain.hops[0].clone(),
            leg.chain.hops.last().unwrap().clone(),
        );
        let di = self.domain_index(&leg.domain);
        let port = *self
            .ports
            .get(chain)
            .ok_or_else(|| EscapeError::NotFound(format!("port for chain {chain}")))?;
        self.parts[di]
            .esc
            .start_udp_with_sport(&from, &to, frame_len, interval_us, count, port)
    }

    // ---------------- the epoch loop --------------------------------

    /// Advances every domain by `ms` virtual milliseconds in epoch
    /// lockstep, exchanging gateway traffic and healing faults at every
    /// barrier.
    pub fn run_for_ms(&mut self, ms: u64) {
        let deadline = self.align() + Time::from_ms(ms);
        while self.clock < deadline {
            let end = (self.clock + EPOCH).min(deadline);
            self.advance_all(end);
            self.clock = end;
            self.exchange(end);
            self.heal_epoch();
            // Recovery RPCs may have pushed some domains past the
            // barrier; bring the rest level before the next epoch.
            self.align();
        }
    }

    /// Marches every domain simulator to `end` — sequentially, or on up
    /// to `workers` threads over disjoint simulator chunks. Simulators
    /// share nothing between barriers, so the thread layout cannot
    /// change any result.
    fn advance_all(&mut self, end: Time) {
        let workers = self.workers.min(self.parts.len()).max(1);
        if workers == 1 {
            for rt in &mut self.parts {
                rt.esc.run_until(end);
            }
        } else {
            let chunk = self.parts.len().div_ceil(workers);
            std::thread::scope(|s| {
                for chunk in self.parts.chunks_mut(chunk) {
                    s.spawn(move || {
                        for rt in chunk {
                            rt.esc.run_until(end);
                        }
                    });
                }
            });
        }
    }

    /// Levels all domain clocks at the maximum and adopts it as the
    /// coordinator clock (sequential — used outside the parallel phase).
    fn align(&mut self) -> Time {
        let m = self
            .parts
            .iter()
            .map(|rt| rt.esc.now())
            .max()
            .unwrap_or(Time::ZERO)
            .max(self.clock);
        for rt in &mut self.parts {
            rt.esc.run_until(m);
        }
        self.clock = m;
        m
    }

    /// Drains every gateway SAP and re-originates each payload on its
    /// next leg, exactly one [`EPOCH`] after it reached the gateway.
    /// Runs on the coordinator thread in deterministic order.
    fn exchange(&mut self, end: Time) {
        let mut arrivals = Vec::new();
        for (di, sap) in self.gw_saps.clone() {
            let rxs = self.parts[di]
                .esc
                .drain_gateway_rx(&sap)
                .unwrap_or_default();
            for rx in rxs {
                arrivals.push((di, sap.clone(), rx));
            }
        }
        // Stable: per-SAP drains are already in arrival order.
        arrivals.sort_by_key(|(di, _, rx)| (rx.at, *di));
        for (di, sap, rx) in arrivals {
            let key = (di, sap.clone(), rx.src, rx.src_port);
            let Some(h) = self.handoffs.get(&key).cloned() else {
                let src = rx.src;
                self.note(format!("gateway {sap}: unroutable payload from {src}"));
                continue;
            };
            let at = (rx.at + EPOCH).max(end);
            let from_domain = self.parts[di].name.clone();
            if self.parts[h.to_domain]
                .esc
                .gateway_send(&h.from_sap, &h.to_sap, rx.payload, rx.born_ns, at, h.port)
                .is_ok()
            {
                self.registry
                    .counter_with("domains.handoffs", &[("from", from_domain.as_str())])
                    .inc();
            }
        }
    }

    /// Per-epoch healing: local recovery first in every domain, then a
    /// global sweep for chains whose legs the local layer had to abandon
    /// — those escalate to a full re-stitch.
    fn heal_epoch(&mut self) {
        for rt in &mut self.parts {
            rt.esc.heal_now();
        }
        let mut broken: Vec<String> = Vec::new();
        for (chain, plan) in &self.plans {
            let lost = plan.legs.iter().any(|leg| {
                let di = self.global.partition().domain_index(&leg.domain).unwrap();
                self.parts[di].esc.deployed(chain).is_none()
            });
            if lost {
                broken.push(chain.clone());
            }
        }
        broken.sort();
        for chain in broken {
            self.note(format!(
                "chain {chain}: local recovery exhausted, escalating to global re-stitch"
            ));
            self.journal_event(
                Severity::Warn,
                JournalKind::HealEscalated,
                format!("chain {chain}: local recovery exhausted"),
            );
            self.restitch(&chain);
        }
    }

    /// Global re-stitch of one chain: tear down surviving legs, re-plan
    /// over the current domain graph (failed gateways excluded, shifted
    /// aggregate capacity), redeploy. Abandons the chain if the global
    /// layer cannot place it either.
    fn restitch(&mut self, chain: &str) {
        let Some(old) = self.plans.remove(chain) else {
            return;
        };
        let Some(sg) = self.graphs.get(chain).cloned() else {
            return;
        };
        for leg in &old.legs {
            let di = self.domain_index(&leg.domain);
            let _ = self.parts[di].esc.teardown(chain);
        }
        self.handoffs.retain(|_, h| h.chain != chain);
        self.global.release(chain);
        let Some(c) = sg.chains.iter().find(|c| c.name == chain) else {
            return;
        };
        let outcome = self
            .global
            .plan_chain(&sg, c)
            .map_err(|e| EscapeError::Invalid(e.to_string()))
            .and_then(|plan| {
                self.deploy_plan(&sg, &plan)?;
                Ok(plan)
            });
        match outcome {
            Ok(plan) => {
                self.global.commit(&sg, &plan);
                self.registry.counter("domains.restitches").inc();
                self.note(format!(
                    "chain {chain} re-stitched across {:?}",
                    plan.domain_path
                ));
                self.journal_event(
                    Severity::Info,
                    JournalKind::ChainRestitched,
                    format!("chain {chain} across {:?}", plan.domain_path),
                );
                self.plans.insert(chain.to_string(), plan);
            }
            Err(e) => {
                self.registry.counter("domains.restitch_failures").inc();
                self.graphs.remove(chain);
                self.note(format!("chain {chain} abandoned: {e}"));
                self.journal_event(
                    Severity::Error,
                    JournalKind::ChainAbandoned,
                    format!("chain {chain}: {e}"),
                );
            }
        }
        self.align();
    }

    // ---------------- faults ----------------------------------------

    /// Fails an inter-domain gateway: both half-links go down in their
    /// simulators, the global orchestrator excludes the gateway, and
    /// every chain riding it is re-stitched over the remaining graph.
    pub fn fail_gateway(&mut self, id: usize) -> Result<(), EscapeError> {
        let g = self
            .global
            .partition()
            .gateways
            .get(id)
            .cloned()
            .ok_or_else(|| EscapeError::NotFound(format!("gateway {id}")))?;
        self.global.mark_gateway_failed(id);
        self.set_gateway_links(&g.a_domain, &g.a_sap, &g.a_switch, LinkState::Down);
        self.set_gateway_links(&g.b_domain, &g.b_sap, &g.b_switch, LinkState::Down);
        self.note(format!(
            "gateway {id} ({}--{}) down",
            g.a_switch, g.b_switch
        ));
        self.journal_event(
            Severity::Warn,
            JournalKind::GatewayDown,
            format!("gateway {id} ({}--{})", g.a_switch, g.b_switch),
        );
        let mut affected: Vec<String> = self
            .plans
            .iter()
            .filter(|(_, p)| p.gateways().contains(&id))
            .map(|(c, _)| c.clone())
            .collect();
        affected.sort();
        for chain in affected {
            self.restitch(&chain);
        }
        Ok(())
    }

    /// Brings a failed gateway back; future plans may use it again
    /// (already re-stitched chains stay on their new paths).
    pub fn restore_gateway(&mut self, id: usize) -> Result<(), EscapeError> {
        let g = self
            .global
            .partition()
            .gateways
            .get(id)
            .cloned()
            .ok_or_else(|| EscapeError::NotFound(format!("gateway {id}")))?;
        self.global.mark_gateway_recovered(id);
        self.set_gateway_links(&g.a_domain, &g.a_sap, &g.a_switch, LinkState::Up);
        self.set_gateway_links(&g.b_domain, &g.b_sap, &g.b_switch, LinkState::Up);
        self.note(format!(
            "gateway {id} ({}--{}) restored",
            g.a_switch, g.b_switch
        ));
        self.journal_event(
            Severity::Info,
            JournalKind::GatewayRestored,
            format!("gateway {id} ({}--{})", g.a_switch, g.b_switch),
        );
        Ok(())
    }

    fn set_gateway_links(&mut self, domain: &str, sap: &str, switch: &str, state: LinkState) {
        let di = self.domain_index(domain);
        let esc = &mut self.parts[di].esc;
        for l in esc.sim.find_links(sap, switch) {
            esc.sim.set_link_state(l, state);
        }
    }

    // ---------------- observation -----------------------------------

    /// Receive-side statistics of any SAP in any domain.
    pub fn sap_stats(&self, sap: &str) -> Result<escape_netem::HostStats, EscapeError> {
        for rt in &self.parts {
            if rt.esc.infra.node(sap).is_some() {
                return rt.esc.sap_stats(sap);
            }
        }
        Err(EscapeError::NotFound(format!("sap {sap}")))
    }

    /// Merged metric snapshot: every domain's metrics labelled with a
    /// `domain` dimension, plus the coordinator's own (labelled
    /// `domain="global"`), re-sorted into one deterministic snapshot.
    pub fn metrics(&self) -> Snapshot {
        let mut entries = Vec::new();
        for rt in &self.parts {
            for mut e in rt.esc.metrics().entries {
                e.labels.push(("domain".to_string(), rt.name.clone()));
                e.labels.sort();
                entries.push(e);
            }
        }
        for mut e in self.registry.snapshot().entries {
            e.labels.push(("domain".to_string(), "global".to_string()));
            e.labels.sort();
            entries.push(e);
        }
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { entries }
    }

    /// Merged, virtual-clock-ordered event trace across the coordinator
    /// and every domain. Byte-identical across same-seed runs and any
    /// worker count.
    pub fn event_trace(&self) -> Vec<String> {
        let mut streams = Vec::with_capacity(self.parts.len() + 1);
        streams.push((
            "global".to_string(),
            self.events
                .iter()
                .map(|(ns, m)| format!("[{ns}ns] {m}"))
                .collect(),
        ));
        for rt in &self.parts {
            streams.push((rt.name.clone(), rt.esc.event_trace().to_vec()));
        }
        merge_event_logs(&streams)
    }

    /// Turns on the flight recorder in every domain.
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        for rt in &mut self.parts {
            rt.esc.enable_flight_recorder(cap);
        }
    }

    /// Merged flight-recorder trace: every domain's packet journeys,
    /// each line tagged `[{domain}]`, ordered by (journey start,
    /// domain index, packet id). The cross-worker determinism witness.
    pub fn merged_flight_trace(&self) -> String {
        let mut blocks: Vec<(u64, usize, u64, String)> = Vec::new();
        for (di, rt) in self.parts.iter().enumerate() {
            let fr = rt.esc.flight_record();
            for j in &fr.journeys {
                let tagged: String = fr
                    .timeline(j)
                    .lines()
                    .map(|l| format!("[{}] {l}\n", rt.name))
                    .collect();
                blocks.push((j.started_at().as_ns(), di, j.packet_id, tagged));
            }
        }
        blocks.sort_by_key(|a| (a.0, a.1, a.2));
        blocks.into_iter().map(|(_, _, _, t)| t).collect()
    }

    /// Deterministic rendering of every stitched chain's embedding:
    /// domain path, per-leg hops, placements and path delay. Two runs
    /// with the same seed must produce identical output.
    pub fn embedding_trace(&self) -> String {
        let mut chains: Vec<&String> = self.plans.keys().collect();
        chains.sort();
        let mut out = String::new();
        for c in chains {
            let plan = &self.plans[c];
            let _ = writeln!(
                out,
                "chain {c}: path {:?} inter-domain {}us",
                plan.domain_path, plan.inter_domain_us
            );
            for leg in &plan.legs {
                let di = self.global.partition().domain_index(&leg.domain).unwrap();
                if let Some(dc) = self.parts[di].esc.deployed(c) {
                    let _ = writeln!(
                        out,
                        "  leg {}: hops {:?} placement {:?} delay {}us",
                        leg.domain, leg.chain.hops, dc.mapping.placement, dc.mapping.total_delay_us
                    );
                }
            }
        }
        out
    }
}

/// The single-domain service graph a local orchestrator embeds for one
/// leg: the leg chain plus exactly the SAPs and VNFs it references.
fn leg_service_graph(sg: &ServiceGraph, leg: &escape_domain::ChainLeg) -> ServiceGraph {
    let mut saps = vec![leg.chain.hops[0].clone()];
    let exit = leg.chain.hops.last().unwrap().clone();
    if exit != saps[0] {
        saps.push(exit);
    }
    ServiceGraph {
        saps,
        vnfs: leg
            .vnfs
            .iter()
            .filter_map(|v| sg.vnf_named(v).cloned())
            .collect(),
        chains: vec![leg.chain.clone()],
    }
}
