//! Clicky stand-in: formatting live VNF state for humans.
//!
//! The demo's step (5) is "monitor the VNFs with Clicky". Our equivalent
//! is [`crate::Escape::monitor_vnf`], which fetches handler values over
//! NETCONF; this module renders them.

/// Renders (handler, value) pairs as an aligned text table.
pub fn format_handler_table(title: &str, handlers: &[(String, String)]) -> String {
    let width = handlers
        .iter()
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut out = format!("── {title} ──\n");
    for (k, v) in handlers {
        out.push_str(&format!("  {k:<width$}  {v}\n"));
    }
    if handlers.is_empty() {
        out.push_str("  (no handlers)\n");
    }
    out
}

/// Picks the headline counters (packet counts and rates) out of a full
/// handler dump — the compact live view.
pub fn headline(handlers: &[(String, String)]) -> Vec<(&str, &str)> {
    handlers
        .iter()
        .filter(|(k, _)| {
            k == "status"
                || k.ends_with(".count")
                || k.ends_with(".rate")
                || k.ends_with(".dropped")
                || k.ends_with(".passed")
                || k.ends_with(".matches")
        })
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, String)> {
        vec![
            ("status".into(), "running".into()),
            ("in_cnt.count".into(), "42".into()),
            ("in_cnt.byte_count".into(), "2688".into()),
            ("in_cnt.rate".into(), "100.0".into()),
            ("q.length".into(), "3".into()),
        ]
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let t = format_handler_table("fw @ c0", &sample());
        assert!(t.contains("fw @ c0"));
        assert!(t.contains("in_cnt.count"));
        assert!(t.contains("42"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn empty_table_says_so() {
        assert!(format_handler_table("x", &[]).contains("no handlers"));
    }

    #[test]
    fn headline_filters_to_key_counters() {
        let handlers = sample();
        let h = headline(&handlers);
        let keys: Vec<&str> = h.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&"status"));
        assert!(keys.contains(&"in_cnt.count"));
        assert!(keys.contains(&"in_cnt.rate"));
        assert!(!keys.contains(&"in_cnt.byte_count"));
        assert!(!keys.contains(&"q.length"));
    }
}
