//! Clicky stand-in: formatting live VNF state for humans.
//!
//! The demo's step (5) is "monitor the VNFs with Clicky". Our equivalent
//! is [`crate::Escape::monitor_vnf`], which fetches handler values over
//! NETCONF; this module renders them.

/// Renders (handler, value) pairs as an aligned text table.
pub fn format_handler_table(title: &str, handlers: &[(String, String)]) -> String {
    let width = handlers
        .iter()
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut out = format!("── {title} ──\n");
    for (k, v) in handlers {
        out.push_str(&format!("  {k:<width$}  {v}\n"));
    }
    if handlers.is_empty() {
        out.push_str("  (no handlers)\n");
    }
    out
}

/// Picks the headline counters (packet counts and rates) out of a full
/// handler dump — the compact live view.
pub fn headline(handlers: &[(String, String)]) -> Vec<(&str, &str)> {
    handlers
        .iter()
        .filter(|(k, _)| {
            k == "status"
                || k.ends_with(".count")
                || k.ends_with(".rate")
                || k.ends_with(".dropped")
                || k.ends_with(".passed")
                || k.ends_with(".matches")
        })
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, String)> {
        vec![
            ("status".into(), "running".into()),
            ("in_cnt.count".into(), "42".into()),
            ("in_cnt.byte_count".into(), "2688".into()),
            ("in_cnt.rate".into(), "100.0".into()),
            ("q.length".into(), "3".into()),
        ]
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let t = format_handler_table("fw @ c0", &sample());
        assert!(t.contains("fw @ c0"));
        assert!(t.contains("in_cnt.count"));
        assert!(t.contains("42"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn empty_table_says_so() {
        assert!(format_handler_table("x", &[]).contains("no handlers"));
    }

    #[test]
    fn headline_filters_to_key_counters() {
        let handlers = sample();
        let h = headline(&handlers);
        let keys: Vec<&str> = h.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&"status"));
        assert!(keys.contains(&"in_cnt.count"));
        assert!(keys.contains(&"in_cnt.rate"));
        assert!(!keys.contains(&"in_cnt.byte_count"));
        assert!(!keys.contains(&"q.length"));
    }

    #[test]
    fn table_columns_align_on_the_longest_handler_name() {
        let t = format_handler_table("fw @ c0", &sample());
        // Every value column starts at the same offset: name padded to the
        // widest key ("in_cnt.byte_count", 17 chars) plus the two-space
        // gutters.
        let value_col = 2 + "in_cnt.byte_count".len() + 2;
        for line in t.lines().skip(1) {
            assert_eq!(
                &line[value_col - 2..value_col],
                "  ",
                "misaligned: {line:?}"
            );
            assert_ne!(&line[value_col..=value_col], " ", "misaligned: {line:?}");
        }
    }

    #[test]
    fn table_enforces_minimum_name_width() {
        // Keys shorter than the 8-column floor still get padded to it.
        let t = format_handler_table("t", &[("a".into(), "1".into())]);
        let line = t.lines().nth(1).unwrap();
        assert_eq!(line, format!("  {:<8}  1", "a"));
    }

    #[test]
    fn headline_keeps_firewall_and_drop_counters() {
        let handlers: Vec<(String, String)> = vec![
            ("fw.matches".into(), "7".into()),
            ("fw.passed".into(), "30".into()),
            ("q.dropped".into(), "2".into()),
            ("fw.rules".into(), "4".into()),
        ];
        let keys: Vec<&str> = headline(&handlers).iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, ["fw.matches", "fw.passed", "q.dropped"]);
    }

    #[test]
    fn headline_of_empty_dump_is_empty() {
        assert!(headline(&[]).is_empty());
    }
}
