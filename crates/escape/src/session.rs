//! The session layer: one live environment plus the operations driven
//! against it.
//!
//! [`Session`] is the ownership seam between the control plane and the
//! data plane. A one-shot CLI run builds a session, drives it and exits;
//! the `escaped` daemon builds the same session once and keeps it alive
//! behind a unix-socket command queue. Everything both callers need —
//! building by algorithm name, deploying from DSL or JSON text, advancing
//! virtual time with self-healing, metrics exposition — lives here so the
//! two paths cannot drift apart.

use crate::env::{AdmissionConfig, DeploymentReport, Escape};
use crate::error::EscapeError;
use crate::flight::SlaVerdict;
use escape_json::Value;
use escape_netem::FaultPlan;
use escape_orch::{
    Backtracking, BestFitCpu, GreedyFirstFit, MappingAlgorithm, NearestNeighbor, SimulatedAnnealing,
};
use escape_pox::SteeringMode;
use escape_sg::{parse_service_graph, parse_topology, ResourceTopology, ServiceGraph};
use escape_telemetry::SamplerConfig;

/// Text format of a topology / service-graph / fault-plan document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// The line-oriented DSL (`.topo` / `.sg` files).
    Dsl,
    /// JSON documents.
    Json,
}

impl InputFormat {
    /// Picks the format a file most likely holds from its extension.
    pub fn from_path(path: &str) -> InputFormat {
        if path.rsplit('.').next() == Some("json") {
            InputFormat::Json
        } else {
            InputFormat::Dsl
        }
    }
}

/// Resolves a mapping algorithm by its CLI name.
pub fn algorithm_by_name(name: &str) -> Result<Box<dyn MappingAlgorithm>, String> {
    Ok(match name {
        "first_fit" => Box::new(GreedyFirstFit),
        "best_fit" => Box::new(BestFitCpu),
        "nearest" => Box::new(NearestNeighbor),
        "backtrack" => Box::new(Backtracking::default()),
        "anneal" => Box::new(SimulatedAnnealing::default()),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

/// Parses topology text in either format.
pub fn parse_topology_text(src: &str, format: InputFormat) -> Result<ResourceTopology, String> {
    match format {
        InputFormat::Json => ResourceTopology::from_json(src),
        InputFormat::Dsl => parse_topology(src).map_err(|e| e.to_string()),
    }
}

/// Parses service-graph text in either format.
pub fn parse_service_graph_text(src: &str, format: InputFormat) -> Result<ServiceGraph, String> {
    match format {
        InputFormat::Json => ServiceGraph::from_json(src),
        InputFormat::Dsl => parse_service_graph(src).map_err(|e| e.to_string()),
    }
}

/// The built-in demo substrate used when no topology file is given.
pub fn demo_topology() -> ResourceTopology {
    escape_sg::topo::builders::linear(3, 4.0)
}

/// How to build a session: everything [`Session::new`] needs besides the
/// topology itself.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Mapping algorithm, by CLI name ([`algorithm_by_name`]).
    pub algorithm: String,
    pub steering: SteeringMode,
    pub seed: u64,
    /// Admission watermarks; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Flight-recorder trace-ring capacity; `None` leaves it off.
    pub flight_recorder: Option<usize>,
    /// Time-series sampler (period + retention); `None` leaves it off.
    pub sampler: Option<SamplerConfig>,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            algorithm: "nearest".into(),
            steering: SteeringMode::Proactive,
            seed: 1,
            admission: None,
            flight_recorder: None,
            sampler: None,
        }
    }
}

/// One live chain as the control plane reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    pub name: String,
    pub cookie: u64,
    pub rules: u64,
    /// `(vnf_name, container)` in placement order.
    pub vnfs: Vec<(String, String)>,
}

/// Point-in-time session state: everything `status` needs, all of it
/// derived from virtual time and deterministic counters so same-seed
/// runs render byte-identical status documents.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatus {
    /// Current virtual time (ns).
    pub now_ns: u64,
    pub chains: Vec<ChainSummary>,
    /// Deploys parked on the admission queue.
    pub pending_admissions: u64,
    /// Compute utilization (0..=1).
    pub utilization: f64,
    pub deploys: u64,
    pub deploy_failures: u64,
    pub teardowns: u64,
    pub recoveries: u64,
    pub recovery_failures: u64,
    pub rollbacks: u64,
    pub admission_rejected: u64,
    /// Lines in the fault/recovery event trace.
    pub events: u64,
}

/// A live environment plus its build configuration.
pub struct Session {
    esc: Escape,
    cfg: SessionConfig,
}

impl Session {
    /// Builds the environment over `topo` per `cfg`.
    pub fn new(topo: ResourceTopology, cfg: SessionConfig) -> Result<Session, EscapeError> {
        let algorithm = algorithm_by_name(&cfg.algorithm).map_err(EscapeError::Invalid)?;
        let mut esc = Escape::build(topo, algorithm, cfg.steering, cfg.seed)?;
        if let Some(admission) = cfg.admission {
            esc.set_admission(admission);
        }
        if let Some(cap) = cfg.flight_recorder {
            esc.enable_flight_recorder(cap);
        }
        if let Some(sampler) = cfg.sampler {
            esc.enable_sampler(sampler);
        }
        Ok(Session { esc, cfg })
    }

    /// The configuration the session was built with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The underlying environment.
    pub fn escape(&self) -> &Escape {
        &self.esc
    }

    /// Mutable access to the underlying environment.
    pub fn escape_mut(&mut self) -> &mut Escape {
        &mut self.esc
    }

    /// Deploys a service graph (transactional, admission-gated).
    pub fn deploy(&mut self, sg: &ServiceGraph) -> Result<DeploymentReport, EscapeError> {
        self.esc.deploy(sg)
    }

    /// Deploys from service-graph text in either format.
    pub fn deploy_text(
        &mut self,
        src: &str,
        format: InputFormat,
    ) -> Result<DeploymentReport, EscapeError> {
        let sg = parse_service_graph_text(src, format).map_err(EscapeError::Invalid)?;
        self.deploy(&sg)
    }

    /// Tears one chain down (all-or-nothing; see [`Escape::teardown`]).
    pub fn teardown(&mut self, chain: &str) -> Result<(), EscapeError> {
        self.esc.teardown(chain)
    }

    /// Tears every live chain down in name order. Returns the chains
    /// that could not be dismantled (stalled agents) — they stay live
    /// and retryable.
    pub fn teardown_all(&mut self) -> Vec<(String, EscapeError)> {
        let mut failed = Vec::new();
        for chain in self.esc.deployed_chains() {
            if let Err(e) = self.esc.teardown(&chain) {
                failed.push((chain, e));
            }
        }
        failed
    }

    /// Advances virtual time by `ms` milliseconds with self-healing:
    /// injected faults are recovered and queued admissions pumped as
    /// their moments arrive.
    pub fn run_for_ms(&mut self, ms: u64) {
        self.esc.run_with_recovery(ms);
    }

    /// Parses and arms a fault plan (JSON). Returns the event count.
    pub fn load_fault_plan_text(&mut self, src: &str) -> Result<usize, EscapeError> {
        let plan = FaultPlan::from_json(src).map_err(EscapeError::Invalid)?;
        let events = plan.events.len();
        self.esc.load_fault_plan(&plan)?;
        Ok(events)
    }

    /// Runs one healing pass right now; returns the total recovery and
    /// recovery-failure counts afterwards.
    pub fn heal_now(&mut self) -> (u64, u64) {
        self.esc.heal_now();
        let m = self.esc.metrics();
        (
            m.counter_total("escape.recoveries"),
            m.counter_total("escape.recovery_failures"),
        )
    }

    /// Starts a paced UDP stream between two SAPs.
    pub fn start_udp(
        &mut self,
        from: &str,
        to: &str,
        frame_len: usize,
        interval_us: u64,
        count: u64,
    ) -> Result<(), EscapeError> {
        self.esc.start_udp(from, to, frame_len, interval_us, count)
    }

    /// Per-chain SLA verdicts from the flight recorder.
    pub fn sla_verdicts(&self) -> Vec<SlaVerdict> {
        self.esc.sla_verdicts()
    }

    /// Delta-encoded sampler series as a JSON document (empty document
    /// when no sampler was configured).
    pub fn series_json(&self) -> String {
        self.esc.sampler_series_json()
    }

    /// The retained event journal as JSON lines.
    pub fn journal_json_lines(&self) -> String {
        self.esc.journal_json_lines()
    }

    /// Renders the telemetry registry. This is the *single* exposition
    /// code path: `escape metrics`, `escape ctl metrics` and the daemon's
    /// shutdown flush all call it, so one-shot and daemon output cannot
    /// drift.
    pub fn metrics_exposition(&self, json: bool) -> String {
        if json {
            let doc = Value::obj()
                .set("metrics", self.esc.metrics().json_value())
                .set("trace", self.esc.tracer().json_value());
            let mut s = doc.to_string_pretty();
            s.push('\n');
            s
        } else {
            self.esc.metrics().prometheus()
        }
    }

    /// Snapshot of the session for `status`.
    pub fn status(&self) -> SessionStatus {
        let m = self.esc.metrics();
        let chains = self
            .esc
            .deployed_chains()
            .into_iter()
            .map(|name| {
                let dc = self.esc.deployed(&name).expect("listed chain is live");
                ChainSummary {
                    name,
                    cookie: dc.cookie,
                    rules: dc.rules as u64,
                    vnfs: dc
                        .vnfs
                        .iter()
                        .map(|v| (v.vnf_name.clone(), v.container.clone()))
                        .collect(),
                }
            })
            .collect();
        SessionStatus {
            now_ns: self.esc.now().as_ns(),
            chains,
            pending_admissions: self.esc.pending_admissions() as u64,
            utilization: self.esc.orchestrator().cpu_utilization(),
            deploys: m.counter_total("escape.deploys"),
            deploy_failures: m.counter_total("escape.deploy_failures"),
            teardowns: m.counter_total("escape.teardowns"),
            recoveries: m.counter_total("escape.recoveries"),
            recovery_failures: m.counter_total("escape.recovery_failures"),
            rollbacks: m.counter_total("escape.rollbacks"),
            admission_rejected: m.counter_total("escape.admission_rejected"),
            events: self.esc.event_trace().len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sg() -> ServiceGraph {
        ServiceGraph::new()
            .sap("sap0")
            .sap("sap1")
            .vnf("mon", "monitor", 0.5, 64)
            .chain("demo", &["sap0", "mon", "sap1"], 50.0, None)
    }

    #[test]
    fn session_lifecycle_and_status() {
        let mut s = Session::new(demo_topology(), SessionConfig::default()).unwrap();
        assert_eq!(s.status().chains.len(), 0);
        s.deploy(&demo_sg()).unwrap();
        s.start_udp("sap0", "sap1", 64, 100, 10).unwrap();
        s.run_for_ms(20);
        let st = s.status();
        assert_eq!(st.chains.len(), 1);
        assert_eq!(st.chains[0].name, "demo");
        assert_eq!(st.deploys, 1);
        assert!(st.utilization > 0.0);
        s.teardown("demo").unwrap();
        assert_eq!(s.status().chains.len(), 0);
        assert_eq!(s.status().teardowns, 1);
    }

    #[test]
    fn teardown_all_drains_every_chain() {
        let mut s = Session::new(demo_topology(), SessionConfig::default()).unwrap();
        s.deploy(&demo_sg()).unwrap();
        assert!(s.teardown_all().is_empty());
        assert!(s.escape().deployed_chains().is_empty());
    }

    #[test]
    fn exposition_matches_env_exposition() {
        let mut s = Session::new(demo_topology(), SessionConfig::default()).unwrap();
        s.deploy(&demo_sg()).unwrap();
        s.run_for_ms(5);
        assert_eq!(
            s.metrics_exposition(false),
            s.escape().metrics().prometheus()
        );
        assert!(s.metrics_exposition(true).starts_with('{'));
    }

    #[test]
    fn unknown_algorithm_is_typed() {
        let err = match Session::new(
            demo_topology(),
            SessionConfig {
                algorithm: "magic".into(),
                ..SessionConfig::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("unknown algorithm accepted"),
        };
        assert!(matches!(err, EscapeError::Invalid(_)), "{err}");
    }

    #[test]
    fn input_format_by_extension() {
        assert_eq!(InputFormat::from_path("a/b/sg.json"), InputFormat::Json);
        assert_eq!(InputFormat::from_path("demo.sg"), InputFormat::Dsl);
        assert_eq!(InputFormat::from_path("topofile"), InputFormat::Dsl);
    }
}
