//! The ESCAPE environment: build, deploy, steer, generate traffic,
//! monitor.
//!
//! [`Escape`] owns the emulation ([`Sim`]), the infrastructure addressing
//! ([`Infra`]), the orchestrator and one NETCONF client session per VNF
//! container. Deployment is driven the way the real ESCAPE orchestrator
//! drives its agents: every management action is a `vnf_starter` RPC
//! travelling the emulated control network (so chain setup latency is
//! measured in *virtual* time), and steering rules are handed to the POX
//! traffic-steering app.

use crate::container::{VnfContainer, VnfStatus};
use crate::error::{AdmissionVerdict, DeployPhase, EscapeError, RollbackReport, RollbackStep};
use crate::flight::{self, FlightRecord, NodeKind, SlaVerdict};
use crate::infra::{Infra, ManagerRelay};
use crate::journal::{Journal, JournalKind, Severity, DEFAULT_JOURNAL_CAP};
use bytes::Bytes;
use escape_netconf::client::{switch_port_of, vnf_id_of};
use escape_netconf::message::ReplyBody;
use escape_netconf::{Client, ClientEvent, RetryPolicy, RpcReply};
use escape_netem::{
    CtrlId, FaultInjector, FaultKind, FaultPlan, FaultRecord, GatewayRx, Host, HostStats, NodeId,
    Sim, Time,
};
use escape_openflow::{Action, Match, Switch};
use escape_orch::{ChainMapping, MappingAlgorithm, Orchestrator};
use escape_packet::PacketBuilder;
use escape_pox::{Controller, SteeringMode, SteeringRule, TrafficSteering};
use escape_sg::{ResourceTopology, ServiceGraph};
use escape_telemetry::{Counter, Histogram, Registry, Sampler, SamplerConfig, Snapshot, Tracer};
use std::collections::{HashMap, HashSet};

/// Virtual-time budget for a single NETCONF round trip before we declare
/// the agent dead.
const RPC_TIMEOUT: Time = Time::from_ms(100);

/// Capacity watermarks for the admission controller. Disabled by default;
/// enable with [`Escape::set_admission`].
///
/// Compute utilization below `soft_watermark` admits deploys immediately.
/// Between the watermarks, requests park on a bounded queue and retry on
/// a seeded deterministic backoff schedule as capacity frees up. At or
/// above `hard_watermark` requests are rejected outright with a typed
/// [`AdmissionVerdict`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Utilization at which deploys start queueing (0..=1).
    pub soft_watermark: f64,
    /// Utilization at which deploys are rejected outright (0..=1).
    pub hard_watermark: f64,
    /// Most requests the queue holds before new arrivals bounce.
    pub max_queue: usize,
    /// Retry budget per queued request.
    pub max_retries: u32,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            soft_watermark: 0.85,
            hard_watermark: 0.95,
            max_queue: 8,
            max_retries: 8,
        }
    }
}

/// A deploy parked by the admission controller, waiting for utilization
/// to drop below the soft watermark.
struct QueuedDeploy {
    sg: ServiceGraph,
    attempts: u32,
    next_due: Time,
}

/// A VNF the prepare phase has (partially) brought up: enough state to
/// undo exactly what was done.
struct PreparedVnf {
    dv: DeployedVnf,
    /// `startVNF` completed — rollback must stop it.
    started: bool,
}

/// Per-chain transaction log: every completed prepare step, in order, so
/// rollback can replay them in reverse.
struct ChainTxn {
    mapping: ChainMapping,
    cookie: u64,
    vnfs: Vec<PreparedVnf>,
    /// Steering rules compiled and staged (shadow set).
    rules: usize,
    staged: bool,
    /// Staged rules were committed to the live queue.
    committed: bool,
}

impl ChainTxn {
    fn new(mapping: ChainMapping, cookie: u64) -> ChainTxn {
        ChainTxn {
            mapping,
            cookie,
            vnfs: Vec::new(),
            rules: 0,
            staged: false,
            committed: false,
        }
    }

    fn into_deployed(self) -> DeployedChain {
        DeployedChain {
            mapping: self.mapping,
            vnfs: self.vnfs.into_iter().map(|p| p.dv).collect(),
            cookie: self.cookie,
            rules: self.rules,
        }
    }

    fn as_deployed(&self) -> DeployedChain {
        DeployedChain {
            mapping: self.mapping.clone(),
            vnfs: self.vnfs.iter().map(|p| p.dv.clone()).collect(),
            cookie: self.cookie,
            rules: self.rules,
        }
    }
}

/// One deployed VNF instance.
#[derive(Debug, Clone)]
pub struct DeployedVnf {
    pub vnf_name: String,
    pub vnf_type: String,
    pub container: String,
    pub vnf_id: String,
    /// VNF device -> switch port it is attached to (as reported by
    /// `connectVNF`).
    pub switch_ports: HashMap<u16, u16>,
}

/// A deployed chain: mapping plus live instance handles.
#[derive(Debug, Clone)]
pub struct DeployedChain {
    pub mapping: ChainMapping,
    pub vnfs: Vec<DeployedVnf>,
    pub cookie: u64,
    pub rules: usize,
}

/// What `deploy` reports per service graph — the data behind experiment
/// E1 (chain setup latency, by phase).
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    pub chains: Vec<DeployedChain>,
    /// Virtual time when deployment started.
    pub started_at: Time,
    /// Virtual time after mapping (instantaneous in virtual time).
    pub mapped_at: Time,
    /// Virtual time after all NETCONF RPCs completed.
    pub vnfs_ready_at: Time,
    /// Virtual time after steering rules were flushed to switches.
    pub steered_at: Time,
}

impl DeploymentReport {
    /// Total virtual setup latency.
    pub fn total(&self) -> Time {
        Time::from_ns(self.steered_at.since(self.started_at))
    }

    /// NETCONF (VNF management) phase duration.
    pub fn netconf_phase(&self) -> Time {
        Time::from_ns(self.vnfs_ready_at.since(self.mapped_at))
    }

    /// Steering (flow programming) phase duration.
    pub fn steering_phase(&self) -> Time {
        Time::from_ns(self.steered_at.since(self.vnfs_ready_at))
    }
}

/// The prototyping environment. See the crate docs for a quickstart.
pub struct Escape {
    pub sim: Sim,
    pub infra: Infra,
    orch: Orchestrator,
    clients: HashMap<String, Client>,
    deployed: HashMap<String, DeployedChain>,
    /// Service graph each deployed chain came from, for crash re-mapping.
    graphs: HashMap<String, ServiceGraph>,
    next_cookie: u64,
    topo: ResourceTopology,
    mode: SteeringMode,
    /// Installed fault injectors, one per loaded plan. Plans can
    /// overlap; healing drains every injector and merges records in
    /// virtual-time order.
    injectors: Vec<NodeId>,
    /// Backoff schedule for NETCONF RPC retries.
    retry: RetryPolicy,
    /// Admission watermarks; `None` admits everything unconditionally.
    admission: Option<AdmissionConfig>,
    /// Deploys parked between the watermarks, FIFO.
    admission_queue: Vec<QueuedDeploy>,
    /// Backoff schedule for queued-deploy retries (derived from the
    /// build seed, so same seed ⇒ same retry cadence).
    admission_retry: RetryPolicy,
    /// Human-readable, virtual-timestamped fault/recovery event log —
    /// byte-identical across same-seed runs (the determinism witness).
    events: Vec<String>,
    /// Simulation-wide metric registry, shared by every subsystem.
    telemetry: Registry,
    /// Virtual-time span tracer (chain setup phases).
    tracer: Tracer,
    /// NETCONF round-trip latency in virtual ns (`netconf.rpc_latency_ns`).
    rpc_latency: Histogram,
    deploys_ctr: Counter,
    deploy_failures_ctr: Counter,
    chains_ctr: Counter,
    teardowns_ctr: Counter,
    /// RPC attempts that were retried (`netconf.rpc_retries`).
    rpc_retries_ctr: Counter,
    /// Successful chain recoveries (`escape.recoveries`).
    recoveries_ctr: Counter,
    /// Chains that could not be recovered (`escape.recovery_failures`).
    recovery_failures_ctr: Counter,
    /// Virtual ns from fault detection to restored steering
    /// (`recovery.latency_ns`).
    recovery_latency: Histogram,
    /// Deploy transactions rolled back (`escape.rollbacks`).
    rollbacks_ctr: Counter,
    /// Deploys admitted below the soft watermark (`escape.admission_admitted`).
    admission_admitted_ctr: Counter,
    /// Deploys parked on the queue (`escape.admission_queued`).
    admission_queued_ctr: Counter,
    /// Deploys rejected — hard watermark, full queue or spent retry
    /// budget (`escape.admission_rejected`).
    admission_rejected_ctr: Counter,
    /// Queued-deploy retry attempts (`escape.admission_retries`).
    admission_retries_ctr: Counter,
    /// Malformed NETCONF replies noted by containers
    /// (container, reason), drained by the RPC layer.
    malformed_seen: Vec<(String, String)>,
    /// Typed operational event journal (bounded ring, virtual-clock
    /// stamped; evictions counted as `escape.journal_evicted`).
    journal: Journal,
    /// Periodic metric sampler on the virtual clock. `None` until
    /// enabled with [`Escape::enable_sampler`].
    sampler: Option<Sampler>,
    /// Last observed SLA pass flag per chain, for flip detection at
    /// sample points.
    sla_last: HashMap<String, bool>,
    /// `openflow.cache_invalidations` total at the previous sample
    /// point, for storm detection.
    last_cache_invalidations: u64,
}

/// Cache invalidations within one sample period at or above this count
/// are journaled as a storm (rule churn thrashing the fast path).
const CACHE_STORM_THRESHOLD: u64 = 64;

/// How a single RPC attempt failed: retryably (no reply within the
/// budget) or fatally (agent answered with an error, or the target does
/// not exist).
enum AttemptError {
    Timeout,
    Fatal(EscapeError),
}

/// What recovery does to a chain hit by a fault.
#[derive(Debug, Clone, Copy)]
enum RecoveryAction {
    /// Keep the placement, move only the paths (link failures).
    Reroute,
    /// New placement on surviving containers (container crashes).
    Remap,
}

impl RecoveryAction {
    fn label(self) -> &'static str {
        match self {
            RecoveryAction::Reroute => "reroute",
            RecoveryAction::Remap => "remap",
        }
    }
}

impl Escape {
    /// Builds the full environment over `topo` with the given mapping
    /// algorithm and steering mode. Runs the OpenFlow handshakes so the
    /// network is ready for deployment on return.
    pub fn build(
        topo: ResourceTopology,
        algorithm: Box<dyn MappingAlgorithm>,
        mode: SteeringMode,
        seed: u64,
    ) -> Result<Escape, EscapeError> {
        let telemetry = Registry::new();
        let mut sim = Sim::with_registry(seed, telemetry.clone());
        let infra = Infra::build(&mut sim, &topo, mode, seed).map_err(EscapeError::Invalid)?;
        let orch = Orchestrator::with_registry(topo.clone(), algorithm, telemetry.clone())
            .map_err(EscapeError::Invalid)?;
        let mut esc = Escape {
            sim,
            infra,
            orch,
            clients: HashMap::new(),
            deployed: HashMap::new(),
            graphs: HashMap::new(),
            next_cookie: 1,
            topo,
            mode,
            injectors: Vec::new(),
            retry: RetryPolicy::standard(seed),
            admission: None,
            admission_queue: Vec::new(),
            // Queue retries back off longer than RPC retries: the queue
            // waits for capacity, not for a stalled agent.
            admission_retry: RetryPolicy::new(5_000_000, 80_000_000, 0.25, 8, seed ^ 0xAD31),
            events: Vec::new(),
            tracer: Tracer::new(telemetry.clone()),
            rpc_latency: telemetry.histogram("netconf.rpc_latency_ns"),
            deploys_ctr: telemetry.counter("escape.deploys"),
            deploy_failures_ctr: telemetry.counter("escape.deploy_failures"),
            chains_ctr: telemetry.counter("escape.chains_deployed"),
            teardowns_ctr: telemetry.counter("escape.teardowns"),
            rpc_retries_ctr: telemetry.counter("netconf.rpc_retries"),
            recoveries_ctr: telemetry.counter("escape.recoveries"),
            recovery_failures_ctr: telemetry.counter("escape.recovery_failures"),
            recovery_latency: telemetry.histogram("recovery.latency_ns"),
            rollbacks_ctr: telemetry.counter("escape.rollbacks"),
            admission_admitted_ctr: telemetry.counter("escape.admission_admitted"),
            admission_queued_ctr: telemetry.counter("escape.admission_queued"),
            admission_rejected_ctr: telemetry.counter("escape.admission_rejected"),
            admission_retries_ctr: telemetry.counter("escape.admission_retries"),
            malformed_seen: Vec::new(),
            journal: Journal::new(&telemetry, DEFAULT_JOURNAL_CAP),
            sampler: None,
            sla_last: HashMap::new(),
            last_cache_invalidations: 0,
            telemetry,
        };
        // Let the OpenFlow handshake and hello exchanges settle.
        esc.sim.run_until(esc.sim.now() + Time::from_ms(5));
        Ok(esc)
    }

    /// Builds a *multi-domain* environment instead: `topo` is split per
    /// `spec` into per-domain ESCAPE instances under a global
    /// orchestrator (see [`crate::domains::MultiDomainEscape`]).
    /// `algorithm` is a factory because every local orchestrator owns
    /// its own instance; `workers` bounds the simulator threads per
    /// epoch (results are identical for any value).
    pub fn with_domains(
        topo: &ResourceTopology,
        spec: &escape_domain::DomainSpec,
        algorithm: &dyn Fn() -> Box<dyn MappingAlgorithm>,
        mode: SteeringMode,
        seed: u64,
        workers: usize,
    ) -> Result<crate::domains::MultiDomainEscape, EscapeError> {
        crate::domains::MultiDomainEscape::build(topo, spec, algorithm, mode, seed, workers)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Advances virtual time by `ms` milliseconds. While deploys are
    /// parked on the admission queue, time advances in 1 ms slices so
    /// due retries fire at their scheduled (virtual) moments.
    pub fn run_for_ms(&mut self, ms: u64) {
        let deadline = self.sim.now() + Time::from_ms(ms);
        while !self.admission_queue.is_empty() && self.sim.now() < deadline {
            let slice = (self.sim.now() + Time::from_ms(1)).min(deadline);
            self.advance_to(slice);
            self.pump_admission();
        }
        self.advance_to(deadline);
    }

    /// Advances virtual time to an absolute deadline. The multi-domain
    /// coordinator uses this to march every domain simulator to the same
    /// epoch barrier; the clock lands exactly on `deadline` even when the
    /// event queue drains early.
    pub fn run_until(&mut self, deadline: Time) {
        self.advance_to(deadline);
    }

    /// Advances the simulator to `deadline`, pausing at every sampler
    /// boundary on the way to take a snapshot (and run the sample-point
    /// observers: SLA flip detection, cache-storm detection) at its
    /// scheduled virtual instant.
    fn advance_to(&mut self, deadline: Time) {
        if self.sampler.is_none() {
            self.sim.run_until(deadline);
            return;
        }
        loop {
            let due = Time::from_ns(self.sampler.as_ref().expect("sampler").next_due_ns());
            let stop = due.min(deadline);
            if stop > self.sim.now() {
                self.sim.run_until(stop);
            }
            if self
                .sampler
                .as_ref()
                .is_some_and(|s| s.due(self.sim.now().as_ns()))
            {
                self.observe_tick();
            }
            if self.sim.now() >= deadline {
                return;
            }
        }
    }

    /// One sample point: detect SLA verdict flips and cache-invalidation
    /// storms, then record a registry snapshot into the sampler ring.
    /// Everything here runs on the virtual clock, so the journal and the
    /// series stay byte-identical across same-seed runs.
    fn observe_tick(&mut self) {
        let now_ns = self.sim.now().as_ns();
        // SLA flips are only observable while the flight recorder runs.
        if self.sim.trace.is_some() {
            for v in self.sla_verdicts() {
                let was = self.sla_last.insert(v.chain.clone(), v.pass);
                if was == Some(v.pass) {
                    continue;
                }
                let (sev, what) = if v.pass {
                    (Severity::Info, "pass")
                } else {
                    (Severity::Warn, "fail")
                };
                self.journal_event(
                    sev,
                    JournalKind::SlaFlip,
                    format!(
                        "chain {}: {what} (delivered {} dropped {} loss {:.3})",
                        v.chain, v.delivered, v.dropped, v.loss
                    ),
                );
            }
        }
        let snap = self.telemetry.snapshot();
        let invalidations = snap.counter_total("openflow.cache_invalidations");
        let delta = invalidations.saturating_sub(self.last_cache_invalidations);
        if delta >= CACHE_STORM_THRESHOLD {
            self.journal_event(
                Severity::Warn,
                JournalKind::CacheInvalidationStorm,
                format!("{delta} flow-cache invalidations in one sample period"),
            );
        }
        self.last_cache_invalidations = invalidations;
        if let Some(s) = &mut self.sampler {
            s.record(now_ns, snap);
        }
    }

    /// Turns on the periodic metric sampler. Samples are taken at
    /// period boundaries of the *virtual* clock while time advances
    /// through [`Escape::run_for_ms`] / [`Escape::run_with_recovery`] /
    /// [`Escape::run_until`].
    pub fn enable_sampler(&mut self, cfg: SamplerConfig) {
        self.sampler = Some(Sampler::new(&self.telemetry, cfg));
    }

    /// The sampler ring, if enabled.
    pub fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Delta-encoded sampler series as a JSON document (see
    /// [`Sampler::series_json`]). An environment without a sampler
    /// reports an empty window.
    pub fn sampler_series_json(&self) -> String {
        match &self.sampler {
            Some(s) => s.series_json().to_string_pretty(),
            None => escape_json::Value::obj()
                .set("period_ns", 0u64)
                .set("evicted", 0u64)
                .set("at_ns", Vec::<u64>::new())
                .set("series", escape_json::Value::Arr(Vec::new()))
                .to_string_pretty(),
        }
    }

    /// The typed operational event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The retained journal as JSON lines.
    pub fn journal_json_lines(&self) -> String {
        self.journal.json_lines()
    }

    /// Appends a typed entry to the journal at the current virtual time.
    fn journal_event(&mut self, severity: Severity, kind: JournalKind, detail: String) {
        self.journal
            .record(self.sim.now().as_ns(), severity, kind, detail);
    }

    /// The orchestrator (resource view, algorithm swapping).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// Mutable orchestrator access.
    pub fn orchestrator_mut(&mut self) -> &mut Orchestrator {
        &mut self.orch
    }

    /// The underlying topology.
    pub fn topology(&self) -> &ResourceTopology {
        &self.topo
    }

    /// Names of all live (fully committed) chains, sorted.
    pub fn deployed_chains(&self) -> Vec<String> {
        let mut v: Vec<String> = self.deployed.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// The deployment record for a live chain, if any.
    pub fn deployed(&self, chain: &str) -> Option<&DeployedChain> {
        self.deployed.get(chain)
    }

    /// The simulation-wide telemetry registry (netem, pox, orch, netconf
    /// and escape metrics all land here).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The virtual-time span tracer: chain setup phases as nested spans.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Point-in-time snapshot of every metric in the environment.
    pub fn metrics(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Enables or disables the exact-match flow cache on every switch
    /// (default on). Disabling flushes the caches, so every subsequent
    /// lookup walks the priority table — the reference path the
    /// differential tests and the dataplane bench compare against.
    pub fn set_flow_cache(&mut self, enabled: bool) {
        let mut names: Vec<&String> = self.infra.dpid.keys().collect();
        names.sort();
        for name in names {
            let Some(node) = self.infra.nodes.get(name).copied() else {
                continue;
            };
            if let Some(sw) = self.sim.node_as_mut::<Switch>(node) {
                sw.set_flow_cache(enabled);
            }
        }
    }

    // ---------------- flight recorder -------------------------------

    /// Turns on the packet flight recorder: a trace ring of `cap`
    /// records that [`Self::flight_record`] later correlates into
    /// per-packet journeys. Enable it *before* starting traffic.
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        self.sim.enable_trace(cap);
    }

    /// Reconstructs every traced packet's journey. Empty if the flight
    /// recorder was never enabled.
    pub fn flight_record(&self) -> FlightRecord {
        let Some(trace) = &self.sim.trace else {
            return FlightRecord::default();
        };
        // Topology-name and role lookup for every emulator node.
        let mut roles: HashMap<NodeId, (String, NodeKind)> = HashMap::new();
        for (name, &node) in &self.infra.nodes {
            let kind = if self.infra.dpid.contains_key(name) {
                NodeKind::Switch
            } else if self.infra.sap_addr.contains_key(name) {
                NodeKind::Host
            } else if self.infra.netconf_conn.contains_key(name) {
                NodeKind::Container
            } else {
                NodeKind::Other
            };
            roles.insert(node, (name.clone(), kind));
        }
        let cookies: HashMap<u64, String> = self
            .deployed
            .iter()
            .map(|(name, dc)| (dc.cookie, name.clone()))
            .collect();
        flight::reconstruct(
            trace.records(),
            |n| {
                roles
                    .get(&n)
                    .cloned()
                    .unwrap_or_else(|| (self.sim.node_name(n).to_string(), NodeKind::Other))
            },
            &cookies,
        )
    }

    /// Reconstructs journeys, publishes per-chain aggregates into the
    /// telemetry registry and returns the record.
    pub fn flight_record_aggregated(&self) -> FlightRecord {
        let fr = self.flight_record();
        fr.aggregate(&self.telemetry);
        fr
    }

    /// Evaluates every deployed chain's SLA (from its service graph)
    /// against the recorded traffic, in chain-name order. Chains without
    /// an SLA get a vacuous pass.
    pub fn sla_verdicts(&self) -> Vec<SlaVerdict> {
        let fr = self.flight_record();
        let mut names: Vec<&String> = self.deployed.keys().collect();
        names.sort();
        names
            .into_iter()
            .map(|name| {
                let sla = self
                    .graphs
                    .get(name)
                    .and_then(|g| g.chains.iter().find(|c| &c.name == name))
                    .and_then(|c| c.sla)
                    .unwrap_or_default();
                flight::evaluate_sla(name, &sla, fr.for_chain(name))
            })
            .collect()
    }

    // ---------------- NETCONF plumbing ------------------------------

    /// Drains the manager relay inbox into the right client sessions;
    /// returns replies seen (container, reply).
    fn drain_inbox(&mut self) -> Vec<(String, RpcReply)> {
        let msgs = {
            let relay = self
                .sim
                .node_as_mut::<ManagerRelay>(self.infra.manager)
                .expect("manager relay");
            std::mem::take(&mut relay.inbox)
        };
        let mut replies = Vec::new();
        let malformed_before = self.malformed_seen.len();
        for (conn, bytes) in msgs {
            let Some(owner) = self.infra.conn_owner.get(&conn.0).cloned() else {
                continue;
            };
            let client = self
                .clients
                .entry(owner.clone())
                .or_insert_with(|| Client::with_registry(self.telemetry.clone()));
            for ev in client.on_bytes(&bytes) {
                match ev {
                    ClientEvent::Reply(r) => replies.push((owner.clone(), r)),
                    ClientEvent::Malformed { reason } => {
                        self.malformed_seen.push((owner.clone(), reason));
                    }
                    _ => {}
                }
            }
        }
        for i in malformed_before..self.malformed_seen.len() {
            let (owner, reason) = self.malformed_seen[i].clone();
            self.note(format!("netconf: malformed reply from {owner}: {reason}"));
            self.journal_event(
                Severity::Warn,
                JournalKind::MalformedReply,
                format!("{owner}: {reason}"),
            );
        }
        replies
    }

    /// Removes and returns the first malformed-reply record for
    /// `container`, if the inbox drain saw one.
    fn take_malformed(&mut self, container: &str) -> Option<String> {
        let idx = self
            .malformed_seen
            .iter()
            .position(|(owner, _)| owner == container)?;
        Some(self.malformed_seen.remove(idx).1)
    }

    /// Ensures the NETCONF session to `container` is up (hello exchange).
    /// A hello timeout is retryable — the agent may just be stalled.
    fn ensure_session(&mut self, container: &str) -> Result<CtrlId, AttemptError> {
        let conn = *self.infra.netconf_conn.get(container).ok_or_else(|| {
            AttemptError::Fatal(EscapeError::NotFound(format!("container {container}")))
        })?;
        let needs_hello = self.clients.get(container).is_none_or(|c| !c.ready());
        if needs_hello {
            let client = self
                .clients
                .entry(container.to_string())
                .or_insert_with(|| Client::with_registry(self.telemetry.clone()));
            let hello = client.start();
            self.sim.ctrl_send_from(self.infra.manager, conn, hello);
            let deadline = self.sim.now() + RPC_TIMEOUT;
            loop {
                self.sim.run_until(self.sim.now().add_ns(50_000));
                self.drain_inbox();
                if self.clients.get(container).is_some_and(|c| c.ready()) {
                    break;
                }
                if self.sim.now() > deadline {
                    return Err(AttemptError::Timeout);
                }
            }
        }
        Ok(conn)
    }

    /// One RPC attempt: send, then wait (in virtual time) up to the RPC
    /// deadline for the matching reply.
    fn rpc_attempt(
        &mut self,
        container: &str,
        build: &mut dyn FnMut(&mut Client) -> (u64, Vec<u8>),
    ) -> Result<RpcReply, AttemptError> {
        let conn = self.ensure_session(container)?;
        let (id, bytes) = build(self.clients.get_mut(container).expect("session exists"));
        let sent_at = self.sim.now();
        self.sim.ctrl_send_from(self.infra.manager, conn, bytes);
        let deadline = self.sim.now() + RPC_TIMEOUT;
        loop {
            self.sim.run_until(self.sim.now().add_ns(50_000));
            for (owner, reply) in self.drain_inbox() {
                if owner == container && reply.message_id == id {
                    self.rpc_latency.observe(self.sim.now().since(sent_at));
                    if let ReplyBody::Errors(errs) = &reply.body {
                        return Err(AttemptError::Fatal(EscapeError::Netconf(format!(
                            "{container}: {}",
                            errs.first().map(|e| e.to_string()).unwrap_or_default()
                        ))));
                    }
                    return Ok(reply);
                }
            }
            if let Some(reason) = self.take_malformed(container) {
                return Err(AttemptError::Fatal(EscapeError::MalformedReply {
                    container: container.to_string(),
                    reason,
                }));
            }
            if self.sim.now() > deadline {
                return Err(AttemptError::Timeout);
            }
        }
    }

    /// Sends one RPC to a container's agent with retry: timeouts back off
    /// on the policy's deterministic schedule (waiting in virtual time)
    /// and re-send a *fresh* message; agent-reported errors fail fast.
    /// After the whole budget is spent the typed
    /// [`EscapeError::RpcTimeout`] names the container and attempt count.
    fn rpc(
        &mut self,
        container: &str,
        mut build: impl FnMut(&mut Client) -> (u64, Vec<u8>),
    ) -> Result<RpcReply, EscapeError> {
        let policy = self.retry;
        let mut attempt = 0u32;
        loop {
            match self.rpc_attempt(container, &mut build) {
                Ok(reply) => return Ok(reply),
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Timeout) => {
                    if attempt >= policy.max_retries {
                        return Err(EscapeError::RpcTimeout {
                            container: container.to_string(),
                            attempts: policy.attempts(),
                        });
                    }
                    self.rpc_retries_ctr.inc();
                    let wait = policy.delay_ns(attempt);
                    self.sim.run_until(self.sim.now().add_ns(wait));
                    attempt += 1;
                }
            }
        }
    }

    // ---------------- deployment ------------------------------------

    /// Enables the admission controller with the given watermarks. Every
    /// subsequent [`Escape::deploy`] is gated on compute utilization;
    /// queued deploys retry while time advances through
    /// [`Escape::run_for_ms`] / [`Escape::run_with_recovery`].
    pub fn set_admission(&mut self, cfg: AdmissionConfig) {
        self.admission_retry = RetryPolicy::new(
            5_000_000,
            80_000_000,
            0.25,
            cfg.max_retries,
            self.admission_retry.seed,
        );
        self.admission = Some(cfg);
    }

    /// Deploys queued by admission control, still waiting.
    pub fn pending_admissions(&self) -> usize {
        self.admission_queue.len()
    }

    /// Deploys a service graph as a staged transaction:
    ///
    /// 1. **plan** — reserve compute and bandwidth in the orchestrator;
    /// 2. **prepare** — initiate/connect/start every VNF over NETCONF and
    ///    stage the compiled steering rules in a shadow set (no flow-mod
    ///    leaves the controller yet);
    /// 3. **commit** — atomically activate the staged rules and publish
    ///    the chains.
    ///
    /// A failure or RPC timeout in prepare/commit rolls back exactly the
    /// completed steps in reverse order — stop started VNFs, disconnect
    /// their ports, discard or delete rules, release every reservation —
    /// and surfaces as [`EscapeError::DeployFailed`] carrying the phase,
    /// the root cause and the rollback report. Plan failures surface as
    /// plain [`EscapeError::MappingFailed`] (nothing to undo beyond the
    /// reservations, which are released inline).
    ///
    /// When admission control is enabled ([`Escape::set_admission`]),
    /// the request is first gated on compute utilization.
    ///
    /// The whole operation is traced in virtual time: a `deploy` span
    /// with `mapping`, one `chain_setup` per chain (its NETCONF leg) and
    /// `steering` children.
    pub fn deploy(&mut self, sg: &ServiceGraph) -> Result<DeploymentReport, EscapeError> {
        if let Some(cfg) = self.admission {
            let sp = self.tracer.enter("admission", self.sim.now().as_ns());
            let verdict = self.admit(sg, cfg);
            self.tracer.exit(sp, self.sim.now().as_ns());
            if let Some(v) = verdict {
                return Err(EscapeError::Admission(v));
            }
        }
        self.deploy_txn(sg)
    }

    /// The admission gate: `None` admits, `Some(verdict)` queues or
    /// rejects the request.
    fn admit(&mut self, sg: &ServiceGraph, cfg: AdmissionConfig) -> Option<AdmissionVerdict> {
        let utilization = self.orch.cpu_utilization();
        if utilization >= cfg.hard_watermark {
            self.admission_rejected_ctr.inc();
            self.note(format!(
                "admission: rejected (utilization {utilization:.2} >= hard {:.2})",
                cfg.hard_watermark
            ));
            self.journal_event(
                Severity::Warn,
                JournalKind::AdmissionRejected,
                format!(
                    "utilization {utilization:.2} >= hard watermark {:.2}",
                    cfg.hard_watermark
                ),
            );
            return Some(AdmissionVerdict::RejectedHard {
                utilization,
                hard_watermark: cfg.hard_watermark,
            });
        }
        if utilization >= cfg.soft_watermark {
            if self.admission_queue.len() >= cfg.max_queue {
                self.admission_rejected_ctr.inc();
                self.note(format!(
                    "admission: queue full ({} waiting)",
                    self.admission_queue.len()
                ));
                self.journal_event(
                    Severity::Warn,
                    JournalKind::AdmissionRejected,
                    format!("queue full ({} waiting)", self.admission_queue.len()),
                );
                return Some(AdmissionVerdict::QueueFull {
                    capacity: cfg.max_queue,
                });
            }
            let position = self.admission_queue.len();
            let next_due = self.sim.now().add_ns(self.admission_retry.delay_ns(0));
            self.admission_queue.push(QueuedDeploy {
                sg: sg.clone(),
                attempts: 0,
                next_due,
            });
            self.admission_queued_ctr.inc();
            self.note(format!(
                "admission: queued at position {position} (utilization {utilization:.2})"
            ));
            self.journal_event(
                Severity::Info,
                JournalKind::AdmissionQueued,
                format!("position {position} (utilization {utilization:.2})"),
            );
            return Some(AdmissionVerdict::Queued {
                position,
                utilization,
            });
        }
        self.admission_admitted_ctr.inc();
        None
    }

    /// Retries due queued deploys: below the soft watermark a queued
    /// request deploys now; otherwise it backs off on the deterministic
    /// schedule until its retry budget is spent.
    fn pump_admission(&mut self) {
        let Some(cfg) = self.admission else { return };
        if self.admission_queue.is_empty() {
            return;
        }
        let mut queue = std::mem::take(&mut self.admission_queue);
        let mut i = 0;
        while i < queue.len() {
            if queue[i].next_due > self.sim.now() {
                i += 1;
                continue;
            }
            let utilization = self.orch.cpu_utilization();
            if utilization < cfg.soft_watermark {
                let q = queue.remove(i);
                self.admission_admitted_ctr.inc();
                self.note(format!(
                    "admission: dequeued after {} retr{} (utilization {utilization:.2})",
                    q.attempts,
                    if q.attempts == 1 { "y" } else { "ies" }
                ));
                match self.deploy_txn(&q.sg) {
                    Ok(_) => {}
                    Err(e) => self.note(format!("admission: dequeued deploy failed: {e}")),
                }
                continue;
            }
            let q = &mut queue[i];
            q.attempts += 1;
            self.admission_retries_ctr.inc();
            if q.attempts >= cfg.max_retries {
                let q = queue.remove(i);
                self.admission_rejected_ctr.inc();
                self.note(format!(
                    "admission: dropped after {} attempts (utilization {utilization:.2})",
                    q.attempts
                ));
                self.journal_event(
                    Severity::Warn,
                    JournalKind::AdmissionDropped,
                    format!(
                        "retry budget spent after {} attempts (utilization {utilization:.2})",
                        q.attempts
                    ),
                );
                continue;
            }
            q.next_due = self
                .sim
                .now()
                .add_ns(self.admission_retry.delay_ns(q.attempts));
            i += 1;
        }
        // New arrivals queued by deploys issued above land behind.
        queue.append(&mut self.admission_queue);
        self.admission_queue = queue;
    }

    /// One deployment transaction (no admission gate): span, counters,
    /// plan → prepare → commit with rollback.
    fn deploy_txn(&mut self, sg: &ServiceGraph) -> Result<DeploymentReport, EscapeError> {
        let sp = self.tracer.enter("deploy", self.sim.now().as_ns());
        let result = self.deploy_inner(sg);
        let now = self.sim.now().as_ns();
        self.tracer.exit(sp, now);
        match &result {
            Ok(_) => self.deploys_ctr.inc(),
            Err(_) => self.deploy_failures_ctr.inc(),
        }
        result
    }

    fn deploy_inner(&mut self, sg: &ServiceGraph) -> Result<DeploymentReport, EscapeError> {
        sg.validate().map_err(EscapeError::Invalid)?;
        let started_at = self.sim.now();

        // ---- plan: reserve every chain's compute and bandwidth ------
        let sp_map = self.tracer.enter("mapping", self.sim.now().as_ns());
        let (mappings, rejected) = self.orch.embed_graph(sg);
        self.tracer.exit(sp_map, self.sim.now().as_ns());
        if !rejected.is_empty() {
            for m in &mappings {
                self.orch.release_chain(&m.chain.name);
            }
            return Err(EscapeError::MappingFailed(rejected));
        }
        let mapped_at = self.sim.now();

        // ---- prepare: VNFs up over NETCONF, rules staged ------------
        let mut txns: Vec<ChainTxn> = Vec::new();
        for mapping in &mappings {
            let cookie = self.next_cookie;
            self.next_cookie += 1;
            let mut txn = ChainTxn::new(mapping.clone(), cookie);
            let sp = self.tracer.enter("chain_setup", self.sim.now().as_ns());
            let res = self.prepare_chain(sg, &mut txn);
            self.tracer.exit(sp, self.sim.now().as_ns());
            txns.push(txn); // keep partial progress for rollback
            if let Err(cause) = res {
                return Err(self.roll_back(DeployPhase::Prepare, cause, &txns));
            }
        }
        let vnfs_ready_at = self.sim.now();

        // ---- commit: activate every staged rule set atomically ------
        if let Err(cause) = self.commit_chains(&mut txns) {
            return Err(self.roll_back(DeployPhase::Commit, cause, &txns));
        }
        let steered_at = self.sim.now();

        let mut chains = Vec::new();
        for txn in txns {
            let dc = txn.into_deployed();
            self.chains_ctr.inc();
            self.journal_event(
                Severity::Info,
                JournalKind::DeployCommitted,
                format!(
                    "chain {} ({} vnfs, {} rules)",
                    dc.mapping.chain.name,
                    dc.vnfs.len(),
                    dc.rules
                ),
            );
            self.deployed
                .insert(dc.mapping.chain.name.clone(), dc.clone());
            // Remember the source graph so a crash can re-map the chain.
            self.graphs
                .insert(dc.mapping.chain.name.clone(), sg.clone());
            chains.push(dc);
        }
        Ok(DeploymentReport {
            chains,
            started_at,
            mapped_at,
            vnfs_ready_at,
            steered_at,
        })
    }

    /// Prepare leg for one chain: bring its VNFs up over NETCONF
    /// (recording progress step by step in `txn`), then compile its
    /// steering rules into the controller's shadow set.
    fn prepare_chain(&mut self, sg: &ServiceGraph, txn: &mut ChainTxn) -> Result<(), EscapeError> {
        self.prepare_vnfs(sg, txn)?;
        let rules = compile_rules(&self.infra, &txn.as_deployed())?;
        txn.rules = rules.len();
        self.steering_mut().stage_rules(txn.cookie, rules);
        txn.staged = true;
        Ok(())
    }

    /// Commit phase: move every chain's staged rules to the live queue,
    /// flush once, wait for the switches, provision ARP.
    fn commit_chains(&mut self, txns: &mut [ChainTxn]) -> Result<(), EscapeError> {
        {
            let st = self.steering_mut();
            for txn in txns.iter_mut() {
                st.commit_staged(txn.cookie);
                txn.staged = false;
                txn.committed = true;
            }
        }
        Controller::request_flush(&mut self.sim, self.infra.controller, Time::ZERO);
        let sp_steer = self.tracer.enter("steering", self.sim.now().as_ns());
        let steer_res = self.await_steering();
        self.tracer.exit(sp_steer, self.sim.now().as_ns());
        steer_res?;

        // Provision static ARP on the SAP endpoints of each chain.
        for txn in txns.iter() {
            let hops = &txn.mapping.chain.hops;
            let (src, dst) = (hops.first().unwrap().clone(), hops.last().unwrap().clone());
            self.provision_arp(&src, &dst)?;
        }
        Ok(())
    }

    /// Undoes a failed deployment transaction: walks every chain's
    /// progress log in reverse — rules out of the controller (staged
    /// sets discarded, committed sets deleted), started VNFs stopped,
    /// connected ports disconnected — then releases every reservation
    /// the plan phase made. Steps that fail (an agent that stayed dead)
    /// are recorded as best-effort in the report.
    fn roll_back(
        &mut self,
        phase: DeployPhase,
        cause: EscapeError,
        txns: &[ChainTxn],
    ) -> EscapeError {
        let mut steps = Vec::new();
        let mut need_flush = false;
        for txn in txns.iter().rev() {
            let chain = txn.mapping.chain.name.clone();
            {
                let st = self.steering_mut();
                if txn.committed {
                    st.remove_chain(txn.cookie);
                    need_flush = true;
                    steps.push(RollbackStep {
                        action: "remove-rules",
                        target: chain.clone(),
                        ok: true,
                    });
                } else if txn.staged {
                    st.discard_staged(txn.cookie);
                    steps.push(RollbackStep {
                        action: "discard-rules",
                        target: chain.clone(),
                        ok: true,
                    });
                }
            }
            self.roll_back_vnfs(&txn.vnfs, &mut steps);
        }
        if need_flush {
            // Committed rules may have reached switches: delete them.
            Controller::request_flush(&mut self.sim, self.infra.controller, Time::ZERO);
            self.sim
                .run_until(self.sim.now() + crate::infra::CTRL_LATENCY + Time::from_ms(1));
        }
        for txn in txns.iter().rev() {
            let chain = txn.mapping.chain.name.clone();
            self.orch.release_chain(&chain);
            steps.push(RollbackStep {
                action: "release-reservation",
                target: chain,
                ok: true,
            });
        }
        // Sessions that never finished their hello died with the deploy.
        self.clients.retain(|_, c| c.ready());
        let rollback = RollbackReport { steps };
        self.rollbacks_ctr.inc();
        self.note(format!(
            "deploy rolled back in {phase}: {cause} ({rollback})"
        ));
        self.journal_event(
            Severity::Warn,
            JournalKind::DeployRolledBack,
            format!("{phase} phase: {cause}"),
        );
        EscapeError::DeployFailed {
            phase,
            cause: Box::new(cause),
            rollback,
        }
    }

    /// Reverse-order undo of (partially) prepared VNFs: stop each one
    /// that reached `startVNF`, then disconnect its bound devices.
    /// Best-effort — a dead agent marks the step failed and moves on.
    fn roll_back_vnfs(&mut self, vnfs: &[PreparedVnf], steps: &mut Vec<RollbackStep>) {
        for p in vnfs.iter().rev() {
            let target = format!("{}/{}", p.dv.container, p.dv.vnf_id);
            if p.started {
                let vid = p.dv.vnf_id.clone();
                let ok = self.rpc(&p.dv.container, |c| c.stop_vnf(&vid)).is_ok();
                steps.push(RollbackStep {
                    action: "stop-vnf",
                    target: target.clone(),
                    ok,
                });
            }
            let mut devs: Vec<u16> = p.dv.switch_ports.keys().copied().collect();
            devs.sort_unstable();
            for dev in devs.into_iter().rev() {
                let vid = p.dv.vnf_id.clone();
                let ok = self
                    .rpc(&p.dv.container, move |c| c.disconnect_vnf(&vid, dev))
                    .is_ok();
                steps.push(RollbackStep {
                    action: "disconnect-vnf",
                    target: format!("{target}:dev{dev}"),
                    ok,
                });
            }
        }
    }

    /// The controller's traffic-steering component.
    fn steering_mut(&mut self) -> &mut TrafficSteering {
        self.sim
            .node_as_mut::<Controller>(self.infra.controller)
            .expect("controller")
            .component_as_mut::<TrafficSteering>()
            .expect("steering component")
    }

    /// Waits (in virtual time) until flushed steering rules reached the
    /// switches (proactive), or gives reactive arming a settle beat.
    fn await_steering(&mut self) -> Result<(), EscapeError> {
        if self.mode == SteeringMode::Proactive {
            // Wait for the rules to reach the switches.
            let deadline = self.sim.now() + RPC_TIMEOUT;
            loop {
                self.sim.run_until(self.sim.now().add_ns(50_000));
                let pending = self
                    .sim
                    .node_as::<Controller>(self.infra.controller)
                    .and_then(|c| c.component_as::<TrafficSteering>())
                    .map_or(0, |s| s.pending());
                if pending == 0 {
                    // One more control-latency beat for in-flight flow-mods.
                    self.sim
                        .run_until(self.sim.now() + crate::infra::CTRL_LATENCY + Time::from_us(10));
                    return Ok(());
                }
                if self.sim.now() > deadline {
                    return Err(EscapeError::Steering(format!(
                        "{pending} rules stuck in the controller queue"
                    )));
                }
            }
        } else {
            self.sim.run_until(self.sim.now().add_ns(100_000));
            Ok(())
        }
    }

    /// The NETCONF leg for one chain, recording progress in `txn` after
    /// every completed step so rollback can undo exactly what happened.
    /// Recovery reuses a chain's original cookie so its rules replace
    /// the stale ones.
    fn prepare_vnfs(&mut self, sg: &ServiceGraph, txn: &mut ChainTxn) -> Result<(), EscapeError> {
        let mapping = txn.mapping.clone();
        for (i, (vnf_name, container)) in mapping.placement.iter().enumerate() {
            let req = sg
                .vnf_named(vnf_name)
                .ok_or_else(|| EscapeError::NotFound(format!("vnf {vnf_name}")))?;
            // initiateVNF (raw Click config wins over the catalog type)
            let options: Vec<(String, String)> = req.params.clone();
            let (ty, opts) = (req.vnf_type.clone(), options);
            let cfg = req.click_config.clone();
            let reply = self.rpc(container, |c| c.initiate_vnf(&ty, cfg.as_deref(), &opts))?;
            let vnf_id = vnf_id_of(&reply)
                .ok_or_else(|| EscapeError::Netconf("initiateVNF reply missing vnf-id".into()))?;
            txn.vnfs.push(PreparedVnf {
                dv: DeployedVnf {
                    vnf_name: vnf_name.clone(),
                    vnf_type: req.vnf_type.clone(),
                    container: container.clone(),
                    vnf_id: vnf_id.clone(),
                    switch_ports: HashMap::new(),
                },
                started: false,
            });

            // connectVNF for dev 0 (ingress) and dev 1 (egress). The
            // target switch is the neighbor along the adjacent segment;
            // same-container neighbors are patched internally instead.
            let hop_idx = i + 1; // position in the hop list
            let seg_in = &mapping.segments[hop_idx - 1];
            let seg_out = &mapping.segments[hop_idx];
            if seg_in.nodes.len() >= 2 {
                let sw = seg_in.nodes[seg_in.nodes.len() - 2].clone();
                let vid = vnf_id.clone();
                let reply = self.rpc(container, |c| c.connect_vnf(&vid, 0, &sw))?;
                let sp = switch_port_of(&reply)
                    .ok_or_else(|| EscapeError::Netconf("connectVNF reply missing port".into()))?;
                txn.vnfs.last_mut().unwrap().dv.switch_ports.insert(0, sp);
            } else {
                // Previous hop is co-located: patch its egress to us.
                if txn.vnfs.len() < 2 {
                    return Err(EscapeError::Invalid("co-located first hop".into()));
                }
                let prev_id = txn.vnfs[txn.vnfs.len() - 2].dv.vnf_id.clone();
                let node = self.infra.node(container).expect("container node");
                let c = self
                    .sim
                    .node_as_mut::<VnfContainer>(node)
                    .expect("container logic");
                c.host_mut()
                    .bind_internal(&prev_id, 1, &vnf_id, 0)
                    .map_err(EscapeError::Netconf)?;
            }
            if seg_out.nodes.len() >= 2 {
                let sw = seg_out.nodes[1].clone();
                let vid = vnf_id.clone();
                let reply = self.rpc(container, |c| c.connect_vnf(&vid, 1, &sw))?;
                let sp = switch_port_of(&reply)
                    .ok_or_else(|| EscapeError::Netconf("connectVNF reply missing port".into()))?;
                txn.vnfs.last_mut().unwrap().dv.switch_ports.insert(1, sp);
            }
            // (If seg_out is single-node, the *next* VNF patches us.)

            // startVNF
            let vid = vnf_id.clone();
            self.rpc(container, |c| c.start_vnf(&vid))?;
            txn.vnfs.last_mut().unwrap().started = true;
        }
        Ok(())
    }

    /// Tears down a chain: stop + disconnect its VNFs, delete its rules,
    /// release its resources.
    ///
    /// Teardown is all-or-nothing on the bookkeeping side: if an agent
    /// RPC fails (stalled or dead container) the chain stays *deployed*
    /// — rules installed, resources reserved — and the call returns the
    /// error so the caller can retry once the agent is reachable again.
    /// Already-stopped VNFs stop idempotently on the retry. This is what
    /// keeps the conservation invariants honest: a chain is either fully
    /// live or fully gone, never a half-dismantled leak.
    pub fn teardown(&mut self, chain: &str) -> Result<(), EscapeError> {
        let dc = self
            .deployed
            .get(chain)
            .cloned()
            .ok_or_else(|| EscapeError::NotFound(format!("chain {chain}")))?;
        for v in &dc.vnfs {
            let vid = v.vnf_id.clone();
            // Agent-reported errors (already stopped / already
            // disconnected) happen when a prior teardown attempt got
            // partway before an RPC timed out; they mean the step is
            // already done. Transport errors abort the teardown.
            match self.rpc(&v.container, |c| c.stop_vnf(&vid)) {
                Ok(_) | Err(EscapeError::Netconf(_)) => {}
                Err(e) => return Err(e),
            }
            let mut devs: Vec<u16> = v.switch_ports.keys().copied().collect();
            devs.sort_unstable();
            for dev in devs {
                let vid = v.vnf_id.clone();
                match self.rpc(&v.container, move |c| c.disconnect_vnf(&vid, dev)) {
                    Ok(_) | Err(EscapeError::Netconf(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        self.deployed.remove(chain);
        {
            let ctl = self
                .sim
                .node_as_mut::<Controller>(self.infra.controller)
                .expect("controller");
            ctl.component_as_mut::<TrafficSteering>()
                .expect("steering")
                .remove_chain(dc.cookie);
        }
        Controller::request_flush(&mut self.sim, self.infra.controller, Time::ZERO);
        self.sim
            .run_until(self.sim.now() + crate::infra::CTRL_LATENCY + Time::from_ms(1));
        self.orch.release_chain(chain);
        self.graphs.remove(chain);
        self.teardowns_ctr.inc();
        self.journal_event(
            Severity::Info,
            JournalKind::Teardown,
            format!("chain {chain}"),
        );
        Ok(())
    }

    // ---------------- fault injection & self-healing ----------------

    /// Installs a fault plan into the emulation. Event times are relative
    /// to *now*; entity names are resolved immediately, so a plan naming
    /// an unknown node or link fails here rather than mid-run.
    pub fn load_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), EscapeError> {
        let node = FaultInjector::install(&mut self.sim, plan).map_err(EscapeError::FaultPlan)?;
        self.injectors.push(node);
        self.note(format!(
            "fault plan {:?} armed ({} events)",
            plan.name,
            plan.events.len()
        ));
        Ok(())
    }

    /// The fault/recovery event log: one line per injected fault and per
    /// recovery action, stamped with virtual time. Same seed + same plan
    /// ⇒ byte-identical log (asserted by the chaos harness).
    pub fn event_trace(&self) -> &[String] {
        &self.events
    }

    /// Appends a virtual-timestamped line to the event log.
    fn note(&mut self, msg: String) {
        self.events
            .push(format!("[{}ns] {msg}", self.sim.now().as_ns()));
    }

    /// Advances virtual time by `ms` milliseconds like
    /// [`Escape::run_for_ms`], but checks for injected faults every
    /// millisecond and runs recovery (re-route / re-map / re-steer) as
    /// soon as one lands.
    pub fn run_with_recovery(&mut self, ms: u64) {
        let deadline = self.sim.now() + Time::from_ms(ms);
        while self.sim.now() < deadline {
            let slice = (self.sim.now() + Time::from_ms(1)).min(deadline);
            self.advance_to(slice);
            self.heal();
            self.pump_admission();
        }
    }

    /// Runs one healing pass right now: drains any pending injected-fault
    /// records and recovers affected chains. The multi-domain coordinator
    /// calls this at every epoch barrier instead of using
    /// [`Escape::run_with_recovery`]'s internal slicing.
    pub fn heal_now(&mut self) {
        self.heal();
    }

    /// Drains injected-fault records from every loaded plan and reacts
    /// to each in virtual-time order.
    fn heal(&mut self) {
        let mut records = Vec::new();
        for inj in self.injectors.clone() {
            if let Some(fi) = self.sim.node_as_mut::<FaultInjector>(inj) {
                records.extend(fi.take_records());
            }
        }
        records.sort_by_key(|r| r.at);
        for rec in records {
            self.handle_fault(rec);
        }
    }

    /// Loss at or above this fraction is treated as a link failure (the
    /// paper's "degraded beyond use" threshold) and triggers a re-route.
    const LOSS_FAILURE_THRESHOLD: f64 = 0.25;

    fn handle_fault(&mut self, rec: FaultRecord) {
        self.note(format!("fault {} {}", rec.kind.label(), rec.kind.target()));
        self.journal_event(
            Severity::Warn,
            JournalKind::FaultInjected,
            format!("{} {}", rec.kind.label(), rec.kind.target()),
        );
        match rec.kind {
            FaultKind::LinkDown { a, b } => self.heal_link(&a, &b),
            FaultKind::LossSpike { a, b, loss } if loss >= Self::LOSS_FAILURE_THRESHOLD => {
                self.heal_link(&a, &b)
            }
            FaultKind::LinkUp { a, b } | FaultKind::LossClear { a, b } => {
                if self.orch.mark_link_recovered(&a, &b) {
                    self.note(format!("link {a}-{b} back in the resource view"));
                    self.journal_event(
                        Severity::Info,
                        JournalKind::LinkRestored,
                        format!("link {a}-{b}"),
                    );
                }
            }
            FaultKind::VnfCrash { node } => self.heal_container(&node),
            // Tolerable degradations: delay spikes ride out on their own,
            // stalls are bridged by the RPC retry schedule.
            FaultKind::LossSpike { .. }
            | FaultKind::DelaySpike { .. }
            | FaultKind::DelayClear { .. }
            | FaultKind::VnfStall { .. }
            | FaultKind::VnfResume { .. } => {}
        }
    }

    /// Link failed (or degraded beyond use): mark it in the resource view
    /// and re-route every chain whose path crossed it, keeping placements.
    fn heal_link(&mut self, a: &str, b: &str) {
        self.orch.mark_link_failed(a, b);
        for chain in self.orch.chains_using_link(a, b) {
            self.recover_chain(&chain, RecoveryAction::Reroute);
        }
    }

    /// Container died: its agent is gone, its residuals are written off,
    /// and every chain with a VNF on it is re-mapped onto survivors and
    /// redeployed over NETCONF.
    fn heal_container(&mut self, container: &str) {
        self.clients.remove(container); // session died with the agent
        self.orch.mark_container_failed(container);
        for chain in self.orch.chains_on_container(container) {
            self.recover_chain(&chain, RecoveryAction::Remap);
        }
    }

    /// Runs one recovery action under a `recovery` span, updating the
    /// recovery counters and latency histogram.
    fn recover_chain(&mut self, chain: &str, action: RecoveryAction) {
        let start = self.sim.now();
        let sp = self.tracer.enter("recovery", start.as_ns());
        let result = match action {
            RecoveryAction::Reroute => self.reroute_deployed(chain),
            RecoveryAction::Remap => self.remap_deployed(chain),
        };
        self.tracer.exit(sp, self.sim.now().as_ns());
        match result {
            Ok(()) => {
                self.recoveries_ctr.inc();
                self.recovery_latency.observe(self.sim.now().since(start));
                self.note(format!("recovered chain {chain} ({})", action.label()));
                self.journal_event(
                    Severity::Info,
                    JournalKind::HealRecovered,
                    format!("chain {chain} ({})", action.label()),
                );
            }
            Err(e) => {
                self.recovery_failures_ctr.inc();
                self.abandon_chain(chain);
                self.note(format!("recovery of chain {chain} failed: {e}"));
                self.journal_event(
                    Severity::Error,
                    JournalKind::HealFailed,
                    format!("chain {chain}: {e}"),
                );
            }
        }
    }

    /// Re-routes a deployed chain around failed links (placement kept),
    /// then re-steers its flows onto the new paths.
    fn reroute_deployed(&mut self, chain: &str) -> Result<(), EscapeError> {
        let mapping = self
            .orch
            .reroute_chain(chain)
            .map_err(|e| EscapeError::MappingFailed(vec![(chain.to_string(), e)]))?;
        let mut dc = self
            .deployed
            .get(chain)
            .cloned()
            .ok_or_else(|| EscapeError::NotFound(format!("chain {chain}")))?;
        dc.mapping = mapping;
        self.resteer(&mut dc)?;
        self.deployed.insert(chain.to_string(), dc);
        Ok(())
    }

    /// Fully re-maps a chain (new placement on surviving containers),
    /// redeploys its VNFs over NETCONF under the original cookie, and
    /// re-steers.
    fn remap_deployed(&mut self, chain: &str) -> Result<(), EscapeError> {
        let sg = self
            .graphs
            .get(chain)
            .cloned()
            .ok_or_else(|| EscapeError::NotFound(format!("service graph of chain {chain}")))?;
        let old = self
            .deployed
            .get(chain)
            .cloned()
            .ok_or_else(|| EscapeError::NotFound(format!("chain {chain}")))?;
        let mapping = self
            .orch
            .remap_chain(&sg, chain)
            .map_err(|e| EscapeError::MappingFailed(vec![(chain.to_string(), e)]))?;
        // Best-effort stop of surviving old instances: their containers
        // may host the replacements too, so don't leak running VNFs.
        for v in &old.vnfs {
            if self.orch.state().container_failed(&v.container) {
                continue; // died with the container
            }
            let vid = v.vnf_id.clone();
            let _ = self.rpc(&v.container, |c| c.stop_vnf(&vid));
        }
        let mut txn = ChainTxn::new(mapping, old.cookie);
        if let Err(e) = self.prepare_vnfs(&sg, &mut txn) {
            // Undo the partial redeploy so nothing keeps running for a
            // chain that is about to be abandoned.
            let mut steps = Vec::new();
            self.roll_back_vnfs(&txn.vnfs, &mut steps);
            return Err(e);
        }
        let mut dc = txn.into_deployed();
        self.resteer(&mut dc)?;
        self.deployed.insert(chain.to_string(), dc);
        Ok(())
    }

    /// Replaces a chain's steering rules atomically (stale rules deleted,
    /// new ones installed at one flush) and waits for the switches.
    fn resteer(&mut self, dc: &mut DeployedChain) -> Result<(), EscapeError> {
        let rules = compile_rules(&self.infra, dc)?;
        dc.rules = rules.len();
        let ctl = self
            .sim
            .node_as_mut::<Controller>(self.infra.controller)
            .expect("controller");
        ctl.component_as_mut::<TrafficSteering>()
            .expect("steering component")
            .resteer_chain(dc.cookie, rules);
        Controller::request_flush(&mut self.sim, self.infra.controller, Time::ZERO);
        self.await_steering()
    }

    /// A chain that could not be recovered: stop whatever VNFs of it
    /// survive (best effort), tear its stale rules out of the switches,
    /// release any reservation still held and forget it. Its service
    /// graph stays cached for a later manual redeploy.
    fn abandon_chain(&mut self, chain: &str) {
        let Some(dc) = self.deployed.remove(chain) else {
            return;
        };
        // Nothing may keep running for a dead chain (leak audit).
        for v in &dc.vnfs {
            if self.orch.state().container_failed(&v.container) {
                continue; // died with the container
            }
            let vid = v.vnf_id.clone();
            let _ = self.rpc(&v.container, |c| c.stop_vnf(&vid));
        }
        self.steering_mut().remove_chain(dc.cookie);
        Controller::request_flush(&mut self.sim, self.infra.controller, Time::ZERO);
        // Usually a no-op (the failed re-map/re-route already released),
        // but a steering failure after a successful re-map leaves the
        // reservation live — drop it here.
        self.orch.release_chain(chain);
    }

    // ---------------- traffic & inspection --------------------------

    /// Installs static ARP entries so `src` can address `dst` directly
    /// (chains steer by IP; ESCAPE pre-provisions ARP like Mininet's
    /// `--arp`).
    fn provision_arp(&mut self, src: &str, dst: &str) -> Result<(), EscapeError> {
        let (dst_mac, dst_ip) = *self
            .infra
            .sap_addr
            .get(dst)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {dst}")))?;
        let src_node = self
            .infra
            .node(src)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {src}")))?;
        self.sim
            .node_as_mut::<Host>(src_node)
            .ok_or_else(|| EscapeError::Invalid(format!("{src} is not a SAP")))?
            .static_arp(dst_ip, dst_mac);
        Ok(())
    }

    /// Starts a paced UDP stream between two SAPs: `count` frames of
    /// `frame_len` bytes, one every `interval_us` microseconds.
    pub fn start_udp(
        &mut self,
        from: &str,
        to: &str,
        frame_len: usize,
        interval_us: u64,
        count: u64,
    ) -> Result<(), EscapeError> {
        self.start_udp_with_sport(from, to, frame_len, interval_us, count, 40_000)
    }

    /// [`Escape::start_udp`] with an explicit UDP source port. The
    /// multi-domain coordinator stamps each chain's wire-identity port
    /// here so gateways can tell co-located chains apart.
    pub fn start_udp_with_sport(
        &mut self,
        from: &str,
        to: &str,
        frame_len: usize,
        interval_us: u64,
        count: u64,
        sport: u16,
    ) -> Result<(), EscapeError> {
        let (_, dst_ip) = *self
            .infra
            .sap_addr
            .get(to)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {to}")))?;
        self.provision_arp(from, to)?;
        let node = self
            .infra
            .node(from)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {from}")))?;
        let host = self
            .sim
            .node_as_mut::<Host>(node)
            .ok_or_else(|| EscapeError::Invalid(format!("{from} is not a SAP")))?;
        host.add_stream(
            dst_ip,
            sport,
            9_000,
            frame_len,
            Time::from_us(interval_us),
            count,
        );
        Host::start_streams(&mut self.sim, node, Time::from_us(1));
        Ok(())
    }

    /// Starts a paced ICMP ping from one SAP to another: `count` echo
    /// requests, one every `interval_us`. The echo *replies* need a
    /// return path, so deploy a chain in each direction first.
    pub fn start_ping(
        &mut self,
        from: &str,
        to: &str,
        interval_us: u64,
        count: u64,
    ) -> Result<(), EscapeError> {
        let (_, dst_ip) = *self
            .infra
            .sap_addr
            .get(to)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {to}")))?;
        self.provision_arp(from, to)?;
        self.provision_arp(to, from)?;
        let node = self
            .infra
            .node(from)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {from}")))?;
        let host = self
            .sim
            .node_as_mut::<Host>(node)
            .ok_or_else(|| EscapeError::Invalid(format!("{from} is not a SAP")))?;
        host.add_ping(dst_ip, Time::from_us(interval_us), count);
        Host::start_streams(&mut self.sim, node, Time::from_us(1));
        Ok(())
    }

    // ---------------- cross-domain gateway hooks --------------------

    /// Marks a SAP as a domain gateway: UDP payloads it receives are
    /// parked in a handoff buffer (with arrival time and original birth
    /// timestamp) for the multi-domain coordinator instead of landing in
    /// the user inbox.
    pub fn set_gateway_sap(&mut self, sap: &str) -> Result<(), EscapeError> {
        let node = self
            .infra
            .node(sap)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {sap}")))?;
        self.sim
            .node_as_mut::<Host>(node)
            .ok_or_else(|| EscapeError::Invalid(format!("{sap} is not a SAP")))?
            .set_gateway(true);
        Ok(())
    }

    /// Takes everything a gateway SAP has received since the last drain.
    pub fn drain_gateway_rx(&mut self, sap: &str) -> Result<Vec<GatewayRx>, EscapeError> {
        let node = self
            .infra
            .node(sap)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {sap}")))?;
        Ok(std::mem::take(
            &mut self
                .sim
                .node_as_mut::<Host>(node)
                .ok_or_else(|| EscapeError::Invalid(format!("{sap} is not a SAP")))?
                .gw_rx,
        ))
    }

    /// Re-originates a handed-off payload from gateway SAP `from` toward
    /// SAP `to` at absolute virtual time `at`, preserving the packet's
    /// original birth timestamp so end-to-end latency spans domains.
    /// `src_port` identifies the chain on the wire: downstream gateways
    /// see the shared gateway SAP as the source IP, so the port is what
    /// keeps chains sharing a gateway path distinguishable.
    /// `at` must not be in this domain's past.
    pub fn gateway_send(
        &mut self,
        from: &str,
        to: &str,
        payload: Vec<u8>,
        born_ns: u64,
        at: Time,
        src_port: u16,
    ) -> Result<(), EscapeError> {
        let (src_mac, src_ip) = *self
            .infra
            .sap_addr
            .get(from)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {from}")))?;
        let (dst_mac, dst_ip) = *self
            .infra
            .sap_addr
            .get(to)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {to}")))?;
        let frame = PacketBuilder::udp(
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            src_port,
            9_000,
            Bytes::from(payload),
        );
        let node = self
            .infra
            .node(from)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {from}")))?;
        let delay = Time::from_ns(at.since(self.sim.now()));
        let host = self
            .sim
            .node_as_mut::<Host>(node)
            .ok_or_else(|| EscapeError::Invalid(format!("{from} is not a SAP")))?;
        host.queue_frame(frame, born_ns);
        Host::flush_queued(&mut self.sim, node, delay);
        Ok(())
    }

    /// Receive-side statistics of a SAP.
    pub fn sap_stats(&self, sap: &str) -> Result<HostStats, EscapeError> {
        let node = self
            .infra
            .node(sap)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {sap}")))?;
        Ok(self
            .sim
            .node_as::<Host>(node)
            .ok_or_else(|| EscapeError::Invalid(format!("{sap} is not a SAP")))?
            .stats
            .clone())
    }

    /// Payloads received by a SAP ("inspect live traffic").
    pub fn sap_inbox(&self, sap: &str) -> Result<Vec<Vec<u8>>, EscapeError> {
        let node = self
            .infra
            .node(sap)
            .ok_or_else(|| EscapeError::NotFound(format!("sap {sap}")))?;
        Ok(self
            .sim
            .node_as::<Host>(node)
            .ok_or_else(|| EscapeError::Invalid(format!("{sap} is not a SAP")))?
            .inbox
            .clone())
    }

    // ---------------- conservation invariants -----------------------

    /// Audits the whole environment for leaks and returns every
    /// violation found (empty = clean). Checked after every soak step:
    ///
    /// * **resource conservation** — per container and per link,
    ///   effective free capacity plus the sum of live-chain reservations
    ///   equals the topology capacity ([`Orchestrator::audit`]);
    /// * **no orphan flow rules** — every cookie on every switch, and
    ///   every cookie tracked by the steering component, belongs to a
    ///   live chain;
    /// * **no orphan VNFs** — every *running* VNF on a live container is
    ///   one a deployed chain put there;
    /// * **no dangling sessions** — every ready NETCONF session points
    ///   at an existing container.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = self.orch.audit();
        let live_cookies: HashMap<u64, &str> = self
            .deployed
            .iter()
            .map(|(name, dc)| (dc.cookie, name.as_str()))
            .collect();

        // Flow tables: no rule without a live chain's cookie.
        let mut switches: Vec<(&String, &u64)> = self.infra.dpid.iter().collect();
        switches.sort();
        for (name, _) in switches {
            let Some(node) = self.infra.node(name) else {
                continue;
            };
            let Some(sw) = self.sim.peek_node_as::<Switch>(node) else {
                continue;
            };
            for e in sw.table.entries() {
                if e.cookie != 0 && !live_cookies.contains_key(&e.cookie) {
                    violations.push(format!(
                        "switch {name}: flow rule with cookie {} but no live chain",
                        e.cookie
                    ));
                }
            }
        }

        // Steering component: every tracked chain id must be live.
        if let Some(st) = self
            .sim
            .node_as::<Controller>(self.infra.controller)
            .and_then(|c| c.component_as::<TrafficSteering>())
        {
            for id in st.tracked_chains() {
                if !live_cookies.contains_key(&id) {
                    violations.push(format!(
                        "steering: rules tracked for cookie {id} but no live chain"
                    ));
                }
            }
        }

        // Containers: every running VNF belongs to a deployed chain.
        let expected: HashSet<(&str, &str)> = self
            .deployed
            .values()
            .flat_map(|dc| dc.vnfs.iter())
            .map(|v| (v.container.as_str(), v.vnf_id.as_str()))
            .collect();
        let mut containers: Vec<&String> = self.infra.netconf_conn.keys().collect();
        containers.sort();
        for name in containers {
            if self.orch.state().container_failed(name) {
                continue; // crashed: its husk is unreachable
            }
            let Some(node) = self.infra.node(name) else {
                continue;
            };
            let Some(c) = self.sim.peek_node_as::<VnfContainer>(node) else {
                continue;
            };
            for slot in &c.host().vnfs {
                if slot.status == VnfStatus::Running
                    && !expected.contains(&(name.as_str(), slot.id.as_str()))
                {
                    violations.push(format!(
                        "container {name}: vnf {} running outside any embedding",
                        slot.id
                    ));
                }
            }
        }

        // Sessions: every ready client names an existing container.
        let mut sessions: Vec<&String> = self.clients.keys().collect();
        sessions.sort();
        for name in sessions {
            if self.clients[name].ready() && !self.infra.netconf_conn.contains_key(name) {
                violations.push(format!("netconf: dangling session to {name}"));
            }
        }
        violations
    }

    /// A deterministic, byte-comparable digest of all externally
    /// observable deployment state: the orchestrator's effective
    /// resource view, every switch's flow table, every live container's
    /// running VNFs (with their bindings) and the ready NETCONF
    /// sessions. Two environments with equal fingerprints hold the same
    /// chains. A rolled-back deploy must leave the fingerprint
    /// byte-identical to its pre-deploy value.
    pub fn state_fingerprint(&self) -> String {
        let mut out = String::new();
        let st = self.orch.state();
        for c in st.containers_sorted() {
            out.push_str(&format!(
                "cpu {c} {:.6} mem {}\n",
                st.effective_cpu_of(&c),
                st.effective_mem_of(&c)
            ));
        }
        let mut links: Vec<&(String, String)> = st.bw.keys().collect();
        links.sort();
        for l in links {
            out.push_str(&format!(
                "bw {}-{} {:.6}\n",
                l.0,
                l.1,
                st.effective_bw_of(&l.0, &l.1)
            ));
        }
        let mut switches: Vec<(&String, &u64)> = self.infra.dpid.iter().collect();
        switches.sort();
        for (name, _) in switches {
            let Some(sw) = self
                .infra
                .node(name)
                .and_then(|n| self.sim.peek_node_as::<Switch>(n))
            else {
                continue;
            };
            let mut flows: Vec<String> = sw
                .table
                .entries()
                .iter()
                .map(|e| {
                    format!(
                        "flow {name} cookie={} prio={} match={:?} actions={:?}\n",
                        e.cookie, e.priority, e.match_, e.actions
                    )
                })
                .collect();
            flows.sort();
            for f in flows {
                out.push_str(&f);
            }
        }
        let mut containers: Vec<&String> = self.infra.netconf_conn.keys().collect();
        containers.sort();
        for name in containers {
            if self.orch.state().container_failed(name) {
                continue;
            }
            let Some(c) = self
                .infra
                .node(name)
                .and_then(|n| self.sim.peek_node_as::<VnfContainer>(n))
            else {
                continue;
            };
            for slot in &c.host().vnfs {
                if slot.status != VnfStatus::Running {
                    continue;
                }
                let mut bindings: Vec<String> = slot
                    .bindings
                    .iter()
                    .map(|(dev, b)| format!("{dev}:{b:?}"))
                    .collect();
                bindings.sort();
                out.push_str(&format!(
                    "vnf {name} {} {} [{}]\n",
                    slot.id,
                    slot.vnf_type,
                    bindings.join(", ")
                ));
            }
        }
        let mut sessions: Vec<&String> = self
            .clients
            .iter()
            .filter(|(_, c)| c.ready())
            .map(|(n, _)| n)
            .collect();
        sessions.sort();
        for s in sessions {
            out.push_str(&format!("session {s}\n"));
        }
        out
    }

    /// Live VNF state over NETCONF (`getVNFInfo`) — the Clicky view:
    /// returns (handler path, value) pairs of the named chain VNF.
    pub fn monitor_vnf(
        &mut self,
        chain: &str,
        vnf_name: &str,
    ) -> Result<Vec<(String, String)>, EscapeError> {
        let (container, vnf_id) = {
            let dc = self
                .deployed
                .get(chain)
                .ok_or_else(|| EscapeError::NotFound(format!("chain {chain}")))?;
            let v = dc
                .vnfs
                .iter()
                .find(|v| v.vnf_name == vnf_name)
                .ok_or_else(|| EscapeError::NotFound(format!("vnf {vnf_name} in {chain}")))?;
            (v.container.clone(), v.vnf_id.clone())
        };
        let vid = vnf_id.clone();
        let reply = self.rpc(&container, |c| c.get_vnf_info(Some(&vid)))?;
        let ReplyBody::Data(data) = &reply.body else {
            return Err(EscapeError::Netconf("getVNFInfo returned no data".into()));
        };
        let mut out = Vec::new();
        for vnfs in data {
            for vnf in vnfs.find_all("vnf") {
                if vnf.child_text("id") == Some(vnf_id.as_str()) {
                    out.push((
                        "status".to_string(),
                        vnf.child_text("status").unwrap_or("").to_string(),
                    ));
                    for h in vnf.find_all("handler") {
                        out.push((
                            h.child_text("name").unwrap_or("").to_string(),
                            h.child_text("value").unwrap_or("").to_string(),
                        ));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Compiles steering rules for a deployed chain: on every switch of every
/// segment, match the chain's traffic (by destination SAP IP, ingress
/// port, and — absent an upstream NAT — source SAP IP) and forward toward
/// the next node.
fn compile_rules(infra: &Infra, dc: &DeployedChain) -> Result<Vec<SteeringRule>, EscapeError> {
    let hops = &dc.mapping.chain.hops;
    let src_sap = hops.first().unwrap();
    let dst_sap = hops.last().unwrap();
    let (_, src_ip) = *infra
        .sap_addr
        .get(src_sap)
        .ok_or_else(|| EscapeError::NotFound(format!("sap {src_sap}")))?;
    let (_, dst_ip) = *infra
        .sap_addr
        .get(dst_sap)
        .ok_or_else(|| EscapeError::NotFound(format!("sap {dst_sap}")))?;

    // Does a NAT-ish hop precede segment k? (NAT rewrites nw_src.)
    let nat_before: Vec<bool> = {
        let mut v = Vec::with_capacity(dc.mapping.segments.len());
        let mut seen_nat = false;
        v.push(seen_nat);
        for dv in &dc.vnfs {
            // dv sits between segment i and i+1 in placement order.
            seen_nat = seen_nat || dv.vnf_type == "nat";
            v.push(seen_nat);
        }
        v
    };

    // Map VNF name -> DeployedVnf for port lookups.
    let by_name: HashMap<&str, &DeployedVnf> =
        dc.vnfs.iter().map(|v| (v.vnf_name.as_str(), v)).collect();

    let mut rules = Vec::new();
    for (k, seg) in dc.mapping.segments.iter().enumerate() {
        if seg.nodes.len() < 3 {
            // [loc] (co-located) or [loc, loc2]? Two-node segments would
            // mean SAP adjacent to container, which Infra::build rejects,
            // so only the co-located single-node case appears here.
            continue;
        }
        let hop_from = &hops[k];
        let hop_to = &hops[k + 1];
        for i in 1..seg.nodes.len() - 1 {
            let sw = &seg.nodes[i];
            let prev = &seg.nodes[i - 1];
            let next = &seg.nodes[i + 1];
            let dpid = *infra
                .dpid
                .get(sw)
                .ok_or_else(|| EscapeError::Invalid(format!("{sw} is not a switch")))?;
            let in_port = if i == 1 && by_name.contains_key(hop_from.as_str()) {
                // Previous node is the container hosting hop_from.
                *by_name[hop_from.as_str()]
                    .switch_ports
                    .get(&1)
                    .ok_or_else(|| EscapeError::Steering(format!("{hop_from} egress unbound")))?
            } else {
                *infra
                    .switch_port
                    .get(&(sw.clone(), prev.clone()))
                    .ok_or_else(|| EscapeError::Steering(format!("no port {sw} -> {prev}")))?
            };
            let out_port = if i == seg.nodes.len() - 2 && by_name.contains_key(hop_to.as_str()) {
                *by_name[hop_to.as_str()]
                    .switch_ports
                    .get(&0)
                    .ok_or_else(|| EscapeError::Steering(format!("{hop_to} ingress unbound")))?
            } else {
                *infra
                    .switch_port
                    .get(&(sw.clone(), next.clone()))
                    .ok_or_else(|| EscapeError::Steering(format!("no port {sw} -> {next}")))?
            };
            let mut m = Match::any()
                .with_in_port(in_port)
                .with_dl_type(0x0800)
                .with_nw_dst(dst_ip, 32);
            if !nat_before[k] {
                m = m.with_nw_src(src_ip, 32);
            }
            rules.push(SteeringRule {
                dpid,
                match_: m,
                priority: 500,
                actions: vec![Action::out(out_port)],
                idle_timeout: 0,
                hard_timeout: 0,
                chain_id: dc.cookie,
            });
        }
    }
    Ok(rules)
}
