//! Structured event journal: a bounded, severity-tagged ring of typed
//! operational events stamped on the virtual clock.
//!
//! The free-form `Escape::note` trace stays the determinism witness it
//! always was; the journal runs alongside it with *typed* entries
//! (kind + severity + detail) so operators and tools can filter and
//! stream without parsing prose. Like the sampler and the netem packet
//! trace, the ring counts its own evictions (`escape.journal_evicted`)
//! so silent truncation is observable.
//!
//! Timestamps come from the simulator's virtual clock, which makes the
//! journal deterministic: two same-seed runs export byte-identical
//! JSON-lines documents.

use std::collections::VecDeque;

use escape_json::Value;
use escape_telemetry::{Counter, Registry};

/// How loud an event is. `Warn` marks degraded-but-handled situations
/// (rollback, admission rejection, heal retry); `Error` marks outcomes
/// the environment could not repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened. One variant per operational decision site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    DeployCommitted,
    DeployRolledBack,
    Teardown,
    AdmissionQueued,
    AdmissionRejected,
    AdmissionDropped,
    FaultInjected,
    LinkRestored,
    HealRecovered,
    HealFailed,
    HealEscalated,
    SlaFlip,
    CacheInvalidationStorm,
    GatewayDown,
    GatewayRestored,
    ChainRestitched,
    ChainAbandoned,
    MalformedReply,
}

impl JournalKind {
    pub fn label(&self) -> &'static str {
        match self {
            JournalKind::DeployCommitted => "deploy-committed",
            JournalKind::DeployRolledBack => "deploy-rolled-back",
            JournalKind::Teardown => "teardown",
            JournalKind::AdmissionQueued => "admission-queued",
            JournalKind::AdmissionRejected => "admission-rejected",
            JournalKind::AdmissionDropped => "admission-dropped",
            JournalKind::FaultInjected => "fault-injected",
            JournalKind::LinkRestored => "link-restored",
            JournalKind::HealRecovered => "heal-recovered",
            JournalKind::HealFailed => "heal-failed",
            JournalKind::HealEscalated => "heal-escalated",
            JournalKind::SlaFlip => "sla-flip",
            JournalKind::CacheInvalidationStorm => "cache-invalidation-storm",
            JournalKind::GatewayDown => "gateway-down",
            JournalKind::GatewayRestored => "gateway-restored",
            JournalKind::ChainRestitched => "chain-restitched",
            JournalKind::ChainAbandoned => "chain-abandoned",
            JournalKind::MalformedReply => "malformed-reply",
        }
    }
}

impl std::fmt::Display for JournalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Virtual-clock timestamp.
    pub at_ns: u64,
    pub severity: Severity,
    pub kind: JournalKind,
    /// Human-readable specifics ("chain demo", "link s0-s1 loss 0.10").
    pub detail: String,
}

impl JournalEvent {
    pub fn json_value(&self) -> Value {
        Value::obj()
            .set("at_ns", self.at_ns)
            .set("severity", self.severity.label())
            .set("kind", self.kind.label())
            .set("detail", self.detail.as_str())
    }

    /// One compact JSON line (no trailing newline).
    pub fn json_line(&self) -> String {
        self.json_value().to_string()
    }
}

impl std::fmt::Display for JournalEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}ns] {} {}: {}",
            self.at_ns, self.severity, self.kind, self.detail
        )
    }
}

/// Bounded ring of [`JournalEvent`]s with a monotonic sequence cursor.
pub struct Journal {
    cap: usize,
    entries: VecDeque<JournalEvent>,
    evicted: u64,
    evicted_ctr: Counter,
}

/// Default journal capacity (entries).
pub const DEFAULT_JOURNAL_CAP: usize = 4_096;

impl Journal {
    /// Builds a journal and registers its eviction counter
    /// (`escape.journal_evicted`) on `registry`.
    pub fn new(registry: &Registry, cap: usize) -> Journal {
        assert!(cap > 0, "journal capacity must be positive");
        Journal {
            cap,
            entries: VecDeque::new(),
            evicted: 0,
            evicted_ctr: registry.counter("escape.journal_evicted"),
        }
    }

    pub fn record(&mut self, at_ns: u64, severity: Severity, kind: JournalKind, detail: String) {
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.evicted += 1;
            self.evicted_ctr.inc();
        }
        self.entries.push_back(JournalEvent {
            at_ns,
            severity,
            kind,
            detail,
        });
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries have been dropped off the front of the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Sequence number one past the newest entry. Monotonic over the
    /// journal's whole life (evictions included), so it works as a
    /// resumable cursor for streaming consumers.
    pub fn seq_end(&self) -> u64 {
        self.evicted + self.entries.len() as u64
    }

    pub fn entries(&self) -> impl Iterator<Item = &JournalEvent> {
        self.entries.iter()
    }

    /// Entries with sequence number `>= seq` that are still in the
    /// ring. A consumer that fell behind the eviction horizon simply
    /// gets everything retained (the gap shows up in `evicted()`).
    pub fn events_since(&self, seq: u64) -> impl Iterator<Item = &JournalEvent> {
        let skip = seq.saturating_sub(self.evicted) as usize;
        self.entries.iter().skip(skip.min(self.entries.len()))
    }

    /// The whole retained journal as JSON lines (one event per line,
    /// trailing newline after each).
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(cap: usize) -> (Registry, Journal) {
        let r = Registry::new();
        let j = Journal::new(&r, cap);
        (r, j)
    }

    #[test]
    fn ring_evicts_and_counts() {
        let (r, mut j) = j(2);
        for i in 0..5u64 {
            j.record(i, Severity::Info, JournalKind::Teardown, format!("c{i}"));
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.evicted(), 3);
        assert_eq!(j.seq_end(), 5);
        assert_eq!(r.snapshot().counter("escape.journal_evicted", &[]), Some(3));
        let kept: Vec<&str> = j.entries().map(|e| e.detail.as_str()).collect();
        assert_eq!(kept, vec!["c3", "c4"]);
    }

    #[test]
    fn events_since_is_a_resumable_cursor() {
        let (_r, mut j) = j(3);
        for i in 0..5u64 {
            j.record(
                i * 10,
                Severity::Info,
                JournalKind::DeployCommitted,
                format!("e{i}"),
            );
        }
        // Ring holds e2..e4 (seq 2..5); cursor 3 sees e3, e4.
        let tail: Vec<&str> = j.events_since(3).map(|e| e.detail.as_str()).collect();
        assert_eq!(tail, vec!["e3", "e4"]);
        // A cursor behind the eviction horizon gets everything retained.
        let all: Vec<&str> = j.events_since(0).map(|e| e.detail.as_str()).collect();
        assert_eq!(all, vec!["e2", "e3", "e4"]);
        // A cursor at the end sees nothing.
        assert_eq!(j.events_since(j.seq_end()).count(), 0);
    }

    #[test]
    fn json_lines_are_compact_and_typed() {
        let (_r, mut j) = j(8);
        j.record(
            1_500,
            Severity::Warn,
            JournalKind::DeployRolledBack,
            "chain demo: netconf phase".into(),
        );
        let lines = j.json_lines();
        assert_eq!(lines.lines().count(), 1);
        let doc = escape_json::Value::parse(lines.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("at_ns").unwrap().as_u64(), Some(1_500));
        assert_eq!(doc.get("severity").unwrap().as_str(), Some("warn"));
        assert_eq!(
            doc.get("kind").unwrap().as_str(),
            Some("deploy-rolled-back")
        );
        assert!(doc
            .get("detail")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("demo"));
    }
}
