//! # escape-catalog
//!
//! The built-in VNF catalog — "a built-in set of useful VNFs implemented
//! in Click" (paper §2).
//!
//! Every catalog entry is a Click configuration *template* with named
//! parameters (`{{param}}` placeholders), a port convention and default
//! resource requirements. The orchestrator resolves a [`escape_sg::VnfReq`]
//! by type name, renders the template (applying any per-instance
//! overrides) and ships the resulting Click text to the container's
//! NETCONF agent via `initiateVNF`.
//!
//! Port convention: chain traffic enters device **0** and leaves device
//! **1**; reverse-path traffic enters 1 and leaves 0. The load balancer
//! adds devices 2.. for its extra backends.

use escape_click::{Registry, Router};
use std::collections::HashMap;

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct VnfTemplate {
    /// Type name used in service graphs (e.g. `"firewall"`).
    pub name: &'static str,
    /// Human description for the GUI / docs.
    pub description: &'static str,
    /// VNF container ports the rendered config uses.
    pub ports: u16,
    /// Default CPU request (cores).
    pub default_cpu: f64,
    /// Default memory request (MB).
    pub default_mem_mb: u64,
    /// Click config with `{{param}}` placeholders.
    pub template: &'static str,
    /// (parameter, default value) pairs.
    pub params: &'static [(&'static str, &'static str)],
}

/// Catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    UnknownType(String),
    UnknownParam { vnf: String, param: String },
    Unresolved { vnf: String, placeholder: String },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownType(t) => write!(f, "unknown VNF type {t:?}"),
            CatalogError::UnknownParam { vnf, param } => {
                write!(f, "VNF {vnf:?} has no parameter {param:?}")
            }
            CatalogError::Unresolved { vnf, placeholder } => {
                write!(f, "VNF {vnf:?}: unresolved placeholder {placeholder:?}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// The VNF catalog.
pub struct Catalog {
    entries: Vec<VnfTemplate>,
}

impl Catalog {
    /// The standard catalog shipped with ESCAPE-RS.
    pub fn standard() -> Catalog {
        Catalog {
            entries: standard_entries(),
        }
    }

    /// All type names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.entries.iter().map(|e| e.name).collect();
        v.sort_unstable();
        v
    }

    /// Looks up an entry.
    pub fn get(&self, name: &str) -> Option<&VnfTemplate> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Adds or replaces an entry (VNF developers extend the catalog).
    pub fn register(&mut self, entry: VnfTemplate) {
        self.entries.retain(|e| e.name != entry.name);
        self.entries.push(entry);
    }

    /// Renders a type's Click config with parameter overrides.
    pub fn render(
        &self,
        name: &str,
        overrides: &[(String, String)],
    ) -> Result<String, CatalogError> {
        let entry = self
            .get(name)
            .ok_or_else(|| CatalogError::UnknownType(name.to_string()))?;
        let mut values: HashMap<&str, String> = entry
            .params
            .iter()
            .map(|(k, v)| (*k, v.to_string()))
            .collect();
        for (k, v) in overrides {
            let key = entry
                .params
                .iter()
                .find(|(p, _)| p == k)
                .map(|(p, _)| *p)
                .ok_or_else(|| CatalogError::UnknownParam {
                    vnf: name.to_string(),
                    param: k.clone(),
                })?;
            values.insert(key, v.clone());
        }
        let mut out = entry.template.to_string();
        for (k, v) in &values {
            out = out.replace(&format!("{{{{{k}}}}}"), v);
        }
        if let Some(start) = out.find("{{") {
            let rest = &out[start..];
            let end = rest.find("}}").map(|e| e + 2).unwrap_or(rest.len());
            return Err(CatalogError::Unresolved {
                vnf: name.to_string(),
                placeholder: rest[..end].to_string(),
            });
        }
        Ok(out)
    }

    /// Renders and compiles in one step — what the agent instrumentation
    /// does on `initiateVNF`.
    pub fn build_router(
        &self,
        name: &str,
        overrides: &[(String, String)],
        registry: &Registry,
        seed: u64,
    ) -> Result<Router, String> {
        let cfg = self.render(name, overrides).map_err(|e| e.to_string())?;
        Router::from_config(&cfg, registry, seed).map_err(|e| e.to_string())
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::standard()
    }
}

fn standard_entries() -> Vec<VnfTemplate> {
    vec![
        VnfTemplate {
            name: "bridge",
            description: "Transparent bidirectional forwarder with packet counters",
            ports: 2,
            default_cpu: 0.2,
            default_mem_mb: 64,
            template: "\
FromDevice(0) -> fwd :: Counter -> ToDevice(1);\n\
FromDevice(1) -> rev :: Counter -> ToDevice(0);\n",
            params: &[],
        },
        VnfTemplate {
            name: "firewall",
            description: "Stateless IP firewall (IPFilter rules, first match wins, default deny)",
            ports: 2,
            default_cpu: 1.0,
            default_mem_mb: 256,
            template: "\
FromDevice(0) -> fw :: IPFilter({{rules}}) -> ToDevice(1);\n\
FromDevice(1) -> fw_rev :: IPFilter({{rules}}) -> ToDevice(0);\n",
            params: &[("rules", "allow all")],
        },
        VnfTemplate {
            name: "rate_limiter",
            description: "Token-bucket bandwidth shaper on the forward path",
            ports: 2,
            default_cpu: 0.5,
            default_mem_mb: 128,
            template: "\
FromDevice(0) -> shaper :: BandwidthShaper({{rate_bps}}, {{queue}}) -> ToDevice(1);\n\
FromDevice(1) -> rev :: Counter -> ToDevice(0);\n",
            params: &[("rate_bps", "10000000"), ("queue", "100")],
        },
        VnfTemplate {
            name: "dpi",
            description: "Payload string matcher; hits are counted and dropped",
            ports: 2,
            default_cpu: 2.0,
            default_mem_mb: 512,
            template: "\
FromDevice(0) -> dpi :: StringMatcher({{pattern}});\n\
dpi [0] -> alerts :: Counter -> Discard;\n\
dpi [1] -> ToDevice(1);\n\
FromDevice(1) -> rev :: Counter -> ToDevice(0);\n",
            params: &[("pattern", "\"attack\"")],
        },
        VnfTemplate {
            name: "nat",
            description: "Stateful source NAT (IPRewriter)",
            ports: 2,
            default_cpu: 1.0,
            default_mem_mb: 256,
            template: "\
FromDevice(0) -> [0] nat :: IPRewriter({{external_ip}}); nat [0] -> ToDevice(1);\n\
FromDevice(1) -> [1] nat; nat [1] -> ToDevice(0);\n",
            params: &[("external_ip", "203.0.113.1")],
        },
        VnfTemplate {
            name: "load_balancer",
            description: "Flow-hash load balancer over two backends (devices 1 and 2)",
            ports: 3,
            default_cpu: 0.5,
            default_mem_mb: 128,
            template: "\
FromDevice(0) -> lb :: HashSwitch(2);\n\
lb [0] -> ToDevice(1);\n\
lb [1] -> ToDevice(2);\n\
FromDevice(1) -> merge :: Counter -> ToDevice(0);\n\
FromDevice(2) -> merge2 :: Counter -> ToDevice(0);\n",
            params: &[],
        },
        VnfTemplate {
            name: "monitor",
            description: "Per-direction packet/byte/rate counters (the Clicky demo VNF)",
            ports: 2,
            default_cpu: 0.2,
            default_mem_mb: 64,
            template: "\
FromDevice(0) -> in_cnt :: Counter -> ToDevice(1);\n\
FromDevice(1) -> out_cnt :: Counter -> ToDevice(0);\n",
            params: &[],
        },
        VnfTemplate {
            name: "delay",
            description: "Fixed artificial delay in both directions",
            ports: 2,
            default_cpu: 0.3,
            default_mem_mb: 64,
            template: "\
FromDevice(0) -> d :: DelayShaper({{delay_us}}) -> ToDevice(1);\n\
FromDevice(1) -> d_rev :: DelayShaper({{delay_us}}) -> ToDevice(0);\n",
            params: &[("delay_us", "1000")],
        },
        VnfTemplate {
            name: "qos_marker",
            description: "Rewrites the IP DSCP field on the forward path",
            ports: 2,
            default_cpu: 0.3,
            default_mem_mb: 64,
            template: "\
FromDevice(0) -> CheckIPHeader -> SetIPDSCP({{dscp}}) -> ToDevice(1);\n\
FromDevice(1) -> rev :: Counter -> ToDevice(0);\n",
            params: &[("dscp", "46")],
        },
        VnfTemplate {
            name: "sampler",
            description: "Keeps a random fraction of forward-path packets",
            ports: 2,
            default_cpu: 0.2,
            default_mem_mb: 64,
            template: "\
FromDevice(0) -> s :: RandomSample({{keep}}) -> ToDevice(1);\n\
FromDevice(1) -> rev :: Counter -> ToDevice(0);\n",
            params: &[("keep", "0.5")],
        },
        VnfTemplate {
            name: "ttl_guard",
            description: "Validates IP headers and decrements TTL (router hygiene)",
            ports: 2,
            default_cpu: 0.4,
            default_mem_mb: 64,
            template: "\
FromDevice(0) -> chk :: CheckIPHeader -> ttl :: DecIPTTL -> ToDevice(1);\n\
FromDevice(1) -> chk_rev :: CheckIPHeader -> ttl_rev :: DecIPTTL -> ToDevice(0);\n",
            params: &[],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_advertised_types() {
        let c = Catalog::standard();
        for name in [
            "bridge",
            "firewall",
            "rate_limiter",
            "dpi",
            "nat",
            "load_balancer",
            "monitor",
            "delay",
            "qos_marker",
            "sampler",
            "ttl_guard",
        ] {
            assert!(c.get(name).is_some(), "missing {name}");
        }
        assert_eq!(c.names().len(), 11);
    }

    #[test]
    fn every_default_config_compiles() {
        let c = Catalog::standard();
        let reg = Registry::standard();
        for name in c.names() {
            let router = c.build_router(name, &[], &reg, 0);
            assert!(router.is_ok(), "{name} failed: {:?}", router.err());
            // The rendered config must expose the declared ports.
            let r = router.unwrap();
            let entry = c.get(name).unwrap();
            assert_eq!(
                r.input_devices().len(),
                entry.ports as usize,
                "{name}: FromDevice count != declared ports"
            );
        }
    }

    #[test]
    fn overrides_are_substituted() {
        let c = Catalog::standard();
        let cfg = c
            .render(
                "firewall",
                &[("rules".to_string(), "deny udp, allow all".to_string())],
            )
            .unwrap();
        assert!(cfg.contains("IPFilter(deny udp, allow all)"));
        // And it still compiles.
        Router::from_config(&cfg, &Registry::standard(), 0).unwrap();
    }

    #[test]
    fn unknown_type_and_param_are_errors() {
        let c = Catalog::standard();
        assert_eq!(
            c.render("quantum_fw", &[]),
            Err(CatalogError::UnknownType("quantum_fw".into()))
        );
        let e = c.render("firewall", &[("wrong".to_string(), "x".to_string())]);
        assert!(matches!(e, Err(CatalogError::UnknownParam { .. })));
    }

    #[test]
    fn custom_registration_replaces() {
        let mut c = Catalog::standard();
        c.register(VnfTemplate {
            name: "firewall",
            description: "patched",
            ports: 2,
            default_cpu: 9.0,
            default_mem_mb: 1,
            template: "FromDevice(0) -> ToDevice(1);\nFromDevice(1) -> ToDevice(0);\n",
            params: &[],
        });
        assert_eq!(c.get("firewall").unwrap().description, "patched");
        assert_eq!(c.names().len(), 11, "replaced, not appended");
    }

    #[test]
    fn unresolved_placeholder_reported() {
        let mut c = Catalog::standard();
        c.register(VnfTemplate {
            name: "broken",
            description: "has a placeholder with no param",
            ports: 1,
            default_cpu: 1.0,
            default_mem_mb: 1,
            template: "FromDevice(0) -> BandwidthShaper({{missing}}) -> ToDevice(0);",
            params: &[],
        });
        let e = c.render("broken", &[]).unwrap_err();
        assert!(matches!(e, CatalogError::Unresolved { .. }));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn rendered_firewall_actually_filters() {
        use bytes::Bytes;
        use escape_netem::Time;
        use escape_packet::{MacAddr, Packet, PacketBuilder};
        use std::net::Ipv4Addr;
        let c = Catalog::standard();
        let mut r = c
            .build_router(
                "firewall",
                &[(
                    "rules".to_string(),
                    "deny dst port 23, allow all".to_string(),
                )],
                &Registry::standard(),
                1,
            )
            .unwrap();
        let mk = |dport: u16| {
            let data = PacketBuilder::udp(
                MacAddr::from_id(1),
                MacAddr::from_id(2),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1,
                dport,
                Bytes::from_static(b"x"),
            );
            Packet {
                data,
                id: 0,
                born_ns: 0,
            }
        };
        assert_eq!(r.push_external(0, mk(80), Time::ZERO).external.len(), 1);
        assert_eq!(r.push_external(0, mk(23), Time::ZERO).external.len(), 0);
        assert_eq!(r.read_handler("fw.dropped").unwrap(), "1");
    }
}
