//! The typed control-plane protocol: requests, responses and structured
//! errors, all round-tripping through `escape-json`.
//!
//! Every message on the wire is one length-prefixed frame (see
//! [`crate::frame`]) holding a single JSON object. Requests carry a
//! `"verb"` discriminator, responses a `"kind"`, errors a `"code"` — so
//! a client can always dispatch without guessing at field presence.

use escape_json::Value;

/// Exposition format for the `metrics` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    Prometheus,
    Json,
}

impl MetricsFormat {
    fn label(self) -> &'static str {
        match self {
            MetricsFormat::Prometheus => "prometheus",
            MetricsFormat::Json => "json",
        }
    }

    fn parse(s: &str) -> Result<MetricsFormat, CtlError> {
        match s {
            "prometheus" => Ok(MetricsFormat::Prometheus),
            "json" => Ok(MetricsFormat::Json),
            other => Err(CtlError::Invalid {
                reason: format!("unknown metrics format {other:?}"),
            }),
        }
    }
}

/// Text format of a shipped service-graph document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgFormat {
    Dsl,
    Json,
}

impl SgFormat {
    fn label(self) -> &'static str {
        match self {
            SgFormat::Dsl => "dsl",
            SgFormat::Json => "json",
        }
    }

    fn parse(s: &str) -> Result<SgFormat, CtlError> {
        match s {
            "dsl" => Ok(SgFormat::Dsl),
            "json" => Ok(SgFormat::Json),
            other => Err(CtlError::Invalid {
                reason: format!("unknown service-graph format {other:?}"),
            }),
        }
    }
}

/// A stream a `watch` subscriber can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WatchTopic {
    /// Structured journal events (deploys, faults, heals, ...).
    Events,
    /// Per-sample metric deltas from the time-series sampler.
    MetricsDeltas,
    /// SLA verdict changes from the flight recorder.
    Sla,
}

impl WatchTopic {
    pub const ALL: [WatchTopic; 3] = [
        WatchTopic::Events,
        WatchTopic::MetricsDeltas,
        WatchTopic::Sla,
    ];

    pub fn label(self) -> &'static str {
        match self {
            WatchTopic::Events => "events",
            WatchTopic::MetricsDeltas => "metrics-deltas",
            WatchTopic::Sla => "sla",
        }
    }

    pub fn parse(s: &str) -> Result<WatchTopic, CtlError> {
        match s {
            "events" => Ok(WatchTopic::Events),
            "metrics-deltas" => Ok(WatchTopic::MetricsDeltas),
            "sla" => Ok(WatchTopic::Sla),
            other => Err(CtlError::Invalid {
                reason: format!("unknown watch topic {other:?}"),
            }),
        }
    }
}

impl std::fmt::Display for WatchTopic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A command sent to the daemon. The file-based verbs (`deploy`,
/// `fault`) ship the document *contents*, not a path — the daemon never
/// reads the client's filesystem.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlRequest {
    /// Live chains, virtual time, counters.
    Status,
    /// Deploy a service graph (transactional, admission-gated).
    Deploy { sg: String, format: SgFormat },
    /// Tear one chain down (all-or-nothing).
    Teardown { chain: String },
    /// Advance virtual time with self-healing.
    RunFor { ms: u64 },
    /// Arm a JSON fault plan.
    Fault { plan: String },
    /// Run one healing pass now.
    Heal,
    /// Telemetry exposition.
    Metrics { format: MetricsFormat },
    /// Per-chain SLA verdicts from the flight recorder.
    Sla,
    /// Delta-encoded sampler series (JSON document).
    Series,
    /// The retained event journal as JSON lines.
    Journal,
    /// Subscribe this connection to server-push [`CtlEvent`] frames.
    /// After the [`CtlResponse::Watching`] ack, the daemon streams event
    /// frames until the client hangs up (or falls too far behind).
    Watch { topics: Vec<WatchTopic> },
    /// Start a paced UDP stream between two SAPs.
    Traffic {
        from: String,
        to: String,
        frames: u64,
        len: u64,
        interval_us: u64,
    },
    /// Graceful daemon shutdown (teardown + telemetry flush).
    Shutdown,
}

/// One live chain as reported by `status` and `deploy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainInfo {
    pub name: String,
    pub cookie: u64,
    pub rules: u64,
    /// `(vnf_name, container)` in placement order.
    pub vnfs: Vec<(String, String)>,
}

/// The `status` document. Everything here derives from virtual time and
/// deterministic counters: same seed + same command script ⇒
/// byte-identical encoding.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatusInfo {
    pub now_ns: u64,
    pub chains: Vec<ChainInfo>,
    pub pending_admissions: u64,
    pub utilization: f64,
    pub deploys: u64,
    pub deploy_failures: u64,
    pub teardowns: u64,
    pub recoveries: u64,
    pub recovery_failures: u64,
    pub rollbacks: u64,
    pub admission_rejected: u64,
    pub events: u64,
}

/// What a completed deploy reports (virtual-time phase latencies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployInfo {
    pub chains: Vec<ChainInfo>,
    pub total_ns: u64,
    pub netconf_ns: u64,
    pub steering_ns: u64,
}

/// One chain's SLA verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaInfo {
    pub chain: String,
    pub pass: bool,
    pub delivered: u64,
    pub dropped: u64,
    pub loss: f64,
    pub max_latency_ns: Option<u64>,
    pub violations: Vec<String>,
}

/// What the daemon answers. Every request gets exactly one response
/// frame; failures are [`CtlResponse::Error`] with a typed
/// [`CtlError`] — the connection stays open either way.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlResponse {
    Status(StatusInfo),
    Deployed(DeployInfo),
    /// Admission parked the deploy on the queue; it retries as virtual
    /// time advances.
    Queued {
        position: u64,
        utilization: f64,
    },
    ToreDown {
        chain: String,
    },
    Advanced {
        now_ns: u64,
    },
    FaultArmed {
        events: u64,
    },
    Healed {
        recoveries: u64,
        failures: u64,
    },
    Metrics {
        format: MetricsFormat,
        body: String,
    },
    Sla(Vec<SlaInfo>),
    /// Sampler series document (JSON text).
    Series {
        body: String,
    },
    /// Journal export (JSON lines).
    Journal {
        body: String,
    },
    /// `watch` acknowledged; [`CtlEvent`] frames follow on this
    /// connection.
    Watching {
        topics: Vec<WatchTopic>,
    },
    TrafficStarted,
    ShuttingDown,
    Error(CtlError),
}

/// One server-push frame on a watching connection. Carries an `"event"`
/// discriminator so a subscriber can dispatch without guessing — and so
/// these frames can never be confused with `"kind"`-tagged responses.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlEvent {
    /// One structured journal entry.
    Journal {
        at_ns: u64,
        severity: String,
        kind: String,
        detail: String,
    },
    /// Metric movement over one sample period. Counters and histograms
    /// report the per-period delta; gauges report the new value.
    MetricsDelta {
        at_ns: u64,
        deltas: Vec<MetricDelta>,
    },
    /// Fresh SLA verdicts (sent when a chain's verdict flips).
    Sla { at_ns: u64, verdicts: Vec<SlaInfo> },
    /// The subscriber fell behind and `missed` frames were dropped.
    Lagged { missed: u64 },
}

/// One metric's movement inside a [`CtlEvent::MetricsDelta`] frame.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    pub name: String,
    pub labels: Vec<(String, String)>,
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub metric: String,
    pub value: f64,
}

/// Structured control-plane failure. `Malformed` carries the byte
/// offset into the offending frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlError {
    /// The request frame was not a valid protocol message.
    Malformed { offset: u64, reason: String },
    /// Valid JSON, but not a verb this daemon speaks.
    UnknownVerb { verb: String },
    /// A named entity (chain, SAP, ...) does not exist.
    NotFound { what: String },
    /// Admission control refused outright: utilization at or above the
    /// hard watermark.
    RejectedHard {
        utilization: f64,
        hard_watermark: f64,
    },
    /// The admission queue is full.
    QueueFull { capacity: u64 },
    /// A deployment transaction failed and was rolled back.
    DeployFailed { phase: String, cause: String },
    /// The request was well-formed but semantically wrong.
    Invalid { reason: String },
    /// The daemon is shutting down and no longer executes commands.
    ShuttingDown,
    /// Anything else (environment-level failure).
    Internal { reason: String },
}

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtlError::Malformed { offset, reason } => {
                write!(f, "malformed request: {reason} at byte {offset}")
            }
            CtlError::UnknownVerb { verb } => write!(f, "unknown verb {verb:?}"),
            CtlError::NotFound { what } => write!(f, "not found: {what}"),
            CtlError::RejectedHard {
                utilization,
                hard_watermark,
            } => write!(
                f,
                "rejected: utilization {utilization:.2} >= hard watermark {hard_watermark:.2}"
            ),
            CtlError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} waiting)")
            }
            CtlError::DeployFailed { phase, cause } => {
                write!(f, "deploy failed in {phase}: {cause}")
            }
            CtlError::Invalid { reason } => write!(f, "invalid request: {reason}"),
            CtlError::ShuttingDown => write!(f, "daemon is shutting down"),
            CtlError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

// ---------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------

fn str_field(v: &Value, key: &str) -> Result<String, CtlError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| CtlError::Invalid {
            reason: format!("missing string field {key:?}"),
        })
}

fn u64_field(v: &Value, key: &str) -> Result<u64, CtlError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| CtlError::Invalid {
            reason: format!("missing integer field {key:?}"),
        })
}

fn f64_field(v: &Value, key: &str) -> Result<f64, CtlError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| CtlError::Invalid {
            reason: format!("missing number field {key:?}"),
        })
}

fn bool_field(v: &Value, key: &str) -> Result<bool, CtlError> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| CtlError::Invalid {
            reason: format!("missing boolean field {key:?}"),
        })
}

fn arr_field<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], CtlError> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| CtlError::Invalid {
            reason: format!("missing array field {key:?}"),
        })
}

impl CtlRequest {
    pub fn to_value(&self) -> Value {
        match self {
            CtlRequest::Status => Value::obj().set("verb", "status"),
            CtlRequest::Deploy { sg, format } => Value::obj()
                .set("verb", "deploy")
                .set("sg", sg.as_str())
                .set("format", format.label()),
            CtlRequest::Teardown { chain } => Value::obj()
                .set("verb", "teardown")
                .set("chain", chain.as_str()),
            CtlRequest::RunFor { ms } => Value::obj().set("verb", "run-for").set("ms", *ms),
            CtlRequest::Fault { plan } => {
                Value::obj().set("verb", "fault").set("plan", plan.as_str())
            }
            CtlRequest::Heal => Value::obj().set("verb", "heal"),
            CtlRequest::Metrics { format } => Value::obj()
                .set("verb", "metrics")
                .set("format", format.label()),
            CtlRequest::Sla => Value::obj().set("verb", "sla"),
            CtlRequest::Series => Value::obj().set("verb", "series"),
            CtlRequest::Journal => Value::obj().set("verb", "journal"),
            CtlRequest::Watch { topics } => Value::obj().set("verb", "watch").set(
                "topics",
                Value::Arr(
                    topics
                        .iter()
                        .map(|t| Value::Str(t.label().into()))
                        .collect(),
                ),
            ),
            CtlRequest::Traffic {
                from,
                to,
                frames,
                len,
                interval_us,
            } => Value::obj()
                .set("verb", "traffic")
                .set("from", from.as_str())
                .set("to", to.as_str())
                .set("frames", *frames)
                .set("len", *len)
                .set("interval_us", *interval_us),
            CtlRequest::Shutdown => Value::obj().set("verb", "shutdown"),
        }
    }

    pub fn from_value(v: &Value) -> Result<CtlRequest, CtlError> {
        let verb = str_field(v, "verb")?;
        match verb.as_str() {
            "status" => Ok(CtlRequest::Status),
            "deploy" => Ok(CtlRequest::Deploy {
                sg: str_field(v, "sg")?,
                format: SgFormat::parse(&str_field(v, "format")?)?,
            }),
            "teardown" => Ok(CtlRequest::Teardown {
                chain: str_field(v, "chain")?,
            }),
            "run-for" => Ok(CtlRequest::RunFor {
                ms: u64_field(v, "ms")?,
            }),
            "fault" => Ok(CtlRequest::Fault {
                plan: str_field(v, "plan")?,
            }),
            "heal" => Ok(CtlRequest::Heal),
            "metrics" => Ok(CtlRequest::Metrics {
                format: MetricsFormat::parse(&str_field(v, "format")?)?,
            }),
            "sla" => Ok(CtlRequest::Sla),
            "series" => Ok(CtlRequest::Series),
            "journal" => Ok(CtlRequest::Journal),
            "watch" => Ok(CtlRequest::Watch {
                topics: arr_field(v, "topics")?
                    .iter()
                    .map(|t| {
                        t.as_str()
                            .ok_or_else(|| CtlError::Invalid {
                                reason: "watch topic is not a string".into(),
                            })
                            .and_then(WatchTopic::parse)
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "traffic" => Ok(CtlRequest::Traffic {
                from: str_field(v, "from")?,
                to: str_field(v, "to")?,
                frames: u64_field(v, "frames")?,
                len: u64_field(v, "len")?,
                interval_us: u64_field(v, "interval_us")?,
            }),
            "shutdown" => Ok(CtlRequest::Shutdown),
            _ => Err(CtlError::UnknownVerb { verb }),
        }
    }

    pub fn encode(&self) -> String {
        self.to_value().to_string()
    }

    pub fn decode(src: &str) -> Result<CtlRequest, CtlError> {
        let v = Value::parse_detailed(src).map_err(|e| CtlError::Malformed {
            offset: e.offset as u64,
            reason: e.message,
        })?;
        CtlRequest::from_value(&v)
    }
}

impl ChainInfo {
    fn to_value(&self) -> Value {
        Value::obj()
            .set("name", self.name.as_str())
            .set("cookie", self.cookie)
            .set("rules", self.rules)
            .set(
                "vnfs",
                Value::Arr(
                    self.vnfs
                        .iter()
                        .map(|(name, container)| {
                            Value::obj()
                                .set("name", name.as_str())
                                .set("container", container.as_str())
                        })
                        .collect(),
                ),
            )
    }

    fn from_value(v: &Value) -> Result<ChainInfo, CtlError> {
        let vnfs = arr_field(v, "vnfs")?
            .iter()
            .map(|e| Ok((str_field(e, "name")?, str_field(e, "container")?)))
            .collect::<Result<Vec<_>, CtlError>>()?;
        Ok(ChainInfo {
            name: str_field(v, "name")?,
            cookie: u64_field(v, "cookie")?,
            rules: u64_field(v, "rules")?,
            vnfs,
        })
    }
}

impl SlaInfo {
    fn to_value(&self) -> Value {
        Value::obj()
            .set("chain", self.chain.as_str())
            .set("pass", self.pass)
            .set("delivered", self.delivered)
            .set("dropped", self.dropped)
            .set("loss", self.loss)
            .set("max_latency_ns", self.max_latency_ns)
            .set(
                "violations",
                Value::Arr(
                    self.violations
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            )
    }

    fn from_value(s: &Value) -> Result<SlaInfo, CtlError> {
        Ok(SlaInfo {
            chain: str_field(s, "chain")?,
            pass: bool_field(s, "pass")?,
            delivered: u64_field(s, "delivered")?,
            dropped: u64_field(s, "dropped")?,
            loss: f64_field(s, "loss")?,
            max_latency_ns: s.get("max_latency_ns").and_then(Value::as_u64),
            violations: arr_field(s, "violations")?
                .iter()
                .map(|x| {
                    x.as_str().map(str::to_string).ok_or(CtlError::Invalid {
                        reason: "violation is not a string".into(),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl StatusInfo {
    fn to_value(&self) -> Value {
        Value::obj()
            .set("now_ns", self.now_ns)
            .set(
                "chains",
                Value::Arr(self.chains.iter().map(ChainInfo::to_value).collect()),
            )
            .set("pending_admissions", self.pending_admissions)
            .set("utilization", self.utilization)
            .set("deploys", self.deploys)
            .set("deploy_failures", self.deploy_failures)
            .set("teardowns", self.teardowns)
            .set("recoveries", self.recoveries)
            .set("recovery_failures", self.recovery_failures)
            .set("rollbacks", self.rollbacks)
            .set("admission_rejected", self.admission_rejected)
            .set("events", self.events)
    }

    fn from_value(v: &Value) -> Result<StatusInfo, CtlError> {
        Ok(StatusInfo {
            now_ns: u64_field(v, "now_ns")?,
            chains: arr_field(v, "chains")?
                .iter()
                .map(ChainInfo::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            pending_admissions: u64_field(v, "pending_admissions")?,
            utilization: f64_field(v, "utilization")?,
            deploys: u64_field(v, "deploys")?,
            deploy_failures: u64_field(v, "deploy_failures")?,
            teardowns: u64_field(v, "teardowns")?,
            recoveries: u64_field(v, "recoveries")?,
            recovery_failures: u64_field(v, "recovery_failures")?,
            rollbacks: u64_field(v, "rollbacks")?,
            admission_rejected: u64_field(v, "admission_rejected")?,
            events: u64_field(v, "events")?,
        })
    }
}

impl CtlError {
    pub fn to_value(&self) -> Value {
        match self {
            CtlError::Malformed { offset, reason } => Value::obj()
                .set("code", "malformed")
                .set("offset", *offset)
                .set("reason", reason.as_str()),
            CtlError::UnknownVerb { verb } => Value::obj()
                .set("code", "unknown-verb")
                .set("req_verb", verb.as_str()),
            CtlError::NotFound { what } => Value::obj()
                .set("code", "not-found")
                .set("what", what.as_str()),
            CtlError::RejectedHard {
                utilization,
                hard_watermark,
            } => Value::obj()
                .set("code", "rejected-hard")
                .set("utilization", *utilization)
                .set("hard_watermark", *hard_watermark),
            CtlError::QueueFull { capacity } => Value::obj()
                .set("code", "queue-full")
                .set("capacity", *capacity),
            CtlError::DeployFailed { phase, cause } => Value::obj()
                .set("code", "deploy-failed")
                .set("phase", phase.as_str())
                .set("cause", cause.as_str()),
            CtlError::Invalid { reason } => Value::obj()
                .set("code", "invalid")
                .set("reason", reason.as_str()),
            CtlError::ShuttingDown => Value::obj().set("code", "shutting-down"),
            CtlError::Internal { reason } => Value::obj()
                .set("code", "internal")
                .set("reason", reason.as_str()),
        }
    }

    pub fn from_value(v: &Value) -> Result<CtlError, CtlError> {
        let code = str_field(v, "code")?;
        match code.as_str() {
            "malformed" => Ok(CtlError::Malformed {
                offset: u64_field(v, "offset")?,
                reason: str_field(v, "reason")?,
            }),
            "unknown-verb" => Ok(CtlError::UnknownVerb {
                verb: str_field(v, "req_verb")?,
            }),
            "not-found" => Ok(CtlError::NotFound {
                what: str_field(v, "what")?,
            }),
            "rejected-hard" => Ok(CtlError::RejectedHard {
                utilization: f64_field(v, "utilization")?,
                hard_watermark: f64_field(v, "hard_watermark")?,
            }),
            "queue-full" => Ok(CtlError::QueueFull {
                capacity: u64_field(v, "capacity")?,
            }),
            "deploy-failed" => Ok(CtlError::DeployFailed {
                phase: str_field(v, "phase")?,
                cause: str_field(v, "cause")?,
            }),
            "invalid" => Ok(CtlError::Invalid {
                reason: str_field(v, "reason")?,
            }),
            "shutting-down" => Ok(CtlError::ShuttingDown),
            "internal" => Ok(CtlError::Internal {
                reason: str_field(v, "reason")?,
            }),
            other => Err(CtlError::Invalid {
                reason: format!("unknown error code {other:?}"),
            }),
        }
    }
}

impl CtlResponse {
    pub fn to_value(&self) -> Value {
        match self {
            CtlResponse::Status(s) => Value::obj()
                .set("kind", "status")
                .set("status", s.to_value()),
            CtlResponse::Deployed(d) => Value::obj()
                .set("kind", "deployed")
                .set(
                    "chains",
                    Value::Arr(d.chains.iter().map(ChainInfo::to_value).collect()),
                )
                .set("total_ns", d.total_ns)
                .set("netconf_ns", d.netconf_ns)
                .set("steering_ns", d.steering_ns),
            CtlResponse::Queued {
                position,
                utilization,
            } => Value::obj()
                .set("kind", "queued")
                .set("position", *position)
                .set("utilization", *utilization),
            CtlResponse::ToreDown { chain } => Value::obj()
                .set("kind", "torn-down")
                .set("chain", chain.as_str()),
            CtlResponse::Advanced { now_ns } => {
                Value::obj().set("kind", "advanced").set("now_ns", *now_ns)
            }
            CtlResponse::FaultArmed { events } => Value::obj()
                .set("kind", "fault-armed")
                .set("events", *events),
            CtlResponse::Healed {
                recoveries,
                failures,
            } => Value::obj()
                .set("kind", "healed")
                .set("recoveries", *recoveries)
                .set("failures", *failures),
            CtlResponse::Metrics { format, body } => Value::obj()
                .set("kind", "metrics")
                .set("format", format.label())
                .set("body", body.as_str()),
            CtlResponse::Sla(verdicts) => Value::obj().set("kind", "sla").set(
                "verdicts",
                Value::Arr(verdicts.iter().map(SlaInfo::to_value).collect()),
            ),
            CtlResponse::Series { body } => Value::obj()
                .set("kind", "series")
                .set("body", body.as_str()),
            CtlResponse::Journal { body } => Value::obj()
                .set("kind", "journal")
                .set("body", body.as_str()),
            CtlResponse::Watching { topics } => Value::obj().set("kind", "watching").set(
                "topics",
                Value::Arr(
                    topics
                        .iter()
                        .map(|t| Value::Str(t.label().into()))
                        .collect(),
                ),
            ),
            CtlResponse::TrafficStarted => Value::obj().set("kind", "traffic-started"),
            CtlResponse::ShuttingDown => Value::obj().set("kind", "shutting-down"),
            CtlResponse::Error(e) => Value::obj().set("kind", "error").set("error", e.to_value()),
        }
    }

    pub fn from_value(v: &Value) -> Result<CtlResponse, CtlError> {
        let kind = str_field(v, "kind")?;
        match kind.as_str() {
            "status" => {
                let s = v.get("status").ok_or_else(|| CtlError::Invalid {
                    reason: "missing field \"status\"".into(),
                })?;
                Ok(CtlResponse::Status(StatusInfo::from_value(s)?))
            }
            "deployed" => Ok(CtlResponse::Deployed(DeployInfo {
                chains: arr_field(v, "chains")?
                    .iter()
                    .map(ChainInfo::from_value)
                    .collect::<Result<Vec<_>, _>>()?,
                total_ns: u64_field(v, "total_ns")?,
                netconf_ns: u64_field(v, "netconf_ns")?,
                steering_ns: u64_field(v, "steering_ns")?,
            })),
            "queued" => Ok(CtlResponse::Queued {
                position: u64_field(v, "position")?,
                utilization: f64_field(v, "utilization")?,
            }),
            "torn-down" => Ok(CtlResponse::ToreDown {
                chain: str_field(v, "chain")?,
            }),
            "advanced" => Ok(CtlResponse::Advanced {
                now_ns: u64_field(v, "now_ns")?,
            }),
            "fault-armed" => Ok(CtlResponse::FaultArmed {
                events: u64_field(v, "events")?,
            }),
            "healed" => Ok(CtlResponse::Healed {
                recoveries: u64_field(v, "recoveries")?,
                failures: u64_field(v, "failures")?,
            }),
            "metrics" => Ok(CtlResponse::Metrics {
                format: MetricsFormat::parse(&str_field(v, "format")?)?,
                body: str_field(v, "body")?,
            }),
            "sla" => Ok(CtlResponse::Sla(
                arr_field(v, "verdicts")?
                    .iter()
                    .map(SlaInfo::from_value)
                    .collect::<Result<Vec<_>, CtlError>>()?,
            )),
            "series" => Ok(CtlResponse::Series {
                body: str_field(v, "body")?,
            }),
            "journal" => Ok(CtlResponse::Journal {
                body: str_field(v, "body")?,
            }),
            "watching" => Ok(CtlResponse::Watching {
                topics: arr_field(v, "topics")?
                    .iter()
                    .map(|t| {
                        t.as_str()
                            .ok_or_else(|| CtlError::Invalid {
                                reason: "watch topic is not a string".into(),
                            })
                            .and_then(WatchTopic::parse)
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "traffic-started" => Ok(CtlResponse::TrafficStarted),
            "shutting-down" => Ok(CtlResponse::ShuttingDown),
            "error" => {
                let e = v.get("error").ok_or_else(|| CtlError::Invalid {
                    reason: "missing field \"error\"".into(),
                })?;
                Ok(CtlResponse::Error(CtlError::from_value(e)?))
            }
            other => Err(CtlError::Invalid {
                reason: format!("unknown response kind {other:?}"),
            }),
        }
    }

    pub fn encode(&self) -> String {
        self.to_value().to_string()
    }

    pub fn decode(src: &str) -> Result<CtlResponse, CtlError> {
        let v = Value::parse_detailed(src).map_err(|e| CtlError::Malformed {
            offset: e.offset as u64,
            reason: e.message,
        })?;
        CtlResponse::from_value(&v)
    }
}

impl MetricDelta {
    fn to_value(&self) -> Value {
        Value::obj()
            .set("name", self.name.as_str())
            .set(
                "labels",
                Value::Arr(
                    self.labels
                        .iter()
                        .map(|(k, v)| Value::obj().set("k", k.as_str()).set("v", v.as_str()))
                        .collect(),
                ),
            )
            .set("metric", self.metric.as_str())
            .set("value", self.value)
    }

    fn from_value(v: &Value) -> Result<MetricDelta, CtlError> {
        Ok(MetricDelta {
            name: str_field(v, "name")?,
            labels: arr_field(v, "labels")?
                .iter()
                .map(|l| Ok((str_field(l, "k")?, str_field(l, "v")?)))
                .collect::<Result<Vec<_>, CtlError>>()?,
            metric: str_field(v, "metric")?,
            value: f64_field(v, "value")?,
        })
    }
}

impl CtlEvent {
    pub fn to_value(&self) -> Value {
        match self {
            CtlEvent::Journal {
                at_ns,
                severity,
                kind,
                detail,
            } => Value::obj()
                .set("event", "journal")
                .set("at_ns", *at_ns)
                .set("severity", severity.as_str())
                .set("kind", kind.as_str())
                .set("detail", detail.as_str()),
            CtlEvent::MetricsDelta { at_ns, deltas } => Value::obj()
                .set("event", "metrics-delta")
                .set("at_ns", *at_ns)
                .set(
                    "deltas",
                    Value::Arr(deltas.iter().map(MetricDelta::to_value).collect()),
                ),
            CtlEvent::Sla { at_ns, verdicts } => {
                Value::obj().set("event", "sla").set("at_ns", *at_ns).set(
                    "verdicts",
                    Value::Arr(verdicts.iter().map(SlaInfo::to_value).collect()),
                )
            }
            CtlEvent::Lagged { missed } => {
                Value::obj().set("event", "lagged").set("missed", *missed)
            }
        }
    }

    pub fn from_value(v: &Value) -> Result<CtlEvent, CtlError> {
        let event = str_field(v, "event")?;
        match event.as_str() {
            "journal" => Ok(CtlEvent::Journal {
                at_ns: u64_field(v, "at_ns")?,
                severity: str_field(v, "severity")?,
                kind: str_field(v, "kind")?,
                detail: str_field(v, "detail")?,
            }),
            "metrics-delta" => Ok(CtlEvent::MetricsDelta {
                at_ns: u64_field(v, "at_ns")?,
                deltas: arr_field(v, "deltas")?
                    .iter()
                    .map(MetricDelta::from_value)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "sla" => Ok(CtlEvent::Sla {
                at_ns: u64_field(v, "at_ns")?,
                verdicts: arr_field(v, "verdicts")?
                    .iter()
                    .map(SlaInfo::from_value)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "lagged" => Ok(CtlEvent::Lagged {
                missed: u64_field(v, "missed")?,
            }),
            other => Err(CtlError::Invalid {
                reason: format!("unknown event {other:?}"),
            }),
        }
    }

    pub fn encode(&self) -> String {
        self.to_value().to_string()
    }

    pub fn decode(src: &str) -> Result<CtlEvent, CtlError> {
        let v = Value::parse_detailed(src).map_err(|e| CtlError::Malformed {
            offset: e.offset as u64,
            reason: e.message,
        })?;
        CtlEvent::from_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: CtlRequest) {
        let text = req.encode();
        let back = CtlRequest::decode(&text).unwrap();
        assert_eq!(req, back, "wire text: {text}");
    }

    fn round_trip_response(resp: CtlResponse) {
        let text = resp.encode();
        let back = CtlResponse::decode(&text).unwrap();
        assert_eq!(resp, back, "wire text: {text}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(CtlRequest::Status);
        round_trip_request(CtlRequest::Deploy {
            sg: "{\"chains\": []}".into(),
            format: SgFormat::Json,
        });
        round_trip_request(CtlRequest::Deploy {
            sg: "sap a b\nchain c = a -> b bw=1".into(),
            format: SgFormat::Dsl,
        });
        round_trip_request(CtlRequest::Teardown {
            chain: "demo".into(),
        });
        round_trip_request(CtlRequest::RunFor { ms: 250 });
        round_trip_request(CtlRequest::Fault {
            plan: "{\"events\": []}".into(),
        });
        round_trip_request(CtlRequest::Heal);
        round_trip_request(CtlRequest::Metrics {
            format: MetricsFormat::Prometheus,
        });
        round_trip_request(CtlRequest::Metrics {
            format: MetricsFormat::Json,
        });
        round_trip_request(CtlRequest::Sla);
        round_trip_request(CtlRequest::Series);
        round_trip_request(CtlRequest::Journal);
        round_trip_request(CtlRequest::Watch { topics: vec![] });
        round_trip_request(CtlRequest::Watch {
            topics: WatchTopic::ALL.to_vec(),
        });
        round_trip_request(CtlRequest::Traffic {
            from: "sap0".into(),
            to: "sap1".into(),
            frames: 20,
            len: 128,
            interval_us: 200,
        });
        round_trip_request(CtlRequest::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        let chain = ChainInfo {
            name: "demo".into(),
            cookie: 7,
            rules: 4,
            vnfs: vec![("fw".into(), "c1".into()), ("mon".into(), "c2".into())],
        };
        round_trip_response(CtlResponse::Status(StatusInfo {
            now_ns: 5_000_000,
            chains: vec![chain.clone()],
            pending_admissions: 1,
            utilization: 0.25,
            deploys: 3,
            deploy_failures: 1,
            teardowns: 2,
            recoveries: 1,
            recovery_failures: 0,
            rollbacks: 1,
            admission_rejected: 2,
            events: 9,
        }));
        round_trip_response(CtlResponse::Deployed(DeployInfo {
            chains: vec![chain],
            total_ns: 1_000,
            netconf_ns: 700,
            steering_ns: 300,
        }));
        round_trip_response(CtlResponse::Queued {
            position: 0,
            utilization: 0.9,
        });
        round_trip_response(CtlResponse::ToreDown {
            chain: "demo".into(),
        });
        round_trip_response(CtlResponse::Advanced { now_ns: 42 });
        round_trip_response(CtlResponse::FaultArmed { events: 3 });
        round_trip_response(CtlResponse::Healed {
            recoveries: 2,
            failures: 1,
        });
        round_trip_response(CtlResponse::Metrics {
            format: MetricsFormat::Prometheus,
            body: "# TYPE x counter\nx 1\n".into(),
        });
        round_trip_response(CtlResponse::Sla(vec![SlaInfo {
            chain: "demo".into(),
            pass: false,
            delivered: 18,
            dropped: 2,
            loss: 0.1,
            max_latency_ns: Some(1_234_567),
            violations: vec!["latency 1.2ms > 1.0ms".into()],
        }]));
        round_trip_response(CtlResponse::Sla(vec![SlaInfo {
            chain: "quiet".into(),
            pass: true,
            delivered: 0,
            dropped: 0,
            loss: 0.0,
            max_latency_ns: None,
            violations: vec![],
        }]));
        round_trip_response(CtlResponse::Series {
            body: "{\"period_ns\": 5000000}".into(),
        });
        round_trip_response(CtlResponse::Journal {
            body: "{\"at_ns\": 1}\n{\"at_ns\": 2}\n".into(),
        });
        round_trip_response(CtlResponse::Watching {
            topics: vec![WatchTopic::Events, WatchTopic::Sla],
        });
        round_trip_response(CtlResponse::TrafficStarted);
        round_trip_response(CtlResponse::ShuttingDown);
    }

    #[test]
    fn events_round_trip() {
        for e in [
            CtlEvent::Journal {
                at_ns: 5_000_000,
                severity: "warn".into(),
                kind: "deploy-rolled-back".into(),
                detail: "chain demo: netconf phase".into(),
            },
            CtlEvent::MetricsDelta {
                at_ns: 10_000_000,
                deltas: vec![MetricDelta {
                    name: "escape.deploys".into(),
                    labels: vec![("domain".into(), "core".into())],
                    metric: "counter".into(),
                    value: 2.0,
                }],
            },
            CtlEvent::Sla {
                at_ns: 15_000_000,
                verdicts: vec![SlaInfo {
                    chain: "demo".into(),
                    pass: false,
                    delivered: 18,
                    dropped: 2,
                    loss: 0.1,
                    max_latency_ns: Some(1_234_567),
                    violations: vec!["loss 0.10 > 0.05".into()],
                }],
            },
            CtlEvent::Lagged { missed: 42 },
        ] {
            let text = e.encode();
            let back = CtlEvent::decode(&text).unwrap();
            assert_eq!(e, back, "wire text: {text}");
        }
    }

    #[test]
    fn unknown_watch_topic_is_typed() {
        let err = CtlRequest::decode("{\"verb\": \"watch\", \"topics\": [\"vibes\"]}").unwrap_err();
        assert!(matches!(err, CtlError::Invalid { .. }), "{err:?}");
    }

    #[test]
    fn errors_round_trip() {
        for e in [
            CtlError::Malformed {
                offset: 17,
                reason: "expected ',' or '}'".into(),
            },
            CtlError::UnknownVerb {
                verb: "resize".into(),
            },
            CtlError::NotFound {
                what: "chain ghost".into(),
            },
            CtlError::RejectedHard {
                utilization: 0.97,
                hard_watermark: 0.95,
            },
            CtlError::QueueFull { capacity: 8 },
            CtlError::DeployFailed {
                phase: "prepare".into(),
                cause: "rpc to c1 timed out".into(),
            },
            CtlError::Invalid {
                reason: "missing field".into(),
            },
            CtlError::ShuttingDown,
            CtlError::Internal {
                reason: "boom".into(),
            },
        ] {
            round_trip_response(CtlResponse::Error(e));
        }
    }

    #[test]
    fn malformed_request_carries_offset() {
        let err = CtlRequest::decode("{\"verb\": nope}").unwrap_err();
        match err {
            CtlError::Malformed { offset, .. } => assert_eq!(offset, 9),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn unknown_verb_is_typed() {
        let err = CtlRequest::decode("{\"verb\": \"dance\"}").unwrap_err();
        assert_eq!(
            err,
            CtlError::UnknownVerb {
                verb: "dance".into()
            }
        );
    }
}
