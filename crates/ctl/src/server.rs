//! The `escaped` daemon core: one live [`Session`] behind a unix socket.
//!
//! Concurrency model: an accept thread hands each connection to its own
//! reader thread, but every decoded request funnels through ONE mpsc
//! channel into the environment loop on the calling thread. That queue is
//! the serialization point — commands execute strictly one at a time
//! against the session, so admission control (soft/hard watermarks,
//! bounded queue) applies its backpressure to external callers exactly as
//! it does in-process: a hard-rejected deploy comes back as a framed
//! [`CtlError::RejectedHard`], never a dropped connection.
//!
//! Virtual time only advances when a client asks (`run-for`) unless
//! `tick_ms > 0` opts into background ticks — the default keeps same-seed
//! daemon runs byte-identical regardless of wall-clock scheduling.

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    ChainInfo, CtlError, CtlEvent, CtlRequest, CtlResponse, DeployInfo, MetricDelta, MetricsFormat,
    SlaInfo, StatusInfo, WatchTopic,
};
use escape::env::DeploymentReport;
use escape::error::{AdmissionVerdict, EscapeError};
use escape::flight::SlaVerdict;
use escape::session::{InputFormat, SessionStatus};
use escape::Session;
use escape_telemetry::{ReportEntry, Snapshot};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// POSIX signal plumbing without a libc dependency: `signal(2)` is
/// declared directly and the handler only touches an atomic flag, which
/// is all an async-signal-safe handler may do anyway.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Routes SIGINT and SIGTERM to the shutdown flag.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// True once a termination signal arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// How to run the daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket to listen on.
    pub socket: PathBuf,
    /// Virtual milliseconds to advance per idle poll interval; `0`
    /// (the default) advances time only on explicit `run-for` commands
    /// so same-seed runs stay byte-identical.
    pub tick_ms: u64,
    /// Directory to flush final telemetry into on shutdown
    /// (`metrics.prom` + `metrics.json`); `None` skips the flush.
    pub artifacts: Option<PathBuf>,
    /// Install SIGINT/SIGTERM handlers. In-process test daemons leave
    /// this off so they don't hijack the test runner's signals.
    pub handle_signals: bool,
}

impl DaemonConfig {
    pub fn new(socket: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            tick_ms: 0,
            artifacts: None,
            handle_signals: false,
        }
    }
}

enum Command {
    /// One request expecting exactly one response.
    Request(CtlRequest, mpsc::Sender<CtlResponse>),
    /// A connection registering for server-push [`CtlEvent`] frames.
    Subscribe(Subscriber),
}

/// Bounded per-subscriber queue depth. The environment loop never
/// blocks on a slow client: a full queue turns pushes into a `missed`
/// count surfaced later as one [`CtlEvent::Lagged`] frame.
const SUBSCRIBER_QUEUE: usize = 256;

/// A subscriber this far behind (a full queue plus this many misses) is
/// evicted outright — its writer channel is dropped, which closes the
/// stream so the client sees EOF rather than a silent stall.
const MAX_MISSED: u64 = 4_096;

struct Subscriber {
    topics: Vec<WatchTopic>,
    tx: mpsc::SyncSender<CtlEvent>,
    missed: u64,
}

impl Subscriber {
    fn wants(&self, topic: WatchTopic) -> bool {
        self.topics.contains(&topic)
    }

    /// Queues one event without blocking. When the client's queue is
    /// full the event is counted as missed; the next successful push is
    /// preceded by a [`CtlEvent::Lagged`] frame carrying that count.
    /// Returns false when the subscriber should be evicted.
    fn push(&mut self, ev: &CtlEvent) -> bool {
        if self.missed > 0 {
            match self.tx.try_send(CtlEvent::Lagged {
                missed: self.missed,
            }) {
                Ok(()) => self.missed = 0,
                Err(TrySendError::Full(_)) => {
                    self.missed += 1;
                    return self.missed <= MAX_MISSED;
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
        match self.tx.try_send(ev.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.missed += 1;
                self.missed <= MAX_MISSED
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

/// Fan-out state for `watch` subscriptions, owned by the environment
/// loop. All cursors (journal sequence, metrics baseline, SLA verdicts)
/// advance on every publish so a new subscriber starts from "now"
/// rather than replaying history.
struct Publisher {
    subscribers: Vec<Subscriber>,
    journal_seq: u64,
    last_snapshot: Snapshot,
    sla_last: HashMap<String, bool>,
}

impl Publisher {
    fn new(session: &Session) -> Publisher {
        Publisher {
            subscribers: Vec::new(),
            journal_seq: session.escape().journal().seq_end(),
            last_snapshot: session.escape().metrics(),
            sla_last: HashMap::new(),
        }
    }

    /// Pushes everything that happened since the last publish to every
    /// subscriber: new journal entries, one metrics-delta frame (when
    /// any metric moved) and SLA verdict flips.
    fn publish(&mut self, session: &Session) {
        let esc = session.escape();
        let now_ns = esc.now().as_ns();

        let events: Vec<CtlEvent> = esc
            .journal()
            .events_since(self.journal_seq)
            .map(|e| CtlEvent::Journal {
                at_ns: e.at_ns,
                severity: e.severity.label().into(),
                kind: e.kind.label().into(),
                detail: e.detail.clone(),
            })
            .collect();
        self.journal_seq = esc.journal().seq_end();

        let snap = esc.metrics();
        let report = self.last_snapshot.diff(&snap);
        let delta_frame = if report.is_empty() {
            None
        } else {
            Some(CtlEvent::MetricsDelta {
                at_ns: now_ns,
                deltas: report.entries.iter().map(metric_delta).collect(),
            })
        };
        self.last_snapshot = snap;

        // The verdict scan walks the flight-recorder trace, so it only
        // runs when someone actually subscribed to SLA flips.
        let sla_frame = if self.subscribers.iter().any(|s| s.wants(WatchTopic::Sla)) {
            let flipped: Vec<SlaInfo> = session
                .sla_verdicts()
                .iter()
                .filter(|v| self.sla_last.insert(v.chain.clone(), v.pass) != Some(v.pass))
                .map(sla_info)
                .collect();
            if flipped.is_empty() {
                None
            } else {
                Some(CtlEvent::Sla {
                    at_ns: now_ns,
                    verdicts: flipped,
                })
            }
        } else {
            None
        };

        self.subscribers.retain_mut(|sub| {
            if sub.wants(WatchTopic::Events) {
                for ev in &events {
                    if !sub.push(ev) {
                        return false;
                    }
                }
            }
            if sub.wants(WatchTopic::MetricsDeltas) {
                if let Some(ev) = &delta_frame {
                    if !sub.push(ev) {
                        return false;
                    }
                }
            }
            if sub.wants(WatchTopic::Sla) {
                if let Some(ev) = &sla_frame {
                    if !sub.push(ev) {
                        return false;
                    }
                }
            }
            true
        });
    }
}

fn metric_delta(e: &ReportEntry) -> MetricDelta {
    match e {
        ReportEntry::CounterDelta {
            name,
            labels,
            delta,
        } => MetricDelta {
            name: name.clone(),
            labels: labels.clone(),
            metric: "counter".into(),
            value: *delta as f64,
        },
        ReportEntry::GaugeChange {
            name, labels, to, ..
        } => MetricDelta {
            name: name.clone(),
            labels: labels.clone(),
            metric: "gauge".into(),
            value: *to as f64,
        },
        ReportEntry::HistogramActivity {
            name,
            labels,
            observations,
            ..
        } => MetricDelta {
            name: name.clone(),
            labels: labels.clone(),
            metric: "histogram".into(),
            value: *observations as f64,
        },
    }
}

/// The daemon entry point. [`Daemon::run`] blocks the calling thread as
/// the environment loop until a `shutdown` verb or a termination signal
/// arrives, then tears down gracefully.
pub struct Daemon;

impl Daemon {
    /// Serves `session` on `cfg.socket` until shutdown. On exit every
    /// live chain is torn down transactionally, telemetry is flushed to
    /// `cfg.artifacts` if set, and the socket file is removed.
    pub fn run(mut session: Session, cfg: DaemonConfig) -> io::Result<()> {
        let listener = bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        if cfg.handle_signals {
            sig::install();
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Command>();
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(listener, tx, shutdown))
        };

        let mut publisher = Publisher::new(&session);
        loop {
            if cfg.handle_signals && sig::requested() {
                break;
            }
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(Command::Request(CtlRequest::Shutdown, reply)) => {
                    let _ = reply.send(CtlResponse::ShuttingDown);
                    break;
                }
                Ok(Command::Request(req, reply)) => {
                    let _ = reply.send(execute(&mut session, &req));
                    publisher.publish(&session);
                }
                Ok(Command::Subscribe(sub)) => publisher.subscribers.push(sub),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if cfg.tick_ms > 0 {
                        session.run_for_ms(cfg.tick_ms);
                        publisher.publish(&session);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Stop accepting, refuse anything already queued, then dismantle.
        // Dropping the publisher drops every subscriber channel, which
        // ends the writer threads and closes watching connections.
        shutdown.store(true, Ordering::SeqCst);
        drop(publisher);
        while let Ok(cmd) = rx.try_recv() {
            if let Command::Request(_req, reply) = cmd {
                let _ = reply.send(CtlResponse::Error(CtlError::ShuttingDown));
            }
        }
        let failed = session.teardown_all();
        for (chain, e) in &failed {
            eprintln!("escaped: teardown of {chain} on shutdown failed: {e}");
        }
        if let Some(dir) = &cfg.artifacts {
            flush_artifacts(&session, dir)?;
        }
        let _ = accept.join();
        drop(rx);
        let _ = fs::remove_file(&cfg.socket);
        Ok(())
    }
}

/// Binds the listener, reclaiming a stale socket file left by a crashed
/// daemon — but refusing to steal one a live daemon still answers on.
fn bind(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} is in use by a running daemon", path.display()),
                ));
            }
            fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

fn accept_loop(listener: UnixListener, tx: mpsc::Sender<Command>, shutdown: Arc<AtomicBool>) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let _ = stream.set_nonblocking(false);
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || connection_loop(stream, tx, shutdown));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// One client connection. Framing or decode failures answer with a typed
/// error and keep the connection open — only a transport failure (or the
/// client hanging up) ends the loop.
fn connection_loop(mut stream: UnixStream, tx: mpsc::Sender<Command>, shutdown: Arc<AtomicBool>) {
    loop {
        let bytes = match read_frame(&mut stream) {
            Ok(Some(b)) => b,
            Ok(None) | Err(_) => return,
        };
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(e) => {
                let err = CtlError::Malformed {
                    offset: e.utf8_error().valid_up_to() as u64,
                    reason: "payload is not UTF-8".into(),
                };
                if reply(&mut stream, CtlResponse::Error(err)).is_err() {
                    return;
                }
                continue;
            }
        };
        let req = match CtlRequest::decode(&text) {
            Ok(r) => r,
            Err(e) => {
                if reply(&mut stream, CtlResponse::Error(e)).is_err() {
                    return;
                }
                continue;
            }
        };
        if let CtlRequest::Watch { topics } = req {
            watch_loop(stream, topics, tx, shutdown);
            return;
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let resp = if shutdown.load(Ordering::SeqCst)
            || tx.send(Command::Request(req, reply_tx)).is_err()
        {
            CtlResponse::Error(CtlError::ShuttingDown)
        } else {
            reply_rx
                .recv()
                .unwrap_or(CtlResponse::Error(CtlError::ShuttingDown))
        };
        if reply(&mut stream, resp).is_err() {
            return;
        }
    }
}

/// Turns a connection into a push stream: acks with `watching`, then a
/// dedicated writer thread drains the subscriber queue onto the socket
/// while this thread waits for the client to hang up. An empty topic
/// list subscribes to everything.
fn watch_loop(
    mut stream: UnixStream,
    topics: Vec<WatchTopic>,
    tx: mpsc::Sender<Command>,
    shutdown: Arc<AtomicBool>,
) {
    let topics = if topics.is_empty() {
        WatchTopic::ALL.to_vec()
    } else {
        let mut t = topics;
        t.sort();
        t.dedup();
        t
    };
    if shutdown.load(Ordering::SeqCst) {
        let _ = reply(&mut stream, CtlResponse::Error(CtlError::ShuttingDown));
        return;
    }
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (ev_tx, ev_rx) = mpsc::sync_channel::<CtlEvent>(SUBSCRIBER_QUEUE);
    thread::spawn(move || writer_loop(writer_stream, ev_rx));
    // Register with the publisher BEFORE acknowledging: once the client
    // reads the `watching` ack, any command it issues is guaranteed to
    // be enqueued behind this subscription and therefore observed.
    if tx
        .send(Command::Subscribe(Subscriber {
            topics: topics.clone(),
            tx: ev_tx,
            missed: 0,
        }))
        .is_err()
    {
        let _ = reply(&mut stream, CtlResponse::Error(CtlError::ShuttingDown));
        return;
    }
    if reply(&mut stream, CtlResponse::Watching { topics }).is_err() {
        // Client vanished before the ack: the writer's next frame fails
        // and the publisher evicts the dangling subscription.
        return;
    }
    // A watching connection is push-only from here on: drain (and
    // ignore) anything else the client sends until it hangs up. Once it
    // does, the writer's next frame fails and the publisher evicts us.
    loop {
        match read_frame(&mut stream) {
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => return,
        }
    }
}

fn writer_loop(mut stream: UnixStream, rx: mpsc::Receiver<CtlEvent>) {
    for ev in rx {
        if write_frame(&mut stream, &ev.encode()).is_err() {
            return; // client hung up; the publisher evicts on next push
        }
    }
    // The publisher dropped this subscriber (eviction or shutdown):
    // close the stream so the client sees EOF instead of a stall.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn reply(stream: &mut UnixStream, resp: CtlResponse) -> io::Result<()> {
    write_frame(stream, &resp.encode())
}

/// Executes one command against the session. Pure dispatch: all policy
/// (admission, transactions, healing) lives in the session/environment.
pub fn execute(session: &mut Session, req: &CtlRequest) -> CtlResponse {
    match req {
        CtlRequest::Status => CtlResponse::Status(status_info(&session.status())),
        CtlRequest::Deploy { sg, format } => {
            let fmt = match format {
                crate::proto::SgFormat::Dsl => InputFormat::Dsl,
                crate::proto::SgFormat::Json => InputFormat::Json,
            };
            match session.deploy_text(sg, fmt) {
                Ok(report) => CtlResponse::Deployed(deploy_info(&report)),
                Err(e) => escape_error_response(e),
            }
        }
        CtlRequest::Teardown { chain } => match session.teardown(chain) {
            Ok(()) => CtlResponse::ToreDown {
                chain: chain.clone(),
            },
            Err(e) => escape_error_response(e),
        },
        CtlRequest::RunFor { ms } => {
            session.run_for_ms(*ms);
            CtlResponse::Advanced {
                now_ns: session.escape().now().as_ns(),
            }
        }
        CtlRequest::Fault { plan } => match session.load_fault_plan_text(plan) {
            Ok(events) => CtlResponse::FaultArmed {
                events: events as u64,
            },
            Err(e) => escape_error_response(e),
        },
        CtlRequest::Heal => {
            let (recoveries, failures) = session.heal_now();
            CtlResponse::Healed {
                recoveries,
                failures,
            }
        }
        CtlRequest::Metrics { format } => CtlResponse::Metrics {
            format: *format,
            body: session.metrics_exposition(matches!(format, MetricsFormat::Json)),
        },
        CtlRequest::Sla => CtlResponse::Sla(session.sla_verdicts().iter().map(sla_info).collect()),
        CtlRequest::Series => CtlResponse::Series {
            body: session.series_json(),
        },
        CtlRequest::Journal => CtlResponse::Journal {
            body: session.journal_json_lines(),
        },
        // Intercepted at the connection layer; answered here too so
        // `execute` stays total for direct (in-process) callers.
        CtlRequest::Watch { .. } => CtlResponse::Error(CtlError::Invalid {
            reason: "watch is a streaming verb; it needs a socket connection".into(),
        }),
        CtlRequest::Traffic {
            from,
            to,
            frames,
            len,
            interval_us,
        } => match session.start_udp(from, to, *len as usize, *interval_us, *frames) {
            Ok(()) => CtlResponse::TrafficStarted,
            Err(e) => escape_error_response(e),
        },
        // Handled by the environment loop before dispatch; answered here
        // too so `execute` is total for direct (in-process) callers.
        CtlRequest::Shutdown => CtlResponse::ShuttingDown,
    }
}

/// Maps an environment failure to its typed wire form. Note that a
/// *queued* admission verdict is a success shape, not an error: the
/// deploy retries by itself as virtual time advances.
fn escape_error_response(e: EscapeError) -> CtlResponse {
    match e {
        EscapeError::Admission(v) => match v {
            AdmissionVerdict::RejectedHard {
                utilization,
                hard_watermark,
            } => CtlResponse::Error(CtlError::RejectedHard {
                utilization,
                hard_watermark,
            }),
            AdmissionVerdict::Queued {
                position,
                utilization,
            } => CtlResponse::Queued {
                position: position as u64,
                utilization,
            },
            AdmissionVerdict::QueueFull { capacity } => CtlResponse::Error(CtlError::QueueFull {
                capacity: capacity as u64,
            }),
            v @ AdmissionVerdict::RetriesExhausted { .. } => {
                CtlResponse::Error(CtlError::Internal {
                    reason: v.to_string(),
                })
            }
        },
        EscapeError::DeployFailed { phase, cause, .. } => {
            CtlResponse::Error(CtlError::DeployFailed {
                phase: phase.to_string(),
                cause: cause.to_string(),
            })
        }
        EscapeError::NotFound(what) => CtlResponse::Error(CtlError::NotFound { what }),
        EscapeError::Invalid(reason) => CtlResponse::Error(CtlError::Invalid { reason }),
        other => CtlResponse::Error(CtlError::Internal {
            reason: other.to_string(),
        }),
    }
}

fn status_info(s: &SessionStatus) -> StatusInfo {
    StatusInfo {
        now_ns: s.now_ns,
        chains: s
            .chains
            .iter()
            .map(|c| ChainInfo {
                name: c.name.clone(),
                cookie: c.cookie,
                rules: c.rules,
                vnfs: c.vnfs.clone(),
            })
            .collect(),
        pending_admissions: s.pending_admissions,
        utilization: s.utilization,
        deploys: s.deploys,
        deploy_failures: s.deploy_failures,
        teardowns: s.teardowns,
        recoveries: s.recoveries,
        recovery_failures: s.recovery_failures,
        rollbacks: s.rollbacks,
        admission_rejected: s.admission_rejected,
        events: s.events,
    }
}

fn deploy_info(report: &DeploymentReport) -> DeployInfo {
    DeployInfo {
        chains: report
            .chains
            .iter()
            .map(|dc| ChainInfo {
                name: dc.mapping.chain.name.clone(),
                cookie: dc.cookie,
                rules: dc.rules as u64,
                vnfs: dc
                    .vnfs
                    .iter()
                    .map(|v| (v.vnf_name.clone(), v.container.clone()))
                    .collect(),
            })
            .collect(),
        total_ns: report.total().as_ns(),
        netconf_ns: report.netconf_phase().as_ns(),
        steering_ns: report.steering_phase().as_ns(),
    }
}

fn sla_info(v: &SlaVerdict) -> SlaInfo {
    SlaInfo {
        chain: v.chain.clone(),
        pass: v.pass,
        delivered: v.delivered,
        dropped: v.dropped,
        loss: v.loss,
        max_latency_ns: v.max_latency_ns,
        violations: v.violations.clone(),
    }
}

/// Writes the final telemetry state into `dir` via the session's single
/// exposition path.
fn flush_artifacts(session: &Session, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("metrics.prom"), session.metrics_exposition(false))?;
    fs::write(dir.join("metrics.json"), session.metrics_exposition(true))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lag_frame() -> CtlEvent {
        CtlEvent::Lagged { missed: 0 }
    }

    #[test]
    fn slow_subscriber_counts_misses_then_evicts() {
        let (tx, rx) = mpsc::sync_channel(2);
        let mut sub = Subscriber {
            topics: WatchTopic::ALL.to_vec(),
            tx,
            missed: 0,
        };
        // Queue holds 2 frames; the rest count as missed.
        assert!(sub.push(&lag_frame()));
        assert!(sub.push(&lag_frame()));
        assert!(sub.push(&lag_frame()));
        assert_eq!(sub.missed, 1);

        // Draining makes room: the next push delivers a `lagged` frame
        // carrying the count, then the event itself, and resets.
        rx.recv().unwrap();
        rx.recv().unwrap();
        assert!(sub.push(&CtlEvent::Lagged { missed: 77 }));
        assert_eq!(sub.missed, 0);
        assert!(matches!(rx.recv().unwrap(), CtlEvent::Lagged { missed: 1 }));
        assert!(matches!(
            rx.recv().unwrap(),
            CtlEvent::Lagged { missed: 77 }
        ));

        // A subscriber that never drains is evicted once it has missed
        // more than MAX_MISSED frames. The two recvs above emptied the
        // queue, so the first two pushes land and the rest miss.
        for _ in 0..MAX_MISSED + 1 {
            assert!(sub.push(&lag_frame()), "still within the miss budget");
        }
        assert_eq!(sub.missed, MAX_MISSED - 1);
        assert!(sub.push(&lag_frame()), "exactly MAX_MISSED is tolerated");
        assert!(!sub.push(&lag_frame()), "past MAX_MISSED must evict");
        assert_eq!(sub.missed, MAX_MISSED + 1);

        // ...and a hung-up subscriber is evicted immediately.
        let (tx, rx) = mpsc::sync_channel(2);
        let mut gone = Subscriber {
            topics: WatchTopic::ALL.to_vec(),
            tx,
            missed: 0,
        };
        drop(rx);
        assert!(!gone.push(&lag_frame()));
    }
}
