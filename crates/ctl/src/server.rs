//! The `escaped` daemon core: one live [`Session`] behind a unix socket.
//!
//! Concurrency model: an accept thread hands each connection to its own
//! reader thread, but every decoded request funnels through ONE mpsc
//! channel into the environment loop on the calling thread. That queue is
//! the serialization point — commands execute strictly one at a time
//! against the session, so admission control (soft/hard watermarks,
//! bounded queue) applies its backpressure to external callers exactly as
//! it does in-process: a hard-rejected deploy comes back as a framed
//! [`CtlError::RejectedHard`], never a dropped connection.
//!
//! Virtual time only advances when a client asks (`run-for`) unless
//! `tick_ms > 0` opts into background ticks — the default keeps same-seed
//! daemon runs byte-identical regardless of wall-clock scheduling.

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    ChainInfo, CtlError, CtlRequest, CtlResponse, DeployInfo, MetricsFormat, SlaInfo, StatusInfo,
};
use escape::env::DeploymentReport;
use escape::error::{AdmissionVerdict, EscapeError};
use escape::flight::SlaVerdict;
use escape::session::{InputFormat, SessionStatus};
use escape::Session;
use std::fs;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// POSIX signal plumbing without a libc dependency: `signal(2)` is
/// declared directly and the handler only touches an atomic flag, which
/// is all an async-signal-safe handler may do anyway.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Routes SIGINT and SIGTERM to the shutdown flag.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// True once a termination signal arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// How to run the daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket to listen on.
    pub socket: PathBuf,
    /// Virtual milliseconds to advance per idle poll interval; `0`
    /// (the default) advances time only on explicit `run-for` commands
    /// so same-seed runs stay byte-identical.
    pub tick_ms: u64,
    /// Directory to flush final telemetry into on shutdown
    /// (`metrics.prom` + `metrics.json`); `None` skips the flush.
    pub artifacts: Option<PathBuf>,
    /// Install SIGINT/SIGTERM handlers. In-process test daemons leave
    /// this off so they don't hijack the test runner's signals.
    pub handle_signals: bool,
}

impl DaemonConfig {
    pub fn new(socket: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            tick_ms: 0,
            artifacts: None,
            handle_signals: false,
        }
    }
}

type Command = (CtlRequest, mpsc::Sender<CtlResponse>);

/// The daemon entry point. [`Daemon::run`] blocks the calling thread as
/// the environment loop until a `shutdown` verb or a termination signal
/// arrives, then tears down gracefully.
pub struct Daemon;

impl Daemon {
    /// Serves `session` on `cfg.socket` until shutdown. On exit every
    /// live chain is torn down transactionally, telemetry is flushed to
    /// `cfg.artifacts` if set, and the socket file is removed.
    pub fn run(mut session: Session, cfg: DaemonConfig) -> io::Result<()> {
        let listener = bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        if cfg.handle_signals {
            sig::install();
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Command>();
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(listener, tx, shutdown))
        };

        loop {
            if cfg.handle_signals && sig::requested() {
                break;
            }
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok((CtlRequest::Shutdown, reply)) => {
                    let _ = reply.send(CtlResponse::ShuttingDown);
                    break;
                }
                Ok((req, reply)) => {
                    let _ = reply.send(execute(&mut session, &req));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if cfg.tick_ms > 0 {
                        session.run_for_ms(cfg.tick_ms);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Stop accepting, refuse anything already queued, then dismantle.
        shutdown.store(true, Ordering::SeqCst);
        while let Ok((_req, reply)) = rx.try_recv() {
            let _ = reply.send(CtlResponse::Error(CtlError::ShuttingDown));
        }
        let failed = session.teardown_all();
        for (chain, e) in &failed {
            eprintln!("escaped: teardown of {chain} on shutdown failed: {e}");
        }
        if let Some(dir) = &cfg.artifacts {
            flush_artifacts(&session, dir)?;
        }
        let _ = accept.join();
        drop(rx);
        let _ = fs::remove_file(&cfg.socket);
        Ok(())
    }
}

/// Binds the listener, reclaiming a stale socket file left by a crashed
/// daemon — but refusing to steal one a live daemon still answers on.
fn bind(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} is in use by a running daemon", path.display()),
                ));
            }
            fs::remove_file(path)?;
            UnixListener::bind(path)
        }
        Err(e) => Err(e),
    }
}

fn accept_loop(listener: UnixListener, tx: mpsc::Sender<Command>, shutdown: Arc<AtomicBool>) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let _ = stream.set_nonblocking(false);
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || connection_loop(stream, tx, shutdown));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// One client connection. Framing or decode failures answer with a typed
/// error and keep the connection open — only a transport failure (or the
/// client hanging up) ends the loop.
fn connection_loop(mut stream: UnixStream, tx: mpsc::Sender<Command>, shutdown: Arc<AtomicBool>) {
    loop {
        let bytes = match read_frame(&mut stream) {
            Ok(Some(b)) => b,
            Ok(None) | Err(_) => return,
        };
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(e) => {
                let err = CtlError::Malformed {
                    offset: e.utf8_error().valid_up_to() as u64,
                    reason: "payload is not UTF-8".into(),
                };
                if reply(&mut stream, CtlResponse::Error(err)).is_err() {
                    return;
                }
                continue;
            }
        };
        let req = match CtlRequest::decode(&text) {
            Ok(r) => r,
            Err(e) => {
                if reply(&mut stream, CtlResponse::Error(e)).is_err() {
                    return;
                }
                continue;
            }
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let resp = if shutdown.load(Ordering::SeqCst) || tx.send((req, reply_tx)).is_err() {
            CtlResponse::Error(CtlError::ShuttingDown)
        } else {
            reply_rx
                .recv()
                .unwrap_or(CtlResponse::Error(CtlError::ShuttingDown))
        };
        if reply(&mut stream, resp).is_err() {
            return;
        }
    }
}

fn reply(stream: &mut UnixStream, resp: CtlResponse) -> io::Result<()> {
    write_frame(stream, &resp.encode())
}

/// Executes one command against the session. Pure dispatch: all policy
/// (admission, transactions, healing) lives in the session/environment.
pub fn execute(session: &mut Session, req: &CtlRequest) -> CtlResponse {
    match req {
        CtlRequest::Status => CtlResponse::Status(status_info(&session.status())),
        CtlRequest::Deploy { sg, format } => {
            let fmt = match format {
                crate::proto::SgFormat::Dsl => InputFormat::Dsl,
                crate::proto::SgFormat::Json => InputFormat::Json,
            };
            match session.deploy_text(sg, fmt) {
                Ok(report) => CtlResponse::Deployed(deploy_info(&report)),
                Err(e) => escape_error_response(e),
            }
        }
        CtlRequest::Teardown { chain } => match session.teardown(chain) {
            Ok(()) => CtlResponse::ToreDown {
                chain: chain.clone(),
            },
            Err(e) => escape_error_response(e),
        },
        CtlRequest::RunFor { ms } => {
            session.run_for_ms(*ms);
            CtlResponse::Advanced {
                now_ns: session.escape().now().as_ns(),
            }
        }
        CtlRequest::Fault { plan } => match session.load_fault_plan_text(plan) {
            Ok(events) => CtlResponse::FaultArmed {
                events: events as u64,
            },
            Err(e) => escape_error_response(e),
        },
        CtlRequest::Heal => {
            let (recoveries, failures) = session.heal_now();
            CtlResponse::Healed {
                recoveries,
                failures,
            }
        }
        CtlRequest::Metrics { format } => CtlResponse::Metrics {
            format: *format,
            body: session.metrics_exposition(matches!(format, MetricsFormat::Json)),
        },
        CtlRequest::Sla => CtlResponse::Sla(session.sla_verdicts().iter().map(sla_info).collect()),
        CtlRequest::Traffic {
            from,
            to,
            frames,
            len,
            interval_us,
        } => match session.start_udp(from, to, *len as usize, *interval_us, *frames) {
            Ok(()) => CtlResponse::TrafficStarted,
            Err(e) => escape_error_response(e),
        },
        // Handled by the environment loop before dispatch; answered here
        // too so `execute` is total for direct (in-process) callers.
        CtlRequest::Shutdown => CtlResponse::ShuttingDown,
    }
}

/// Maps an environment failure to its typed wire form. Note that a
/// *queued* admission verdict is a success shape, not an error: the
/// deploy retries by itself as virtual time advances.
fn escape_error_response(e: EscapeError) -> CtlResponse {
    match e {
        EscapeError::Admission(v) => match v {
            AdmissionVerdict::RejectedHard {
                utilization,
                hard_watermark,
            } => CtlResponse::Error(CtlError::RejectedHard {
                utilization,
                hard_watermark,
            }),
            AdmissionVerdict::Queued {
                position,
                utilization,
            } => CtlResponse::Queued {
                position: position as u64,
                utilization,
            },
            AdmissionVerdict::QueueFull { capacity } => CtlResponse::Error(CtlError::QueueFull {
                capacity: capacity as u64,
            }),
            v @ AdmissionVerdict::RetriesExhausted { .. } => {
                CtlResponse::Error(CtlError::Internal {
                    reason: v.to_string(),
                })
            }
        },
        EscapeError::DeployFailed { phase, cause, .. } => {
            CtlResponse::Error(CtlError::DeployFailed {
                phase: phase.to_string(),
                cause: cause.to_string(),
            })
        }
        EscapeError::NotFound(what) => CtlResponse::Error(CtlError::NotFound { what }),
        EscapeError::Invalid(reason) => CtlResponse::Error(CtlError::Invalid { reason }),
        other => CtlResponse::Error(CtlError::Internal {
            reason: other.to_string(),
        }),
    }
}

fn status_info(s: &SessionStatus) -> StatusInfo {
    StatusInfo {
        now_ns: s.now_ns,
        chains: s
            .chains
            .iter()
            .map(|c| ChainInfo {
                name: c.name.clone(),
                cookie: c.cookie,
                rules: c.rules,
                vnfs: c.vnfs.clone(),
            })
            .collect(),
        pending_admissions: s.pending_admissions,
        utilization: s.utilization,
        deploys: s.deploys,
        deploy_failures: s.deploy_failures,
        teardowns: s.teardowns,
        recoveries: s.recoveries,
        recovery_failures: s.recovery_failures,
        rollbacks: s.rollbacks,
        admission_rejected: s.admission_rejected,
        events: s.events,
    }
}

fn deploy_info(report: &DeploymentReport) -> DeployInfo {
    DeployInfo {
        chains: report
            .chains
            .iter()
            .map(|dc| ChainInfo {
                name: dc.mapping.chain.name.clone(),
                cookie: dc.cookie,
                rules: dc.rules as u64,
                vnfs: dc
                    .vnfs
                    .iter()
                    .map(|v| (v.vnf_name.clone(), v.container.clone()))
                    .collect(),
            })
            .collect(),
        total_ns: report.total().as_ns(),
        netconf_ns: report.netconf_phase().as_ns(),
        steering_ns: report.steering_phase().as_ns(),
    }
}

fn sla_info(v: &SlaVerdict) -> SlaInfo {
    SlaInfo {
        chain: v.chain.clone(),
        pass: v.pass,
        delivered: v.delivered,
        dropped: v.dropped,
        loss: v.loss,
        max_latency_ns: v.max_latency_ns,
        violations: v.violations.clone(),
    }
}

/// Writes the final telemetry state into `dir` via the session's single
/// exposition path.
fn flush_artifacts(session: &Session, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join("metrics.prom"), session.metrics_exposition(false))?;
    fs::write(dir.join("metrics.json"), session.metrics_exposition(true))?;
    Ok(())
}
