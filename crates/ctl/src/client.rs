//! The control-socket client used by `escape ctl` and the tests.

use crate::frame::{read_frame, write_frame};
use crate::proto::{CtlRequest, CtlResponse};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a running `escaped`. A client may issue any number
/// of requests; each gets exactly one response frame, in order.
pub struct CtlClient {
    stream: UnixStream,
}

impl CtlClient {
    /// Connects to the daemon's unix socket.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<CtlClient> {
        Ok(CtlClient {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Sends one typed request and reads the typed response.
    pub fn call(&mut self, req: &CtlRequest) -> io::Result<CtlResponse> {
        self.send_raw(&req.encode())
    }

    /// Sends an arbitrary payload — the escape hatch the protocol tests
    /// use to ship deliberately malformed frames.
    pub fn send_raw(&mut self, payload: &str) -> io::Result<CtlResponse> {
        write_frame(&mut self.stream, payload)?;
        let bytes = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            )
        })?;
        let text = String::from_utf8(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        CtlResponse::decode(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
