//! The control-socket client used by `escape ctl` and the tests.

use crate::frame::{read_frame, write_frame};
use crate::proto::{CtlEvent, CtlRequest, CtlResponse, WatchTopic};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a running `escaped`. A client may issue any number
/// of requests; each gets exactly one response frame, in order.
pub struct CtlClient {
    stream: UnixStream,
}

impl CtlClient {
    /// Connects to the daemon's unix socket.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<CtlClient> {
        Ok(CtlClient {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Sends one typed request and reads the typed response.
    pub fn call(&mut self, req: &CtlRequest) -> io::Result<CtlResponse> {
        self.send_raw(&req.encode())
    }

    /// Sends an arbitrary payload — the escape hatch the protocol tests
    /// use to ship deliberately malformed frames.
    pub fn send_raw(&mut self, payload: &str) -> io::Result<CtlResponse> {
        write_frame(&mut self.stream, payload)?;
        let bytes = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            )
        })?;
        let text = String::from_utf8(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        CtlResponse::decode(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Subscribes this connection to server-push events. Consumes the
    /// client: after the `watching` ack the connection speaks only
    /// [`CtlEvent`] frames, which the returned handle yields in order.
    /// An empty topic list subscribes to everything.
    pub fn watch(mut self, topics: &[WatchTopic]) -> io::Result<CtlWatch> {
        match self.call(&CtlRequest::Watch {
            topics: topics.to_vec(),
        })? {
            CtlResponse::Watching { topics } => Ok(CtlWatch {
                stream: self.stream,
                topics,
            }),
            CtlResponse::Error(e) => Err(io::Error::other(e.to_string())),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected watching ack, got {other:?}"),
            )),
        }
    }
}

/// A live subscription: a blocking iterator over pushed [`CtlEvent`]
/// frames. Dropping it hangs up, which makes the daemon evict the
/// subscription on its next push.
pub struct CtlWatch {
    stream: UnixStream,
    topics: Vec<WatchTopic>,
}

impl CtlWatch {
    /// The topics the daemon acknowledged.
    pub fn topics(&self) -> &[WatchTopic] {
        &self.topics
    }

    /// Blocks for the next pushed event; `Ok(None)` means the daemon
    /// closed the stream (shutdown or slow-consumer eviction).
    pub fn next_event(&mut self) -> io::Result<Option<CtlEvent>> {
        let bytes = match read_frame(&mut self.stream)? {
            Some(b) => b,
            None => return Ok(None),
        };
        let text = String::from_utf8(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        CtlEvent::decode(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl Iterator for CtlWatch {
    type Item = io::Result<CtlEvent>;

    fn next(&mut self) -> Option<io::Result<CtlEvent>> {
        self.next_event().transpose()
    }
}
