//! Shared launcher for the daemon: both the `escaped` binary and the
//! `escape daemon` subcommand parse the same options and run the same
//! [`Daemon::run`] loop, so there is exactly one way to start a daemon.

use crate::server::{Daemon, DaemonConfig};
use escape::session::{parse_topology_text, InputFormat};
use escape::{AdmissionConfig, Session, SessionConfig};
use escape_pox::SteeringMode;
use escape_telemetry::SamplerConfig;
use std::path::PathBuf;

/// Everything the daemon CLI accepts.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    pub socket: PathBuf,
    /// Topology file; the built-in demo substrate when `None`.
    pub topo_file: Option<String>,
    /// Input files are JSON instead of the DSL.
    pub json: bool,
    pub algorithm: String,
    pub steering: SteeringMode,
    pub seed: u64,
    /// Virtual ms advanced per idle poll; 0 keeps time manual.
    pub tick_ms: u64,
    /// Telemetry flush directory on shutdown.
    pub artifacts: Option<PathBuf>,
    /// Admission watermarks; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Flight-recorder ring capacity; 0 disables (and with it `sla`).
    pub flight_recorder: usize,
    /// Time-series sample period in virtual ms; 0 disables the sampler
    /// (and with it `series` / `escape top`).
    pub sample_ms: u64,
    /// Samples retained by the sampler ring.
    pub sample_retention: usize,
}

impl Default for DaemonOptions {
    fn default() -> DaemonOptions {
        DaemonOptions {
            socket: PathBuf::from("escaped.sock"),
            topo_file: None,
            json: false,
            algorithm: "nearest".into(),
            steering: SteeringMode::Proactive,
            seed: 1,
            tick_ms: 0,
            artifacts: None,
            admission: None,
            flight_recorder: 65_536,
            sample_ms: 5,
            sample_retention: 120,
        }
    }
}

pub const DAEMON_USAGE: &str = "usage: escaped [--socket PATH] [--topo FILE] [--json] \
     [--algorithm A] [--steering proactive|reactive] [--seed N] [--tick-ms N] \
     [--artifacts DIR] [--admission SOFT:HARD[:QUEUE[:RETRIES]]] [--flight-recorder N] \
     [--sample-ms N] [--sample-retention N]";

/// Parses daemon options from an argument list (program name already
/// stripped).
pub fn parse_daemon_args(args: impl Iterator<Item = String>) -> Result<DaemonOptions, String> {
    let mut o = DaemonOptions::default();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut need = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--socket" => o.socket = PathBuf::from(need("--socket")?),
            "--topo" => o.topo_file = Some(need("--topo")?),
            "--json" => o.json = true,
            "--algorithm" => o.algorithm = need("--algorithm")?,
            "--steering" => {
                o.steering = match need("--steering")?.as_str() {
                    "proactive" => SteeringMode::Proactive,
                    "reactive" => SteeringMode::Reactive,
                    other => return Err(format!("unknown steering mode {other:?}")),
                }
            }
            "--seed" => o.seed = need("--seed")?.parse().map_err(|_| "bad seed")?,
            "--tick-ms" => o.tick_ms = need("--tick-ms")?.parse().map_err(|_| "bad tick-ms")?,
            "--artifacts" => o.artifacts = Some(PathBuf::from(need("--artifacts")?)),
            "--admission" => {
                let v = need("--admission")?;
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() < 2 {
                    return Err(format!("--admission {v:?}: need SOFT:HARD"));
                }
                let default = AdmissionConfig::default();
                o.admission = Some(AdmissionConfig {
                    soft_watermark: parts[0]
                        .parse()
                        .map_err(|_| format!("bad soft watermark in {v:?}"))?,
                    hard_watermark: parts[1]
                        .parse()
                        .map_err(|_| format!("bad hard watermark in {v:?}"))?,
                    max_queue: parts
                        .get(2)
                        .map_or(Ok(default.max_queue), |s| s.parse())
                        .map_err(|_| format!("bad queue size in {v:?}"))?,
                    max_retries: parts
                        .get(3)
                        .map_or(Ok(default.max_retries), |s| s.parse())
                        .map_err(|_| format!("bad retry budget in {v:?}"))?,
                });
            }
            "--flight-recorder" => {
                o.flight_recorder = need("--flight-recorder")?
                    .parse()
                    .map_err(|_| "bad flight-recorder capacity")?
            }
            "--sample-ms" => {
                o.sample_ms = need("--sample-ms")?
                    .parse()
                    .map_err(|_| "bad sample period")?
            }
            "--sample-retention" => {
                o.sample_retention = need("--sample-retention")?
                    .parse()
                    .map_err(|_| "bad sample retention")?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

/// Builds the session and serves it until shutdown. `handle_signals`
/// should be true for a real daemon process and false for in-process
/// (test) servers.
pub fn run_daemon(o: DaemonOptions, handle_signals: bool) -> Result<(), String> {
    let topo = match &o.topo_file {
        Some(file) => {
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let format = if o.json {
                InputFormat::Json
            } else {
                InputFormat::from_path(file)
            };
            parse_topology_text(&src, format)?
        }
        None => escape::session::demo_topology(),
    };
    let session = Session::new(
        topo,
        SessionConfig {
            algorithm: o.algorithm.clone(),
            steering: o.steering,
            seed: o.seed,
            admission: o.admission,
            flight_recorder: if o.flight_recorder > 0 {
                Some(o.flight_recorder)
            } else {
                None
            },
            sampler: if o.sample_ms > 0 && o.sample_retention > 0 {
                Some(SamplerConfig {
                    period_ns: o.sample_ms * 1_000_000,
                    retention: o.sample_retention,
                })
            } else {
                None
            },
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "escaped: serving on {} (algorithm={} seed={} tick_ms={})",
        o.socket.display(),
        o.algorithm,
        o.seed,
        o.tick_ms
    );
    Daemon::run(
        session,
        DaemonConfig {
            socket: o.socket,
            tick_ms: o.tick_ms,
            artifacts: o.artifacts,
            handle_signals,
        },
    )
    .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DaemonOptions, String> {
        parse_daemon_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.socket, PathBuf::from("escaped.sock"));
        assert_eq!(o.tick_ms, 0);
        assert!(o.admission.is_none());

        let o = parse(&[
            "--socket",
            "/tmp/e.sock",
            "--seed",
            "9",
            "--tick-ms",
            "5",
            "--admission",
            "0.5:0.8:4:2",
            "--flight-recorder",
            "0",
        ])
        .unwrap();
        assert_eq!(o.socket, PathBuf::from("/tmp/e.sock"));
        assert_eq!(o.seed, 9);
        assert_eq!(o.tick_ms, 5);
        let a = o.admission.unwrap();
        assert_eq!(a.soft_watermark, 0.5);
        assert_eq!(a.hard_watermark, 0.8);
        assert_eq!(a.max_queue, 4);
        assert_eq!(a.max_retries, 2);
        assert_eq!(o.flight_recorder, 0);
    }

    #[test]
    fn bad_options_are_rejected() {
        assert!(parse(&["--admission", "0.5"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }
}
