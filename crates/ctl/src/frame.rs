//! Length-prefixed framing for the control socket.
//!
//! Each frame is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON. The length prefix means a reader never has to scan for
//! delimiters inside the payload, and a half-written frame is detected
//! as an error rather than silently merged into the next message.

use std::io::{self, Read, Write};

/// Largest accepted frame payload (4 MiB). A metrics JSON document for a
/// large environment is tens of kilobytes; anything near this bound is a
/// corrupt or hostile length prefix.
pub const MAX_FRAME: u32 = 4 * 1024 * 1024;

/// Writes one frame: length prefix, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds {} byte cap",
                bytes.len(),
                MAX_FRAME
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly *between* frames; EOF inside a frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame payload",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"verb\": \"status\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(b"{\"verb\": \"status\"}".as_slice())
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(b"".as_slice()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let mut r = Cursor::new(Vec::new());
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_inside_header_is_an_error() {
        let mut r = Cursor::new(vec![0u8, 0]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eof_inside_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"verb\": \"status\"}").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xxxx");
        let mut r = Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
