//! # escape-ctl
//!
//! The ESCAPE-RS control plane: a typed request/response protocol over
//! length-prefixed JSON frames on a unix socket, the [`server::Daemon`]
//! that serves a live [`escape::Session`] behind it, and the
//! [`client::CtlClient`] that `escape ctl` drives it with.
//!
//! Layering:
//!
//! * [`proto`] — [`CtlRequest`] / [`CtlResponse`] / [`CtlError`], the
//!   wire vocabulary. Everything round-trips through `escape-json`.
//! * [`frame`] — 4-byte big-endian length prefix + JSON payload.
//! * [`client`] — blocking unix-socket client, one response per request.
//! * [`server`] — the `escaped` daemon core: accept/reader threads funnel
//!   commands through one queue into the environment loop, so admission
//!   control backpressures external callers exactly like in-process ones.

pub mod client;
pub mod frame;
pub mod launch;
pub mod proto;
pub mod server;

pub use client::{CtlClient, CtlWatch};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use proto::{
    ChainInfo, CtlError, CtlEvent, CtlRequest, CtlResponse, DeployInfo, MetricDelta, MetricsFormat,
    SgFormat, SlaInfo, StatusInfo, WatchTopic,
};
pub use server::{Daemon, DaemonConfig};
